//! Offline, API-compatible subset of the `rand` crate.
//!
//! Provides the exact surface the codebase uses: a seedable, deterministic
//! [`rngs::StdRng`] plus the [`Rng`] extension methods `gen`, `gen_range`
//! and `gen_bool`.  The generator is xoshiro256++ seeded through splitmix64,
//! so streams are reproducible across platforms and independent of the real
//! `rand` version (determinism is what the learning pipeline cares about,
//! not the specific stream).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        })*
    };
}
sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// The `(low, high)` bounds with `high` inclusive.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        let high = self.end.to_u64();
        assert!(self.start.to_u64() < high, "cannot sample empty range");
        (self.start, T::from_u64(high - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (start, end) = self.into_inner();
        assert!(start.to_u64() <= end.to_u64(), "cannot sample empty range");
        (start, end)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (low, high) = range.bounds();
        let (low, high) = (low.to_u64(), high.to_u64());
        let span = high - low + 1; // span == 0 means the full u64 domain
        if span == 0 {
            return T::from_u64(self.next_u64());
        }
        // Debiased via rejection sampling on the top of the domain.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_u64(low + v % span);
            }
        }
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG (xoshiro256++ in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(2..10);
            assert!((2..10).contains(&v));
            let w: u64 = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
