//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `bytes` the codebase actually uses: cheaply
//! cloneable immutable [`Bytes`], a growable [`BytesMut`], and the
//! big-endian cursor traits [`Buf`] / [`BufMut`].  Semantics match the real
//! crate for this subset (including `split_to`, `slice` and `freeze`).

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates a buffer from a static slice (copied; the real crate borrows,
    /// which is observationally equivalent for this codebase).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range (shares the backing
    /// storage; O(1)).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "range out of bounds of Bytes");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits the buffer into two at the given index: returns `[0, at)` and
    /// leaves `[at, len)` in `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.slice(..at);
        self.start += at;
        front
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl serde::Serialize for Bytes {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(deserializer)?))
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Splits off the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.data.clone()).fmt(f)
    }
}

/// Read access to a byte cursor (big-endian getters, as in the real crate).
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the cursor into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable byte sink (big-endian putters).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4]);
        let mut rest = b.clone();
        let front = rest.split_to(2);
        assert_eq!(front, [1, 2]);
        assert_eq!(rest, [3, 4, 5]);
    }

    #[test]
    fn buf_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16(2);
        m.put_u32(3);
        m.put_u64(4);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 17);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 2);
        assert_eq!(b.get_u32(), 3);
        assert_eq!(b.get_u64(), 4);
        assert_eq!(b.chunk(), b"xy");
    }
}
