//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use — the [`proptest!`] macro with `pattern in strategy` bindings,
//! [`Strategy`] with `prop_map`, [`any`], ranges, tuples,
//! `prop::collection::vec`, `prop_oneof!`, [`Just`], `prop::sample::Index`
//! and simple `".{a,b}"` string patterns — on top of a deterministic
//! splitmix64 generator.  No shrinking: failing cases report their inputs
//! via the panic message instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one test case, deterministically derived from the
    /// test's location and case number.
    pub fn for_case(file: &str, test: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in file.bytes().chain(test.bytes()) {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..len` (`len > 0`).
    pub fn below(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample from an empty domain");
        (self.next_u64() % len as u64) as usize
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property parameter.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Chooses uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "cannot sample empty range");
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "cannot sample empty range");
                    (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {
        $(impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// A `".{lo,hi}"`-style string pattern used directly as a strategy.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parse the repetition bounds out of patterns like ".{0,32}"; any
        // other pattern falls back to a short printable string.
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| {
                // Printable ASCII, excluding the quote/backslash escapes so
                // failure messages stay readable.
                let printable = b" abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!#$%&'()*+,-./:;<=>?@[]^_`{|}~";
                printable[rng.below(printable.len())] as char
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boxes a strategy (used by [`prop_oneof!`] so alternatives unify).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from the given range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a concrete length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror of proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The property-test entry macro: `pattern in strategy` parameters, an
/// optional `#![proptest_config(...)]` header, one or more `#[test]` fns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(file!(), stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=4, (a, b) in (1i64..5, any::<bool>())) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((1..5).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_and_oneof_compose(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn string_patterns_respect_bounds(s in ".{0,32}") {
            prop_assert!(s.len() <= 32);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = super::TestRng::for_case("f", "t", 3);
        let mut b = super::TestRng::for_case("f", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
