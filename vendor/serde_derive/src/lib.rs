//! Derive macros for the vendored serde shim.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline).  Supports the item shapes this workspace
//! uses: non-generic structs (named, tuple/newtype, unit) and enums with
//! unit, tuple and struct variants, plus the `#[serde(transparent)]`
//! container attribute and the `#[serde(with = "module")]` field attribute.
//! Output follows real serde's externally-tagged JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
    transparent: bool,
}

/// Extracts `transparent` / `with = "..."` from one `#[...]` attribute body.
fn scan_attr(group: &proc_macro::Group, transparent: &mut bool, with: &mut Option<String>) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut k = 0;
    while k < inner.len() {
        match &inner[k] {
            TokenTree::Ident(id) if id.to_string() == "transparent" => *transparent = true,
            TokenTree::Ident(id) if id.to_string() == "with" => {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(k + 1), inner.get(k + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        *with = Some(raw.trim_matches('"').to_string());
                        k += 2;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
}

/// Consumes leading attributes at `*i`, collecting serde attrs.
fn skip_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
    transparent: &mut bool,
    with: &mut Option<String>,
) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                scan_attr(g, transparent, with);
                *i += 2;
            }
            _ => return,
        }
    }
}

/// Consumes a visibility qualifier at `*i`, if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips tokens up to (and over) a `,` at angle-bracket depth 0.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut transparent = false;
        let mut with = None;
        skip_attrs(&tokens, &mut i, &mut transparent, &mut with);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_past_comma(&tokens, &mut i);
        fields.push(Field { name, with });
    }
    Ok(fields)
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_past_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut transparent = false;
        let mut with = None;
        skip_attrs(&tokens, &mut i, &mut transparent, &mut with);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        skip_past_comma(&tokens, &mut i);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    let mut with = None;
    skip_attrs(&tokens, &mut i, &mut transparent, &mut with);
    skip_vis(&tokens, &mut i);
    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive shim does not support generic item `{name}`"
            ));
        }
    }
    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g)?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for item kind `{other}`")),
    };
    Ok(Item {
        name,
        kind,
        transparent,
    })
}

const SER_ERR: &str = "<S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

fn field_to_value(access: &str, with: &Option<String>) -> String {
    match with {
        Some(module) => {
            format!("{module}::serialize({access}, ::serde::ValueSink).map_err({SER_ERR})?")
        }
        None => format!("::serde::to_value({access}).map_err({SER_ERR})?"),
    }
}

fn field_from_value(value_expr: &str, with: &Option<String>) -> String {
    match with {
        Some(module) => format!(
            "{module}::deserialize(::serde::ValueDeserializer::new(({value_expr}).clone())).map_err({DE_ERR})?"
        ),
        None => format!("::serde::from_value({value_expr}).map_err({DE_ERR})?"),
    }
}

fn map_lookup(map: &str, field: &str) -> String {
    format!(
        "::serde::map_get({map}, \"{field}\").ok_or_else(|| {DE_ERR}(\"missing field `{field}`\"))?"
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "serializer.serialize_value(::serde::Value::Null)".to_string(),
        Kind::Struct(Shape::Tuple(1)) => {
            "::serde::Serialize::serialize(&self.0, serializer)".to_string()
        }
        Kind::Struct(Shape::Named(fields)) if item.transparent && fields.len() == 1 => {
            format!(
                "::serde::Serialize::serialize(&self.{}, serializer)",
                fields[0].name
            )
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::to_value(&self.{k}).map_err({SER_ERR})?"))
                .collect();
            format!(
                "serializer.serialize_value(::serde::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{}\".to_string(), {}));",
                        f.name,
                        field_to_value(&format!("&self.{}", f.name), &f.with)
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{}\nserializer.serialize_value(::serde::Value::Map(__fields))",
                pushes.join("\n")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::to_value(__f0).map_err({SER_ERR})?)]),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let values: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::to_value(__f{k}).map_err({SER_ERR})?")
                                })
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binders.join(", "),
                                values.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{}\".to_string(), {})",
                                        f.name,
                                        field_to_value(&f.name, &f.with)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Map(::std::vec![{}]))]),",
                                binders.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let __value: ::serde::Value = match self {{\n{}\n}};\nserializer.serialize_value(__value)",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => {
            format!("let _ = deserializer; ::core::result::Result::Ok({name})")
        }
        Kind::Struct(Shape::Tuple(1)) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(deserializer)?))"
        ),
        Kind::Struct(Shape::Named(fields)) if item.transparent && fields.len() == 1 => format!(
            "::core::result::Result::Ok({name} {{ {}: ::serde::Deserialize::deserialize(deserializer)? }})",
            fields[0].name
        ),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::from_value(&__seq[{k}]).map_err({DE_ERR})?"))
                .collect();
            format!(
                "let __value = ::serde::Deserializer::into_value(deserializer)?;\n\
                 let __seq = __value.as_seq().ok_or_else(|| {DE_ERR}(\"expected array for `{name}`\"))?;\n\
                 if __seq.len() != {n} {{ return ::core::result::Result::Err({DE_ERR}(\"wrong tuple length for `{name}`\")); }}\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: {},",
                        f.name,
                        field_from_value(&map_lookup("__map", &f.name), &f.with)
                    )
                })
                .collect();
            format!(
                "let __value = ::serde::Deserializer::into_value(deserializer)?;\n\
                 let __map = __value.as_map().ok_or_else(|| {DE_ERR}(\"expected object for `{name}`\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),",
                        v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => unreachable!(),
                        Shape::Tuple(1) => format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::from_value(__v).map_err({DE_ERR})?)),"
                        ),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::from_value(&__seq[{k}]).map_err({DE_ERR})?")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __seq = __v.as_seq().ok_or_else(|| {DE_ERR}(\"expected array for variant `{vname}`\"))?;\n\
                                 if __seq.len() != {n} {{ return ::core::result::Result::Err({DE_ERR}(\"wrong tuple length for variant `{vname}`\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vname}({}))\n}}",
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{}: {},",
                                        f.name,
                                        field_from_value(
                                            &map_lookup("__inner", &f.name),
                                            &f.with
                                        )
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __inner = __v.as_map().ok_or_else(|| {DE_ERR}(\"expected object for variant `{vname}`\"))?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n{}\n}})\n}}",
                                inits.join("\n")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let __value = ::serde::Deserializer::into_value(deserializer)?;\n\
                 match &__value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit}\n\
                 __other => ::core::result::Result::Err({DE_ERR}(::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n{data}\n\
                 __other => ::core::result::Result::Err({DE_ERR}(::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err({DE_ERR}(\"expected string or single-key object for enum `{name}`\")),\n}}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!(
            "::core::compile_error!(\"serde_derive shim: {}\");",
            msg.replace('"', "'")
        ),
    };
    code.parse().unwrap_or_else(|e| {
        format!(
            "::core::compile_error!(\"serde_derive shim generated invalid code: {}\");",
            format!("{e:?}").replace('"', "'")
        )
        .parse()
        .unwrap()
    })
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
