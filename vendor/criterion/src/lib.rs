//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the benchmark-harness surface the workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`) with a simple
//! but honest measurement loop: per benchmark it runs a warm-up phase,
//! then samples the closure until the configured measurement time is
//! spent, and reports min/median/mean per-iteration times on stdout.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark harness handle passed to group functions.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Parses command-line arguments (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(
            id,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks a closure parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Anything usable as a benchmark identifier.
pub struct BenchId(String);

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

impl From<&str> for BenchId {
    fn from(id: &str) -> Self {
        BenchId(id.to_string())
    }
}

impl From<String> for BenchId {
    fn from(id: String) -> Self {
        BenchId(id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    mode: Mode,
}

enum Mode {
    WarmUp {
        budget: Duration,
    },
    Measure {
        budget: Duration,
        max_samples: usize,
    },
}

impl Bencher {
    /// Runs the routine repeatedly under the current phase's budget,
    /// recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    black_box(routine());
                }
            }
            Mode::Measure {
                budget,
                max_samples,
            } => {
                let start = Instant::now();
                while start.elapsed() < budget && self.samples.len() < max_samples {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                }
                // Always record at least one sample.
                if self.samples.is_empty() {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                }
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) {
    let mut warm = Bencher {
        samples: Vec::new(),
        mode: Mode::WarmUp { budget: warm_up },
    };
    f(&mut warm);
    let mut bench = Bencher {
        samples: Vec::new(),
        mode: Mode::Measure {
            budget: measurement,
            max_samples: sample_size.max(1) * 5,
        },
    };
    f(&mut bench);
    let mut sorted = bench.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "  {id}: median {}  mean {}  min {}  ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(sorted[0]),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}
