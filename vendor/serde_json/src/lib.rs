//! Offline JSON front-end for the vendored serde shim.
//!
//! Renders and parses the shim's [`Value`] tree as standard JSON.  Only the
//! API surface the workspace uses is provided: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`] and [`from_value`].

use serde::{de, ser, DeserializeOwned, Serialize, ValueDeserializer};
use std::fmt::{self, Display, Write as _};

pub use serde::Value;

/// Errors produced while serializing or deserializing JSON.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::to_value(value).map_err(|e| Error(e.to_string()))
}

/// Builds any deserializable value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value)).map_err(|e| Error(e.to_string()))
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_value(parse(s)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(&b) => {
                    // Consume one multi-byte UTF-8 character.  Validating
                    // only its own bytes keeps parsing linear; the old
                    // `from_utf8(&bytes[pos..])` re-validated the whole
                    // remaining document per character (quadratic on the
                    // megabyte-sized persisted observation caches).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8 character"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(7)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::I64(-1), Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x \"y\"\n".to_string())),
        ]);
        let text = {
            let mut out = String::new();
            super::write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_floats_and_big_integers() {
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u64, String)> = vec![(1, "one".into()), (2, "two".into())];
        let json = to_string(&pairs).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(pairs, back);
    }
}
