//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a serde look-alike.  The public trait surface (`Serialize`,
//! `Deserialize<'de>`, `Serializer`, `Deserializer<'de>`, the derive
//! macros, `ser::Error` / `de::Error`) matches real serde closely enough
//! that the repository's code compiles unchanged.  The data model is
//! simplified to a single JSON-shaped [`Value`] tree: serializers receive a
//! fully built `Value` and deserializers surrender one.  `serde_json` in
//! `vendor/serde_json` renders and parses that tree.

use std::fmt::Display;
use std::marker::PhantomData;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every value passes through.
#[derive(Clone, Debug)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`, and for
    /// all unsigned sources).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, converting between numeric variants.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, converting between numeric variants.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, converting between numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Seq(a), Value::Seq(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => a == b,
            // Numbers compare by value across variants, as in real
            // serde_json (`7` parses as I64 but may have been written U64).
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => match (a.as_u64(), b.as_u64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => x == y,
                        _ => false,
                    },
                },
            },
        }
    }
}

/// Looks up a key in an object's entry list.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization error helpers.
pub mod ser {
    use std::fmt::Display;

    /// Errors a [`crate::Serializer`] may produce.
    pub trait Error: Sized + Display {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error helpers.
pub mod de {
    use std::fmt::Display;

    /// Errors a [`crate::Deserializer`] may produce.
    pub trait Error: Sized + Display {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// The error type of the built-in [`ValueSink`] / [`ValueDeserializer`].
#[derive(Clone, Debug)]
pub struct ValueError(pub String);

impl Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// A data format that can receive a [`Value`].
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes the fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data structure that can be turned into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can surrender a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the value tree to deserialize from.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A data structure that can be built from a [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserialization independent of the input's lifetime.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A serializer whose output *is* the value tree.
pub struct ValueSink;

impl Serializer for ValueSink {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSink)
}

/// A deserializer that reads from an owned [`Value`] tree.
pub struct ValueDeserializer<'de> {
    value: Value,
    marker: PhantomData<&'de ()>,
}

impl<'de> ValueDeserializer<'de> {
    /// Wraps a value tree.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            marker: PhantomData,
        }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}

/// Deserializes any value from a borrowed [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: &Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(value.clone()))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        })*
    };
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        })*
    };
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match u64::try_from(*self) {
            Ok(v) => serializer.serialize_value(Value::U64(v)),
            // Beyond u64: keep full precision as a decimal string.
            Err(_) => serializer.serialize_value(Value::Str(self.to_string())),
        }
    }
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match i64::try_from(*self) {
            Ok(v) => serializer.serialize_value(Value::I64(v)),
            Err(_) => serializer.serialize_value(Value::Str(self.to_string())),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_str().serialize(serializer)
    }
}

impl Serialize for std::sync::Arc<str> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, ValueError> {
    let mut seq = Vec::new();
    for item in items {
        seq.push(to_value(item)?);
    }
    Ok(Value::Seq(seq))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(<S::Error as ser::Error>::custom)?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(to_value(&self.$n).map_err(<S::Error as ser::Error>::custom)?),+
                ];
                serializer.serialize_value(Value::Seq(seq))
            }
        })*
    };
}
serialize_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

/// Types usable as JSON object keys (stringified, as real serde_json does
/// for integer map keys).
pub trait MapKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    fn from_key(key: &str) -> Option<Self>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Option<Self> {
        Some(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {
        $(impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        })*
    };
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = Vec::new();
        for (k, v) in self {
            map.push((
                k.to_key(),
                to_value(v).map_err(<S::Error as ser::Error>::custom)?,
            ));
        }
        serializer.serialize_value(Value::Map(map))
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_key(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut map = Vec::new();
        for (k, v) in entries {
            map.push((k, to_value(v).map_err(<S::Error as ser::Error>::custom)?));
        }
        serializer.serialize_value(Value::Map(map))
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                let n = value
                    .as_i64()
                    .map(|v| v as i128)
                    .or_else(|| value.as_u64().map(|v| v as i128))
                    .ok_or_else(|| {
                        <D::Error as de::Error>::custom(concat!("expected ", stringify!($t)))
                    })?;
                <$t>::try_from(n).map_err(|_| {
                    <D::Error as de::Error>::custom(concat!("out of range for ", stringify!($t)))
                })
            }
        })*
    };
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! deserialize_int128 {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                if let Some(v) = value.as_u64() {
                    return <$t>::try_from(v).map_err(|_| {
                        <D::Error as de::Error>::custom(concat!("out of range for ", stringify!($t)))
                    });
                }
                if let Some(v) = value.as_i64() {
                    return <$t>::try_from(v).map_err(|_| {
                        <D::Error as de::Error>::custom(concat!("out of range for ", stringify!($t)))
                    });
                }
                value
                    .as_str()
                    .and_then(|s| s.parse::<$t>().ok())
                    .ok_or_else(|| {
                        <D::Error as de::Error>::custom(concat!("expected ", stringify!($t)))
                    })
            }
        })*
    };
}
deserialize_int128!(u128, i128);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .into_value()?
            .as_f64()
            .ok_or_else(|| <D::Error as de::Error>::custom("expected a number"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            _ => Err(<D::Error as de::Error>::custom("expected a boolean")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            _ => Err(<D::Error as de::Error>::custom("expected a string")),
        }
    }
}

impl<'de> Deserialize<'de> for std::sync::Arc<str> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(|s| std::sync::Arc::from(s.as_str()))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            other => from_value(&other)
                .map(Some)
                .map_err(<D::Error as de::Error>::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        let seq = value
            .as_seq()
            .ok_or_else(|| <D::Error as de::Error>::custom("expected an array"))?;
        seq.iter()
            .map(|v| from_value(v).map_err(<D::Error as de::Error>::custom))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        items
            .try_into()
            .map_err(|_| <D::Error as de::Error>::custom("wrong array length"))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {
        $(impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                let seq = value
                    .as_seq()
                    .ok_or_else(|| <D::Error as de::Error>::custom("expected a tuple array"))?;
                if seq.len() != $len {
                    return Err(<D::Error as de::Error>::custom("wrong tuple length"));
                }
                Ok(($(from_value(&seq[$n]).map_err(<D::Error as de::Error>::custom)?,)+))
            }
        })*
    };
}
deserialize_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        let map = value
            .as_map()
            .ok_or_else(|| <D::Error as de::Error>::custom("expected an object"))?;
        map.iter()
            .map(|(k, v)| {
                let key = K::from_key(k)
                    .ok_or_else(|| <D::Error as de::Error>::custom("invalid map key"))?;
                Ok((key, from_value(v).map_err(<D::Error as de::Error>::custom)?))
            })
            .collect()
    }
}

impl<'de, K: MapKey + Ord + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let map: std::collections::BTreeMap<K, V> = Deserialize::deserialize(deserializer)?;
        Ok(map.into_iter().collect())
    }
}
