//! Failure-injection integration test: the nondeterminism check must also
//! cope with *environmental* noise (packet loss on the simulated network),
//! which is the other source of nondeterminism §5 distinguishes from
//! implementation bugs.

use bytes::Bytes;
use prognosis::automata::alphabet::Symbol;
use prognosis::core::nondeterminism::{NondeterminismChecker, NondeterminismConfig};
use prognosis::core::sul::Sul;
use prognosis::netsim::{LinkConfig, Network, SimDuration};

/// A toy SUL whose transport is the simulated network: each step sends a
/// datagram across a (possibly lossy) link and reports whether a reply came
/// back.  With a lossless link the behaviour is deterministic; with loss it
/// is not — the environmental-noise case of §5.
struct EchoOverNetwork {
    network: Network,
    client: prognosis::netsim::EndpointId,
    server: prognosis::netsim::EndpointId,
}

impl EchoOverNetwork {
    fn new(loss: f64, seed: u64) -> Self {
        let mut network = Network::with_default_link(seed, LinkConfig::ideal().loss(loss));
        let client = network.bind(1_000).unwrap();
        let server = network.bind(2_000).unwrap();
        EchoOverNetwork {
            network,
            client,
            server,
        }
    }
}

impl Sul for EchoOverNetwork {
    fn step(&mut self, input: &Symbol) -> Symbol {
        self.network
            .send(
                self.client,
                2_000,
                Bytes::from(input.as_str().as_bytes().to_vec()),
            )
            .ok();
        self.network.advance(SimDuration::from_millis(1));
        // The "server" echoes whatever arrived; if the datagram was lost
        // there is nothing to echo.
        let arrived = self.network.endpoint_mut(self.server).unwrap().receive();
        match arrived {
            Some(request) => {
                self.network.send(self.server, 1_000, request.payload).ok();
                self.network.advance(SimDuration::from_millis(1));
                match self.network.endpoint_mut(self.client).unwrap().receive() {
                    Some(_) => Symbol::new("echo"),
                    None => Symbol::new("silence"),
                }
            }
            None => Symbol::new("silence"),
        }
    }

    fn reset(&mut self) {
        self.network.endpoint_mut(self.client).unwrap().clear();
        self.network.endpoint_mut(self.server).unwrap().clear();
    }
}

#[test]
fn lossless_links_keep_queries_deterministic() {
    let sul = EchoOverNetwork::new(0.0, 1);
    let mut checker = NondeterminismChecker::with_defaults(sul);
    let word = prognosis::automata::word::InputWord::from_symbols(["ping", "ping", "ping"]);
    let report = checker.check(&word);
    assert!(report.deterministic);
    assert_eq!(report.distinct_outputs(), 1);
}

#[test]
fn packet_loss_is_flagged_as_nondeterminism() {
    let sul = EchoOverNetwork::new(0.3, 7);
    let config = NondeterminismConfig {
        min_repetitions: 5,
        max_repetitions: 60,
        confidence: 0.99,
    };
    let mut checker = NondeterminismChecker::new(sul, config);
    let word = prognosis::automata::word::InputWord::from_symbols(["ping", "ping", "ping"]);
    let report = checker.check(&word);
    assert!(
        !report.deterministic,
        "30% loss must be detected as nondeterministic behaviour"
    );
    assert!(report.distinct_outputs() >= 2);
}

#[test]
fn capture_records_the_injected_loss() {
    let mut network = Network::with_default_link(3, LinkConfig::ideal().loss(0.5));
    let a = network.bind(1).unwrap();
    let _b = network.bind(2).unwrap();
    for _ in 0..100 {
        network.send(a, 2, Bytes::from_static(b"x")).unwrap();
    }
    network.deliver_all();
    let lost = network.capture().lost();
    assert!(lost > 20 && lost < 80, "lost {lost} of 100 at 50% loss");
}
