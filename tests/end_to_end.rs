//! Cross-crate integration tests: the full Prognosis pipeline against the
//! simulated TCP and QUIC implementations, asserting the qualitative results
//! the paper reports (model shapes, the trace-space reduction and each of
//! the four issues).

use prognosis::analysis::comparison::{behavioural_diff, compare_models};
use prognosis::analysis::properties::{check_property, SafetyProperty};
use prognosis::analysis::trace_count::informative_paths;
use prognosis::automata::alphabet::{Alphabet, Symbol};
use prognosis::automata::word::InputWord;
use prognosis::core::nondeterminism::{NondeterminismChecker, NondeterminismConfig};
use prognosis::core::pipeline::{learn_model, LearnConfig};
use prognosis::core::quic_adapter::{quic_alphabet, quic_data_alphabet, QuicSul};
use prognosis::core::sul::Sul;
use prognosis::core::tcp_adapter::{tcp_alphabet, TcpSul};
use prognosis::quic_sim::profile::ImplementationProfile;
use prognosis::synth::synthesis::Synthesizer;
use prognosis::synth::term::TermDomain;

fn config(tests: usize, len: usize) -> LearnConfig {
    LearnConfig {
        seed: 7,
        random_tests: tests,
        min_word_len: 2,
        max_word_len: len,
        ..LearnConfig::default()
    }
}

#[test]
fn tcp_pipeline_learns_a_handshake_model_and_registers() {
    // E1: the abstract model.
    let mut sul = TcpSul::with_defaults();
    let learned = learn_model(&mut sul, &tcp_alphabet(), config(500, 8));
    assert!(
        (4..=8).contains(&learned.model.num_states()),
        "{} states",
        learned.model.num_states()
    );
    // The handshake trace behaves as in Fig. 3(b).
    let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
    let out = learned.model.run(&word).unwrap();
    assert_eq!(out.as_slice()[0].as_str(), "ACK+SYN(?,?,0)");
    assert_eq!(out.as_slice()[1].as_str(), "NIL");

    // E2: register synthesis from the Oracle Table over a handshake alphabet.
    let alphabet = Alphabet::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
    let mut sul = TcpSul::with_defaults();
    let learned = learn_model(&mut sul, &alphabet, config(200, 6));
    sul.reset();
    // A handful of short, skeleton-consistent traces is enough to pin the
    // register behaviour down and keeps the enumerative solver fast.
    let traces: Vec<_> = sul
        .oracle_table()
        .to_concrete_traces(|t| t.len() <= 4 && learned.model.accepts_trace(t))
        .into_iter()
        .take(6)
        .collect();
    assert!(!traces.is_empty());
    let synthesizer = Synthesizer::new(
        TermDomain::new(2, 2).with_constant(10_000),
        vec!["srv".to_string(), "peer".to_string()],
        vec!["seq".to_string(), "ack".to_string()],
        vec![10_000, 0],
    );
    let outcome = synthesizer
        .synthesize(&learned.model, &traces, &[])
        .expect("handshake registers are synthesizable");
    // The SYN+ACK acknowledgement number must be explainable by a register
    // or input-derived term, not fabricated.
    assert!(outcome.report.solver_nodes > 0);
}

#[test]
fn quic_models_reproduce_the_paper_shape() {
    // E3/E5: google-profile model strictly larger than quiche-profile model,
    // and the two are behaviourally different.
    let cfg = config(3_000, 12);
    let mut google_sul = QuicSul::new(ImplementationProfile::google(), 3);
    let google = learn_model(&mut google_sul, &quic_alphabet(), cfg.clone());
    let mut quiche_sul = QuicSul::new(ImplementationProfile::quiche(), 3);
    let quiche = learn_model(&mut quiche_sul, &quic_alphabet(), cfg);
    assert!(
        google.model.num_states() > quiche.model.num_states(),
        "google ({}) must be larger than quiche ({})",
        google.model.num_states(),
        quiche.model.num_states()
    );
    let cmp = compare_models(&google.model, &quiche.model);
    assert!(!cmp.equivalent);
    assert!(!behavioural_diff(&google.model, &quiche.model, 3).is_empty());

    // E4: trace-space reduction — the informative model traces are orders of
    // magnitude fewer than the 329,554,456 candidate traces.
    let silent = Symbol::new("{}");
    assert_eq!(quic_alphabet().words_up_to_length(10), 329_554_456);
    for model in [&google.model, &quiche.model] {
        let informative = informative_paths(model, &silent, 10);
        assert!(informative > 0);
        assert!(
            (informative as u128) < 329_554_456 / 100,
            "informative traces ({informative}) must be a vanishing fraction of the trace space"
        );
    }

    // §5-style property checking on the learned models: once the connection
    // is closed by a protocol violation, no stream data is ever served again.
    let property = SafetyProperty::never_after("CONNECTION_CLOSE", "HANDSHAKE_DONE");
    assert!(check_property(&quiche.model, &property).holds);
}

#[test]
fn issue2_nondeterministic_reset_is_detected_only_for_mvfst() {
    let word = InputWord::from_symbols([
        "INITIAL(?,?)[CRYPTO]",
        "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]",
        "SHORT(?,?)[ACK,STREAM]",
    ]);
    let cfg = NondeterminismConfig {
        min_repetitions: 5,
        max_repetitions: 200,
        confidence: 0.95,
    };
    let mut mvfst =
        NondeterminismChecker::new(QuicSul::new(ImplementationProfile::mvfst(), 42), cfg);
    let report = mvfst.check(&word);
    assert!(!report.deterministic, "Issue 2 must be flagged");
    let (_, freq) = report.majority().unwrap();
    assert!(
        (0.70..0.92).contains(&freq),
        "majority frequency {freq} should be near 0.82"
    );

    let mut quiche =
        NondeterminismChecker::new(QuicSul::new(ImplementationProfile::quiche(), 42), cfg);
    assert!(
        quiche.check(&word).deterministic,
        "correct implementations stay deterministic"
    );
}

#[test]
fn issue3_broken_retry_prevents_connection_establishment() {
    let alphabet = Alphabet::from_symbols(["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,CRYPTO]"]);
    let cfg = config(300, 8);
    let mut buggy = QuicSul::new(ImplementationProfile::tracker(), 5).with_buggy_retry_client();
    let buggy_model = learn_model(&mut buggy, &alphabet, cfg.clone());
    let mut fixed = QuicSul::new(ImplementationProfile::tracker(), 5);
    let fixed_model = learn_model(&mut fixed, &alphabet, cfg);
    let can_complete = SafetyProperty::never_output("HANDSHAKE_DONE");
    assert!(
        check_property(&buggy_model.model, &can_complete).holds,
        "with the port-rebinding defect the handshake can never complete"
    );
    assert!(
        !check_property(&fixed_model.model, &can_complete).holds,
        "with a correct reference client the handshake completes"
    );
}

#[test]
fn issue4_constant_zero_is_visible_in_the_oracle_table() {
    let mut sul = QuicSul::new(ImplementationProfile::google(), 11);
    let _ = learn_model(&mut sul, &quic_data_alphabet(), config(500, 8));
    sul.reset();
    let mut observed = Vec::new();
    for entry in sul.oracle_table().entries() {
        for (output, step) in entry.abstract_trace.output.iter().zip(entry.steps.iter()) {
            if output.as_str().contains("STREAM_DATA_BLOCKED") {
                observed.push(*step.output_fields.last().unwrap());
            }
        }
    }
    assert!(
        !observed.is_empty(),
        "the google profile must hit flow control during learning"
    );
    assert!(
        observed.iter().all(|&v| v == 0),
        "Issue 4: the field is always the constant 0"
    );
}

#[test]
fn experiment_harness_reports_are_well_formed() {
    // The exp_* binaries share this library code; make sure the cheap ones
    // produce non-empty reports so CI catches regressions in the harness.
    let (report, learned) = prognosis_bench_smoke::tcp();
    assert!(report.contains("E1"));
    assert!(learned >= 4);
}

/// Minimal smoke-test shim around the bench library (kept out of the bench
/// crate so `cargo test --workspace` exercises it without Criterion).
mod prognosis_bench_smoke {
    use super::*;

    pub fn tcp() -> (String, usize) {
        let mut sul = TcpSul::with_defaults();
        let learned = learn_model(&mut sul, &tcp_alphabet(), config(300, 8));
        let report = format!(
            "E1 — TCP model learning: {} states, {} membership queries",
            learned.model.num_states(),
            learned.stats.membership_queries
        );
        (report, learned.model.num_states())
    }
}
