//! # Prognosis
//!
//! A Rust reproduction of *Prognosis: Closed-Box Analysis of Network
//! Protocol Implementations* (SIGCOMM 2021).
//!
//! This façade crate re-exports the workspace crates under a single name so
//! that examples and downstream users can depend on one crate:
//!
//! * [`automata`] — Mealy machines, equivalence, minimization, DOT export.
//! * [`learner`] — active model learning (L*, TTT) in the MAT framework.
//! * [`synth`] — register-machine synthesis from Oracle-Table traces.
//! * [`netsim`] — deterministic network simulator substrate.
//! * [`tcp`] — the simulated TCP implementation (system under learning).
//! * [`quic_wire`] — QUIC wire format (packets, frames, simulated crypto).
//! * [`quic_sim`] — simulated QUIC implementations (Quiche/Google/mvfst/
//!   Tracker behavioural profiles, including the paper's injected defects).
//! * [`core`] — the Prognosis framework itself: SUL, Adapter, Oracle Table,
//!   nondeterminism check, protocol bindings and the learning pipeline.
//! * [`analysis`] — model diffing, property checking and reports.
//! * [`campaign`] — DAG-scheduled differential-learning campaigns over a
//!   shared engine pool and versioned observation cache.
//! * [`events`] — the streaming event-log spine: `EventSink`, rotating
//!   JSONL `EventLog` writer, and log analysis.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use prognosis_analysis as analysis;
pub use prognosis_automata as automata;
pub use prognosis_campaign as campaign;
pub use prognosis_core as core;
pub use prognosis_events as events;
pub use prognosis_learner as learner;
pub use prognosis_netsim as netsim;
pub use prognosis_quic_sim as quic_sim;
pub use prognosis_quic_wire as quic_wire;
pub use prognosis_synth as synth;
pub use prognosis_tcp as tcp;
