//! The reference QUIC client (the QUIC-Tracker analogue).
//!
//! §3.2's instrumentation turns an existing client implementation into the
//! Adapter's concretization oracle (`γ`): given an abstract request such as
//! `SHORT(?,?)[ACK,STREAM]`, the client builds a concrete packet whose
//! connection IDs, packet numbers, ACK ranges, stream offsets and
//! flow-control limits are valid *in the current connection state*, and it
//! abstracts (`α`) every server response back into the same notation.
//!
//! The client also carries the reference-implementation defect of Issue 3:
//! when [`ReferenceQuicClient::rebind_on_retry`] is set (as it is for the
//! faithful QUIC-Tracker profile), the post-Retry Initial is sent from a
//! freshly-bound ephemeral UDP port, so the server's address validation
//! fails and the handshake can never complete.

use bytes::Bytes;
use prognosis_quic_wire::connection_id::ConnectionId;
use prognosis_quic_wire::crypto::{EncryptionLevel, Keys};
use prognosis_quic_wire::frame::{Frame, FrameType};
use prognosis_quic_wire::packet::{Packet, PacketHeader, PacketType};

/// Errors raised while concretizing an abstract QUIC symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuicConcretizeError {
    /// The abstract symbol could not be parsed.
    BadSymbol(String),
    /// The symbol names a frame this client cannot construct.
    UnsupportedFrame(String),
}

impl std::fmt::Display for QuicConcretizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuicConcretizeError::BadSymbol(s) => write!(f, "unparseable abstract QUIC symbol: {s}"),
            QuicConcretizeError::UnsupportedFrame(s) => {
                write!(f, "unsupported frame in symbol: {s}")
            }
        }
    }
}

impl std::error::Error for QuicConcretizeError {}

/// The reference client.
pub struct ReferenceQuicClient {
    seed: u64,
    connection_counter: u64,
    /// Client-chosen source connection ID.
    scid: ConnectionId,
    /// Initial destination connection ID (determines the Initial secret).
    initial_dcid: ConnectionId,
    key_material: u64,
    tx_pn: [u64; 3],
    largest_rx: [Option<u64>; 3],
    /// Offset of the next STREAM bytes we send on our request stream.
    stream_offset: u64,
    /// Flow-control credit we grant the server, raised by each MAX_STREAM_DATA.
    granted_stream_data: u64,
    /// Base UDP port and the port currently in use (changes on rebind).
    base_port: u16,
    current_port: u16,
    next_ephemeral: u16,
    /// Retry token received from the server, echoed in subsequent Initials.
    retry_token: Option<Bytes>,
    /// Issue-3 defect: rebind to a fresh port when answering a Retry.
    pub rebind_on_retry: bool,
    /// Whether the server's HANDSHAKE_DONE has been observed.
    handshake_complete: bool,
}

/// Payload carried in client STREAM frames (per request).
const CLIENT_STREAM_CHUNK: usize = 50;
/// The client's request stream.
const CLIENT_STREAM_ID: u64 = 0;
/// The server's response stream (the one we grant credit on).
const SERVER_STREAM_ID: u64 = 1;

impl ReferenceQuicClient {
    /// Creates a client bound to `port`, with deterministic connection IDs
    /// derived from `seed`.
    pub fn new(seed: u64, port: u16) -> Self {
        let initial_dcid = ConnectionId::from_seed(seed);
        ReferenceQuicClient {
            seed,
            connection_counter: 0,
            scid: ConnectionId::from_seed(seed ^ 0x00C1_1E17),
            key_material: initial_dcid.key_material(),
            initial_dcid,
            tx_pn: [0; 3],
            largest_rx: [None; 3],
            stream_offset: 0,
            granted_stream_data: 200,
            base_port: port,
            current_port: port,
            next_ephemeral: 50_000,
            retry_token: None,
            rebind_on_retry: false,
            handshake_complete: false,
        }
    }

    /// The UDP source port the client currently sends from.
    pub fn source_port(&self) -> u16 {
        self.current_port
    }

    /// Whether the client is currently sending from a rebound (post-Retry)
    /// port rather than its base port — the observable of the Issue-3
    /// defect, which the networked transport maps onto a spoofed wire
    /// source port.
    pub fn rebound(&self) -> bool {
        self.current_port != self.base_port
    }

    /// Whether the server has signalled handshake completion.
    pub fn handshake_complete(&self) -> bool {
        self.handshake_complete
    }

    /// Starts a fresh connection: new connection IDs, packet numbers and
    /// offsets, original port (property (3) of §3.2).
    pub fn reset(&mut self) {
        self.connection_counter += 1;
        let seed = self
            .seed
            .wrapping_add(self.connection_counter.wrapping_mul(0x9E37));
        self.initial_dcid = ConnectionId::from_seed(seed);
        self.scid = ConnectionId::from_seed(seed ^ 0x00C1_1E17);
        self.key_material = self.initial_dcid.key_material();
        self.tx_pn = [0; 3];
        self.largest_rx = [None; 3];
        self.stream_offset = 0;
        self.granted_stream_data = 200;
        self.current_port = self.base_port;
        self.retry_token = None;
        self.handshake_complete = false;
    }

    fn space(level: EncryptionLevel) -> usize {
        match level {
            EncryptionLevel::Initial => 0,
            EncryptionLevel::Handshake => 1,
            EncryptionLevel::OneRtt => 2,
        }
    }

    fn keys(&self, level: EncryptionLevel) -> Keys {
        Keys::derive(self.key_material, level)
    }

    /// Parses an abstract symbol `TYPE(?,?)[F1,F2,...]` into its packet type
    /// and frame-type list.
    pub fn parse_abstract(
        symbol: &str,
    ) -> Result<(PacketType, Vec<FrameType>), QuicConcretizeError> {
        let (type_part, rest) = symbol
            .split_once('(')
            .ok_or_else(|| QuicConcretizeError::BadSymbol(symbol.to_string()))?;
        let packet_type = PacketType::ALL
            .into_iter()
            .find(|t| t.name() == type_part.trim())
            .ok_or_else(|| QuicConcretizeError::BadSymbol(symbol.to_string()))?;
        let frames_part = rest
            .split_once('[')
            .and_then(|(_, f)| f.strip_suffix(']'))
            .ok_or_else(|| QuicConcretizeError::BadSymbol(symbol.to_string()))?;
        let mut frames = Vec::new();
        for name in frames_part
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let ft = FrameType::from_name(name)
                .ok_or_else(|| QuicConcretizeError::UnsupportedFrame(name.to_string()))?;
            frames.push(ft);
        }
        Ok((packet_type, frames))
    }

    fn build_frame(
        &mut self,
        frame_type: FrameType,
        packet_type: PacketType,
    ) -> Result<Frame, QuicConcretizeError> {
        let frame = match frame_type {
            FrameType::Crypto => {
                let data = match packet_type {
                    PacketType::Initial => Bytes::from_static(b"client-hello"),
                    _ => Bytes::from_static(b"client-finished"),
                };
                Frame::Crypto { offset: 0, data }
            }
            FrameType::Ack => {
                let level = match packet_type {
                    PacketType::Initial => EncryptionLevel::Initial,
                    PacketType::Handshake => EncryptionLevel::Handshake,
                    _ => EncryptionLevel::OneRtt,
                };
                Frame::Ack {
                    largest_acknowledged: self.largest_rx[Self::space(level)].unwrap_or(0),
                    ack_delay: 0,
                    first_ack_range: 0,
                }
            }
            FrameType::HandshakeDone => Frame::HandshakeDone,
            FrameType::Stream => {
                let f = Frame::Stream {
                    stream_id: CLIENT_STREAM_ID,
                    offset: self.stream_offset,
                    fin: false,
                    data: Bytes::from(vec![b'q'; CLIENT_STREAM_CHUNK]),
                };
                self.stream_offset += CLIENT_STREAM_CHUNK as u64;
                f
            }
            FrameType::MaxData => Frame::MaxData {
                maximum: self.granted_stream_data * 4,
            },
            FrameType::MaxStreamData => {
                self.granted_stream_data += 100;
                Frame::MaxStreamData {
                    stream_id: SERVER_STREAM_ID,
                    maximum: self.granted_stream_data,
                }
            }
            FrameType::Ping => Frame::Ping,
            FrameType::Padding => Frame::Padding,
            FrameType::ConnectionClose => Frame::ConnectionClose {
                error_code: 0,
                frame_type: 0,
                reason: "client close".to_string(),
                application: true,
            },
            other => {
                return Err(QuicConcretizeError::UnsupportedFrame(
                    other.name().to_string(),
                ))
            }
        };
        Ok(frame)
    }

    /// Concretizes an abstract request (`γ`): builds and encodes a packet
    /// that is valid in the current connection state.  Returns the decoded
    /// packet (for the Oracle Table) together with its wire bytes.
    pub fn concretize(&mut self, symbol: &str) -> Result<(Packet, Bytes), QuicConcretizeError> {
        let (packet_type, frame_types) = Self::parse_abstract(symbol)?;
        let level = match packet_type {
            PacketType::Initial | PacketType::ZeroRtt => EncryptionLevel::Initial,
            PacketType::Handshake => EncryptionLevel::Handshake,
            _ => EncryptionLevel::OneRtt,
        };
        let mut frames = Vec::with_capacity(frame_types.len());
        for ft in frame_types {
            frames.push(self.build_frame(ft, packet_type)?);
        }
        let space = Self::space(level);
        let pn = self.tx_pn[space];
        self.tx_pn[space] += 1;
        let header = match packet_type {
            PacketType::Short => PacketHeader::short(self.initial_dcid.clone(), pn),
            PacketType::Initial => {
                let mut h = PacketHeader::long(
                    PacketType::Initial,
                    self.initial_dcid.clone(),
                    self.scid.clone(),
                    pn,
                );
                if let Some(token) = &self.retry_token {
                    h = h.with_token(token.clone());
                }
                h
            }
            other => PacketHeader::long(other, self.initial_dcid.clone(), self.scid.clone(), pn),
        };
        let packet = Packet::new(header, frames);
        let wire = packet.encode(&self.keys(level));
        Ok((packet, wire))
    }

    /// Absorbs a server datagram (`α` direction): updates acknowledgement
    /// bookkeeping, stores Retry tokens (rebinding the port if the Issue-3
    /// defect is enabled) and returns the decoded packet, or `None` when the
    /// datagram cannot be decoded.
    pub fn absorb(&mut self, datagram: &Bytes) -> Option<Packet> {
        let (header, _) = Packet::decode_header(datagram).ok()?;
        let level = match header.packet_type {
            PacketType::Initial | PacketType::ZeroRtt => EncryptionLevel::Initial,
            PacketType::Handshake => EncryptionLevel::Handshake,
            PacketType::Short => EncryptionLevel::OneRtt,
            PacketType::Retry => {
                self.retry_token = Some(header.token.clone());
                if self.rebind_on_retry {
                    // The Issue-3 defect: the token will be echoed from a
                    // different UDP port, so address validation fails.
                    self.current_port = self.next_ephemeral;
                    self.next_ephemeral += 1;
                }
                return Some(Packet::new(header, vec![]));
            }
            PacketType::VersionNegotiation | PacketType::StatelessReset => {
                return Some(Packet::new(header, vec![]));
            }
        };
        let packet = Packet::decode(datagram, &self.keys(level)).ok()?;
        let space = Self::space(level);
        self.largest_rx[space] = Some(
            self.largest_rx[space].map_or(packet.header.packet_number, |l| {
                l.max(packet.header.packet_number)
            }),
        );
        if packet
            .frames
            .iter()
            .any(|f| f.frame_type() == FrameType::HandshakeDone)
        {
            self.handshake_complete = true;
        }
        Some(packet)
    }

    /// Abstracts a packet back into the paper's notation (`α`).
    pub fn abstract_packet(packet: &Packet) -> String {
        packet.abstract_name()
    }
}

/// Extracts the numeric fields of interest from a packet, in frame order —
/// the concrete values stored in the Oracle Table and consumed by the
/// synthesis module.  For each frame: STREAM → offset, STREAM_DATA_BLOCKED →
/// maximum stream data (the Issue-4 field), MAX_DATA / MAX_STREAM_DATA →
/// the limit, ACK → largest acknowledged, CRYPTO → offset.
pub fn numeric_fields(packet: &Packet) -> Vec<i64> {
    let mut fields = Vec::new();
    for frame in &packet.frames {
        match frame {
            Frame::Stream { offset, .. } => fields.push(*offset as i64),
            Frame::StreamDataBlocked {
                maximum_stream_data,
                ..
            } => fields.push(*maximum_stream_data as i64),
            Frame::MaxData { maximum } => fields.push(*maximum as i64),
            Frame::MaxStreamData { maximum, .. } => fields.push(*maximum as i64),
            Frame::Ack {
                largest_acknowledged,
                ..
            } => fields.push(*largest_acknowledged as i64),
            Frame::Crypto { offset, .. } => fields.push(*offset as i64),
            _ => {}
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ImplementationProfile;
    use crate::server::{QuicServer, ServerPhase};

    /// Drives a full query (list of abstract inputs) against a server,
    /// returning the abstract outputs per step.
    fn run_query(
        server: &mut QuicServer,
        client: &mut ReferenceQuicClient,
        inputs: &[&str],
    ) -> Vec<String> {
        let mut outputs = Vec::new();
        for symbol in inputs {
            let (_, wire) = client.concretize(symbol).unwrap();
            let responses = server.handle_datagram(&wire, client.source_port());
            let mut names: Vec<String> = responses
                .iter()
                .filter_map(|d| client.absorb(d))
                .map(|p| ReferenceQuicClient::abstract_packet(&p))
                .collect();
            names.sort();
            outputs.push(format!("{{{}}}", names.join(",")));
        }
        outputs
    }

    #[test]
    fn parse_abstract_symbols() {
        let (t, f) = ReferenceQuicClient::parse_abstract("INITIAL(?,?)[CRYPTO]").unwrap();
        assert_eq!(t, PacketType::Initial);
        assert_eq!(f, vec![FrameType::Crypto]);
        let (t, f) =
            ReferenceQuicClient::parse_abstract("SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]")
                .unwrap();
        assert_eq!(t, PacketType::Short);
        assert_eq!(f.len(), 3);
        assert!(ReferenceQuicClient::parse_abstract("garbage").is_err());
        assert!(ReferenceQuicClient::parse_abstract("INITIAL(?,?)[NOPE]").is_err());
    }

    #[test]
    fn google_handshake_completes_and_serves_data() {
        let mut server = QuicServer::new(ImplementationProfile::google(), 1);
        let mut client = ReferenceQuicClient::new(7, 40_000);
        let out = run_query(
            &mut server,
            &mut client,
            &[
                "INITIAL(?,?)[CRYPTO]",
                "HANDSHAKE(?,?)[ACK,CRYPTO]",
                "SHORT(?,?)[ACK,STREAM]",
            ],
        );
        assert!(
            out[0].contains("INITIAL(?,?)[ACK,CRYPTO]"),
            "first flight: {}",
            out[0]
        );
        assert!(out[0].contains("HANDSHAKE(?,?)[CRYPTO]"));
        assert!(
            out[0].contains("SHORT(?,?)[STREAM]"),
            "google sends early data: {}",
            out[0]
        );
        assert!(
            out[1].contains("SHORT(?,?)[HANDSHAKE_DONE]"),
            "handshake done: {}",
            out[1]
        );
        assert_eq!(server.phase(), ServerPhase::Established);
        assert!(client.handshake_complete());
        assert!(
            out[2].contains("STREAM"),
            "server responds with stream data: {}",
            out[2]
        );
    }

    #[test]
    fn quiche_handshake_has_the_smaller_shape() {
        let mut server = QuicServer::new(ImplementationProfile::quiche(), 1);
        let mut client = ReferenceQuicClient::new(8, 40_001);
        let out = run_query(
            &mut server,
            &mut client,
            &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,CRYPTO]"],
        );
        assert!(
            !out[0].contains("SHORT"),
            "quiche sends no early 1-RTT data: {}",
            out[0]
        );
        assert!(out[1].contains("HANDSHAKE_DONE"), "{}", out[1]);
        assert_eq!(server.phase(), ServerPhase::Established);
    }

    #[test]
    fn client_handshake_done_is_a_protocol_violation() {
        for profile in [
            ImplementationProfile::google(),
            ImplementationProfile::quiche(),
        ] {
            let mut server = QuicServer::new(profile, 1);
            let mut client = ReferenceQuicClient::new(9, 40_002);
            let out = run_query(
                &mut server,
                &mut client,
                &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"],
            );
            assert!(
                out[1].contains("CONNECTION_CLOSE"),
                "violation must close: {}",
                out[1]
            );
            assert_eq!(server.phase(), ServerPhase::Closed);
        }
    }

    #[test]
    fn packets_before_the_handshake_are_ignored() {
        let mut server = QuicServer::new(ImplementationProfile::google(), 1);
        let mut client = ReferenceQuicClient::new(10, 40_003);
        let out = run_query(
            &mut server,
            &mut client,
            &["SHORT(?,?)[ACK,STREAM]", "HANDSHAKE(?,?)[ACK,CRYPTO]"],
        );
        assert_eq!(out, vec!["{}".to_string(), "{}".to_string()]);
        assert_eq!(server.phase(), ServerPhase::Idle);
    }

    #[test]
    fn google_blocks_and_advertises_constant_zero() {
        let mut server = QuicServer::new(ImplementationProfile::google(), 1);
        let mut client = ReferenceQuicClient::new(11, 40_004);
        // Handshake, then keep asking for data until the server exhausts the
        // 200-byte credit (100 bytes per response) and reports itself blocked.
        let (_, wire) = client.concretize("INITIAL(?,?)[CRYPTO]").unwrap();
        for d in server.handle_datagram(&wire, client.source_port()) {
            client.absorb(&d);
        }
        let (_, wire) = client.concretize("HANDSHAKE(?,?)[ACK,CRYPTO]").unwrap();
        for d in server.handle_datagram(&wire, client.source_port()) {
            client.absorb(&d);
        }
        let mut saw_blocked_zero = false;
        for _ in 0..4 {
            let (_, wire) = client.concretize("SHORT(?,?)[ACK,STREAM]").unwrap();
            for d in server.handle_datagram(&wire, client.source_port()) {
                if let Some(p) = client.absorb(&d) {
                    for f in &p.frames {
                        if let Frame::StreamDataBlocked {
                            maximum_stream_data,
                            ..
                        } = f
                        {
                            saw_blocked_zero = true;
                            assert_eq!(
                                *maximum_stream_data, 0,
                                "Issue 4: the field is the constant 0"
                            );
                        }
                    }
                }
            }
        }
        assert!(
            saw_blocked_zero,
            "the Google profile must eventually report STREAM_DATA_BLOCKED"
        );
    }

    #[test]
    fn quiche_advertises_the_real_limit_when_blocked() {
        // Force blocking on the quiche profile by shrinking the credit.
        let mut profile = ImplementationProfile::quiche();
        profile.initial_peer_max_stream_data = 150;
        let mut server = QuicServer::new(profile, 1);
        let mut client = ReferenceQuicClient::new(12, 40_005);
        run_query(
            &mut server,
            &mut client,
            &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,CRYPTO]"],
        );
        let mut blocked_values = Vec::new();
        for _ in 0..4 {
            let (_, wire) = client.concretize("SHORT(?,?)[ACK,STREAM]").unwrap();
            for d in server.handle_datagram(&wire, client.source_port()) {
                if let Some(p) = client.absorb(&d) {
                    for f in &p.frames {
                        if let Frame::StreamDataBlocked {
                            maximum_stream_data,
                            ..
                        } = f
                        {
                            blocked_values.push(*maximum_stream_data);
                        }
                    }
                }
            }
        }
        assert!(!blocked_values.is_empty());
        assert!(
            blocked_values.iter().all(|&v| v == 150),
            "correct implementations advertise the limit: {blocked_values:?}"
        );
    }

    #[test]
    fn mvfst_resets_nondeterministically_after_close() {
        let mut server = QuicServer::new(ImplementationProfile::mvfst(), 42);
        let mut client = ReferenceQuicClient::new(13, 40_006);
        run_query(
            &mut server,
            &mut client,
            &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"],
        );
        assert_eq!(server.phase(), ServerPhase::Closed);
        let mut resets = 0;
        let mut silences = 0;
        for _ in 0..400 {
            let (_, wire) = client.concretize("SHORT(?,?)[ACK,STREAM]").unwrap();
            let responses = server.handle_datagram(&wire, client.source_port());
            if responses.is_empty() {
                silences += 1;
            } else {
                resets += 1;
            }
        }
        assert!(
            resets > 0 && silences > 0,
            "Issue 2: the response must be nondeterministic"
        );
        let ratio = resets as f64 / 400.0;
        assert!(
            (0.70..0.92).contains(&ratio),
            "reset ratio {ratio} should be near 0.82"
        );
    }

    #[test]
    fn quiche_answers_deterministically_after_close() {
        let mut server = QuicServer::new(ImplementationProfile::quiche(), 5);
        let mut client = ReferenceQuicClient::new(14, 40_007);
        run_query(
            &mut server,
            &mut client,
            &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"],
        );
        assert_eq!(server.phase(), ServerPhase::Closed);
        for _ in 0..20 {
            let (_, wire) = client.concretize("SHORT(?,?)[ACK,STREAM]").unwrap();
            let responses = server.handle_datagram(&wire, client.source_port());
            assert_eq!(
                responses.len(),
                1,
                "correct implementations answer deterministically"
            );
        }
    }

    #[test]
    fn tracker_retry_with_rebinding_breaks_the_handshake() {
        // The server requires address validation; the buggy client answers
        // the Retry from a fresh ephemeral port, so validation fails and the
        // handshake cannot complete (Issue 3).
        let mut server = QuicServer::new(ImplementationProfile::quiche().with_retry(), 1);
        let mut client = ReferenceQuicClient::new(15, 40_008);
        client.rebind_on_retry = true;
        let original_port = client.source_port();
        let (_, wire) = client.concretize("INITIAL(?,?)[CRYPTO]").unwrap();
        let responses = server.handle_datagram(&wire, client.source_port());
        assert_eq!(responses.len(), 1);
        let retry = client.absorb(&responses[0]).unwrap();
        assert_eq!(retry.header.packet_type, PacketType::Retry);
        assert_ne!(
            client.source_port(),
            original_port,
            "the defect rebinds the port"
        );
        let (_, wire) = client.concretize("INITIAL(?,?)[CRYPTO]").unwrap();
        let responses = server.handle_datagram(&wire, client.source_port());
        assert!(responses.is_empty(), "validation fails: handshake is stuck");
        assert_eq!(server.phase(), ServerPhase::Idle);
    }

    #[test]
    fn retry_with_correct_port_completes_the_handshake() {
        let mut server = QuicServer::new(ImplementationProfile::quiche().with_retry(), 1);
        let mut client = ReferenceQuicClient::new(16, 40_009);
        client.rebind_on_retry = false;
        let (_, wire) = client.concretize("INITIAL(?,?)[CRYPTO]").unwrap();
        let responses = server.handle_datagram(&wire, client.source_port());
        client.absorb(&responses[0]);
        let (_, wire) = client.concretize("INITIAL(?,?)[CRYPTO]").unwrap();
        let responses = server.handle_datagram(&wire, client.source_port());
        assert!(!responses.is_empty(), "validated handshake proceeds");
        for d in &responses {
            client.absorb(d);
        }
        let (_, wire) = client.concretize("HANDSHAKE(?,?)[ACK,CRYPTO]").unwrap();
        let responses = server.handle_datagram(&wire, client.source_port());
        assert!(!responses.is_empty());
        assert_eq!(server.phase(), ServerPhase::Established);
    }

    #[test]
    fn reset_starts_a_fresh_connection() {
        let mut server = QuicServer::new(ImplementationProfile::google(), 1);
        let mut client = ReferenceQuicClient::new(17, 40_010);
        run_query(&mut server, &mut client, &["INITIAL(?,?)[CRYPTO]"]);
        assert_eq!(server.phase(), ServerPhase::HandshakeStarted);
        server.reset();
        client.reset();
        assert_eq!(server.phase(), ServerPhase::Idle);
        assert_eq!(server.datagrams_processed(), 0);
        let out = run_query(
            &mut server,
            &mut client,
            &["INITIAL(?,?)[CRYPTO]", "HANDSHAKE(?,?)[ACK,CRYPTO]"],
        );
        assert!(
            out[1].contains("HANDSHAKE_DONE"),
            "fresh connection works after reset: {}",
            out[1]
        );
    }

    #[test]
    fn queries_are_deterministic_across_resets() {
        // The same abstract query must yield the same abstract response after
        // a reset — the property the learner depends on (Remark 3.1).
        let mut server = QuicServer::new(ImplementationProfile::google(), 3);
        let mut client = ReferenceQuicClient::new(18, 40_011);
        let inputs = [
            "INITIAL(?,?)[CRYPTO]",
            "HANDSHAKE(?,?)[ACK,CRYPTO]",
            "SHORT(?,?)[ACK,STREAM]",
        ];
        let first = run_query(&mut server, &mut client, &inputs);
        server.reset();
        client.reset();
        let second = run_query(&mut server, &mut client, &inputs);
        assert_eq!(first, second);
    }

    #[test]
    fn numeric_fields_extracts_synthesis_material() {
        let p = Packet::new(
            PacketHeader::short(ConnectionId::from_seed(1), 3),
            vec![
                Frame::Ack {
                    largest_acknowledged: 9,
                    ack_delay: 0,
                    first_ack_range: 0,
                },
                Frame::Stream {
                    stream_id: 1,
                    offset: 200,
                    fin: false,
                    data: Bytes::from_static(b"x"),
                },
                Frame::StreamDataBlocked {
                    stream_id: 1,
                    maximum_stream_data: 0,
                },
            ],
        );
        assert_eq!(numeric_fields(&p), vec![9, 200, 0]);
    }
}
