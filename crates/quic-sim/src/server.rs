//! The simulated QUIC server engine.
//!
//! One engine, parameterized by an [`ImplementationProfile`], plays the role
//! of every server implementation the paper analyzed.  The engine is a real
//! packet processor: it decodes datagrams with the keys it currently has,
//! ignores what it cannot decrypt or is not yet prepared to process (the
//! `{}` rows of the appendix models), walks the handshake, serves stream
//! data under the flow-control limits granted by the client, closes the
//! connection on protocol violations (a client-sent `HANDSHAKE_DONE`), and
//! applies the profile's defects where the paper found them.

use crate::profile::{HandshakeStyle, ImplementationProfile};
use bytes::Bytes;
use prognosis_netsim::time::{SimDuration, SimTime};
use prognosis_quic_wire::connection_id::ConnectionId;
use prognosis_quic_wire::crypto::{EncryptionLevel, Keys};
use prognosis_quic_wire::frame::{Frame, FrameType};
use prognosis_quic_wire::packet::{Packet, PacketHeader, PacketType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Connection phase of the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerPhase {
    /// No connection yet: only Initial packets are processed.
    Idle,
    /// ClientHello received, server flights sent, waiting for the client's
    /// Handshake CRYPTO (Finished).
    HandshakeStarted,
    /// Handshake complete; 1-RTT packets are processed.
    Established,
    /// Connection closed after a protocol violation or reset.
    Closed,
}

/// The simulated QUIC server.
pub struct QuicServer {
    profile: ImplementationProfile,
    rng: StdRng,
    phase: ServerPhase,
    /// Server-chosen connection ID.
    scid: ConnectionId,
    /// The client's source connection ID (destination of our responses).
    client_cid: ConnectionId,
    /// Key material shared with the client (derived from the client's
    /// initial destination connection ID, as real Initial secrets are).
    key_material: Option<u64>,
    /// Next packet number to send, per encryption level.
    tx_pn: [u64; 3],
    /// Largest packet number received, per encryption level.
    largest_rx: [Option<u64>; 3],
    /// Whether 1-RTT keys were ever available (gates post-close decryption).
    one_rtt_available: bool,
    /// Flow-control limit the client granted us on our response stream.
    peer_max_stream_data: u64,
    /// How much response-stream data we have sent so far.
    sent_stream_offset: u64,
    /// Response data we wanted to send but could not because of the limit.
    blocked_bytes: u64,
    /// Retry state.
    retry_sent: bool,
    expected_token: Option<Bytes>,
    validated_port: Option<u16>,
    /// Largest Initial packet number seen before a Retry, for the Issue-1
    /// packet-number-space-reset check.
    pre_retry_initial_pn: Option<u64>,
    /// Number of datagrams processed since the last reset (statistics).
    datagrams_processed: u64,
}

const STREAM_RESPONSE_ID: u64 = 1;

/// Seed for the server's connection ID (fixed so experiments are reproducible).
const SERVER_CID_SEED: u64 = 0x5EED_5EED_5EED_5EED;

impl QuicServer {
    /// Creates a server with the given profile and RNG seed (the seed only
    /// matters for profiles with probabilistic behaviour, i.e. mvfst).
    pub fn new(profile: ImplementationProfile, seed: u64) -> Self {
        let peer_limit = profile.initial_peer_max_stream_data;
        QuicServer {
            profile,
            rng: StdRng::seed_from_u64(seed),
            phase: ServerPhase::Idle,
            scid: ConnectionId::from_seed(SERVER_CID_SEED),
            client_cid: ConnectionId::empty(),
            key_material: None,
            tx_pn: [0; 3],
            largest_rx: [None; 3],
            one_rtt_available: false,
            peer_max_stream_data: peer_limit,
            sent_stream_offset: 0,
            blocked_bytes: 0,
            retry_sent: false,
            expected_token: None,
            validated_port: None,
            pre_retry_initial_pn: None,
            datagrams_processed: 0,
        }
    }

    /// The server's implementation profile.
    pub fn profile(&self) -> &ImplementationProfile {
        &self.profile
    }

    /// Current connection phase.
    pub fn phase(&self) -> ServerPhase {
        self.phase
    }

    /// Datagrams processed since the last reset.
    pub fn datagrams_processed(&self) -> u64 {
        self.datagrams_processed
    }

    /// Drops all connection state, returning the server to `Idle`
    /// (property (3) of §3.2: the SUL must be resettable between queries).
    pub fn reset(&mut self) {
        let seed_keep = self.rng.gen::<u64>();
        *self = QuicServer::new(self.profile.clone(), seed_keep);
    }

    fn level_for(packet_type: PacketType) -> Option<EncryptionLevel> {
        match packet_type {
            PacketType::Initial | PacketType::ZeroRtt => Some(EncryptionLevel::Initial),
            PacketType::Handshake => Some(EncryptionLevel::Handshake),
            PacketType::Short => Some(EncryptionLevel::OneRtt),
            _ => None,
        }
    }

    fn space(level: EncryptionLevel) -> usize {
        match level {
            EncryptionLevel::Initial => 0,
            EncryptionLevel::Handshake => 1,
            EncryptionLevel::OneRtt => 2,
        }
    }

    fn keys(&self, level: EncryptionLevel) -> Option<Keys> {
        self.key_material.map(|m| Keys::derive(m, level))
    }

    fn build(&mut self, packet_type: PacketType, frames: Vec<Frame>) -> Bytes {
        let level = Self::level_for(packet_type).unwrap_or(EncryptionLevel::Initial);
        let space = Self::space(level);
        let pn = self.tx_pn[space];
        self.tx_pn[space] += 1;
        let header = match packet_type {
            PacketType::Short => PacketHeader::short(self.client_cid.clone(), pn),
            _ => PacketHeader::long(packet_type, self.client_cid.clone(), self.scid.clone(), pn),
        };
        let keys = self.keys(level).unwrap_or_else(|| Keys::derive(0, level));
        Packet::new(header, frames).encode(&keys)
    }

    fn ack_frame(&self, level: EncryptionLevel) -> Frame {
        let largest = self.largest_rx[Self::space(level)].unwrap_or(0);
        Frame::Ack {
            largest_acknowledged: largest,
            ack_delay: 0,
            first_ack_range: 0,
        }
    }

    fn stateless_reset(&mut self) -> Bytes {
        let header = PacketHeader {
            packet_type: PacketType::StatelessReset,
            version: 0,
            destination_cid: self.client_cid.clone(),
            source_cid: ConnectionId::empty(),
            token: Bytes::new(),
            packet_number: 0,
        };
        Packet::new(header, vec![]).encode(&Keys::derive(0, EncryptionLevel::OneRtt))
    }

    /// Modeled per-datagram processing time of the server on the virtual
    /// clock (decrypt + frame processing + response flight build).
    pub const SERVICE_DELAY: SimDuration = SimDuration::from_micros(5);

    /// The non-blocking step path: handles `datagram` as of virtual time
    /// `now` and returns the response flight together with the virtual
    /// instant it is ready to leave the server (`now + SERVICE_DELAY`).
    /// Nothing blocks; an event-driven session records the deadline and a
    /// shared clock jumps to the earliest one across all in-flight
    /// exchanges.  State transitions are identical to
    /// [`QuicServer::handle_datagram`].
    pub fn handle_datagram_at(
        &mut self,
        datagram: &Bytes,
        source_port: u16,
        now: SimTime,
    ) -> (Vec<Bytes>, SimTime) {
        let responses = self.handle_datagram(datagram, source_port);
        (responses, now + Self::SERVICE_DELAY)
    }

    /// Handles a datagram arriving from `source_port`, returning the
    /// datagrams the server sends in response (possibly none).
    pub fn handle_datagram(&mut self, datagram: &Bytes, source_port: u16) -> Vec<Bytes> {
        self.datagrams_processed += 1;
        let Ok((header, _)) = Packet::decode_header(datagram) else {
            return Vec::new();
        };
        let Some(level) = Self::level_for(header.packet_type) else {
            // Clients do not legitimately send Retry / VN / stateless resets.
            return Vec::new();
        };

        // Once closed, the connection no longer tries to decrypt anything:
        // whatever arrives is handled by the post-close policy (a stateless
        // reset is precisely the mechanism for packets that can no longer be
        // associated with a connection).
        if self.phase == ServerPhase::Closed {
            return self.after_close_response();
        }

        // Key / phase gating: which packets can we even look at?
        let can_process = match level {
            EncryptionLevel::Initial => true,
            EncryptionLevel::Handshake => !matches!(self.phase, ServerPhase::Idle),
            EncryptionLevel::OneRtt => self.one_rtt_available,
        };
        if !can_process {
            return Vec::new();
        }

        // Derive key material from the client's chosen destination CID on
        // first contact, exactly as Initial secrets are derived.
        if self.key_material.is_none() {
            if header.packet_type != PacketType::Initial {
                return Vec::new();
            }
            self.key_material = Some(header.destination_cid.key_material());
        }
        let keys = self.keys(level).expect("key material set above");
        let Ok(packet) = Packet::decode(datagram, &keys) else {
            return Vec::new();
        };
        let space = Self::space(level);
        self.largest_rx[space] = Some(
            self.largest_rx[space].map_or(packet.header.packet_number, |l| {
                l.max(packet.header.packet_number)
            }),
        );

        // A client must never send HANDSHAKE_DONE (§6.2.4): protocol violation.
        if packet
            .frames
            .iter()
            .any(|f| f.frame_type() == FrameType::HandshakeDone)
        {
            return self.close_on_violation(packet.header.packet_type);
        }

        match (self.phase, packet.header.packet_type) {
            (ServerPhase::Idle, PacketType::Initial) => {
                self.on_client_initial(&packet, source_port)
            }
            (ServerPhase::HandshakeStarted, PacketType::Handshake) => {
                self.on_client_handshake(&packet)
            }
            (ServerPhase::HandshakeStarted, PacketType::Initial) => {
                // Duplicate / reordered Initial: acknowledge, nothing more.
                Vec::new()
            }
            (ServerPhase::Established, PacketType::Short) => self.on_one_rtt(&packet),
            (ServerPhase::Established, _) => Vec::new(),
            _ => Vec::new(),
        }
    }

    fn on_client_initial(&mut self, packet: &Packet, source_port: u16) -> Vec<Bytes> {
        let has_crypto = packet
            .frames
            .iter()
            .any(|f| f.frame_type() == FrameType::Crypto);
        if !has_crypto {
            return Vec::new();
        }
        self.client_cid = packet.header.source_cid.clone();

        if self.profile.supports_retry {
            if !self.retry_sent {
                // First flight: validate the address with a Retry.
                self.retry_sent = true;
                self.pre_retry_initial_pn = Some(packet.header.packet_number);
                let token = Bytes::from(format!("token-{}-{}", source_port, self.scid));
                self.expected_token = Some(token.clone());
                self.validated_port = Some(source_port);
                // Key material resets with the new connection attempt.
                self.key_material = None;
                let header = PacketHeader::long(
                    PacketType::Retry,
                    self.client_cid.clone(),
                    self.scid.clone(),
                    0,
                )
                .with_token(token);
                let retry =
                    Packet::new(header, vec![]).encode(&Keys::derive(0, EncryptionLevel::Initial));
                return vec![retry];
            }
            // Post-Retry Initial: the token must match and must arrive from
            // the validated address/port (Issue 3: the tracker client fails
            // this by re-binding to a fresh port).
            let token_ok = self.expected_token.as_deref() == Some(&packet.header.token[..]);
            let port_ok = self.validated_port == Some(source_port);
            if !token_ok || !port_ok {
                return Vec::new();
            }
            // Issue 1: implementations disagree on what to do when the
            // client resets its packet-number space after Retry.
            if self.profile.abort_on_pn_reset_after_retry {
                if let Some(pre) = self.pre_retry_initial_pn {
                    if packet.header.packet_number <= pre && pre > 0 {
                        return self.close_on_violation(PacketType::Initial);
                    }
                }
            }
        }

        self.phase = ServerPhase::HandshakeStarted;
        let mut out = Vec::new();
        out.push(self.build(
            PacketType::Initial,
            vec![
                self.ack_frame(EncryptionLevel::Initial),
                Frame::Crypto {
                    offset: 0,
                    data: Bytes::from_static(b"server-hello"),
                },
            ],
        ));
        out.push(self.build(
            PacketType::Handshake,
            vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"encrypted-extensions"),
            }],
        ));
        out.push(self.build(
            PacketType::Handshake,
            vec![Frame::Crypto {
                offset: 20,
                data: Bytes::from_static(b"certificate-finished"),
            }],
        ));
        if self.profile.handshake_style == HandshakeStyle::Google {
            // Google's first flight already carries early application data.
            self.one_rtt_available = true;
            out.push(self.build(
                PacketType::Short,
                vec![Frame::Stream {
                    stream_id: STREAM_RESPONSE_ID,
                    offset: 0,
                    fin: false,
                    data: Bytes::from_static(b"early-data"),
                }],
            ));
        }
        out
    }

    fn on_client_handshake(&mut self, packet: &Packet) -> Vec<Bytes> {
        let has_crypto = packet
            .frames
            .iter()
            .any(|f| f.frame_type() == FrameType::Crypto);
        if !has_crypto {
            return Vec::new();
        }
        self.phase = ServerPhase::Established;
        self.one_rtt_available = true;
        match self.profile.handshake_style {
            HandshakeStyle::Google => vec![
                self.build(
                    PacketType::Short,
                    vec![Frame::Crypto {
                        offset: 0,
                        data: Bytes::from_static(b"session-ticket"),
                    }],
                ),
                self.build(PacketType::Short, vec![Frame::HandshakeDone]),
            ],
            HandshakeStyle::Quiche => vec![
                self.build(
                    PacketType::Handshake,
                    vec![self.ack_frame(EncryptionLevel::Handshake)],
                ),
                self.build(
                    PacketType::Short,
                    vec![
                        Frame::Crypto {
                            offset: 0,
                            data: Bytes::from_static(b"session-ticket"),
                        },
                        Frame::HandshakeDone,
                        Frame::Stream {
                            stream_id: STREAM_RESPONSE_ID,
                            offset: 0,
                            fin: false,
                            data: Bytes::from_static(b"welcome"),
                        },
                    ],
                ),
            ],
        }
    }

    fn on_one_rtt(&mut self, packet: &Packet) -> Vec<Bytes> {
        let mut has_stream = false;
        let mut has_flow_update = false;
        let mut only_ack = true;
        for frame in &packet.frames {
            match frame {
                Frame::Stream { .. } => {
                    has_stream = true;
                    only_ack = false;
                }
                Frame::MaxData { maximum } => {
                    // Connection-level credit is tracked implicitly through
                    // the stream-level limit in this simulator.
                    let _ = maximum;
                    has_flow_update = true;
                    only_ack = false;
                }
                Frame::MaxStreamData { maximum, .. } => {
                    self.peer_max_stream_data = self.peer_max_stream_data.max(*maximum);
                    has_flow_update = true;
                    only_ack = false;
                }
                Frame::Ack { .. } | Frame::Padding => {}
                _ => only_ack = false,
            }
        }
        if only_ack {
            return Vec::new();
        }

        let mut frames = vec![self.ack_frame(EncryptionLevel::OneRtt)];
        if has_stream {
            // The client sent request data; we owe it `response_chunk` bytes
            // of response on our stream, subject to its flow-control limit.
            self.blocked_bytes += self.profile.response_chunk;
        }
        if has_stream || has_flow_update {
            let budget = self
                .peer_max_stream_data
                .saturating_sub(self.sent_stream_offset);
            let to_send = self.blocked_bytes.min(budget);
            if to_send > 0 {
                frames.push(Frame::Stream {
                    stream_id: STREAM_RESPONSE_ID,
                    offset: self.sent_stream_offset,
                    fin: false,
                    data: Bytes::from(vec![b'r'; to_send as usize]),
                });
                self.sent_stream_offset += to_send;
                self.blocked_bytes -= to_send;
            }
            if self.blocked_bytes > 0 {
                // We are blocked: advertise it.  The Google profile ships the
                // Issue-4 defect here — the field is a leftover placeholder 0.
                let advertised = if self.profile.stream_data_blocked_constant_zero {
                    0
                } else {
                    self.peer_max_stream_data
                };
                frames.push(Frame::StreamDataBlocked {
                    stream_id: STREAM_RESPONSE_ID,
                    maximum_stream_data: advertised,
                });
            }
        }
        if frames.len() == 1 && !has_stream && !has_flow_update {
            return Vec::new();
        }
        vec![self.build(PacketType::Short, frames)]
    }

    fn close_on_violation(&mut self, trigger: PacketType) -> Vec<Bytes> {
        let close = Frame::ConnectionClose {
            error_code: 0x0A, // PROTOCOL_VIOLATION
            frame_type: 0x1E, // HANDSHAKE_DONE
            reason: "client sent HANDSHAKE_DONE".to_string(),
            application: false,
        };
        let mut out = Vec::new();
        match (self.phase, trigger) {
            (ServerPhase::Idle, _) | (ServerPhase::HandshakeStarted, PacketType::Initial) => {
                out.push(self.build(
                    PacketType::Initial,
                    vec![self.ack_frame(EncryptionLevel::Initial), close.clone()],
                ));
                if self.phase != ServerPhase::Idle {
                    out.push(self.build(PacketType::Handshake, vec![close.clone()]));
                }
            }
            (ServerPhase::HandshakeStarted, _) => {
                out.push(self.build(
                    PacketType::Handshake,
                    vec![self.ack_frame(EncryptionLevel::Handshake), close.clone()],
                ));
                if self.profile.handshake_style == HandshakeStyle::Google && self.one_rtt_available
                {
                    out.push(self.build(
                        PacketType::Short,
                        vec![
                            close.clone(),
                            Frame::Stream {
                                stream_id: STREAM_RESPONSE_ID,
                                offset: self.sent_stream_offset,
                                fin: true,
                                data: Bytes::new(),
                            },
                        ],
                    ));
                }
            }
            (ServerPhase::Established, _) => {
                out.push(self.build(
                    PacketType::Short,
                    vec![self.ack_frame(EncryptionLevel::OneRtt), close.clone()],
                ));
            }
            (ServerPhase::Closed, _) => {}
        }
        self.phase = ServerPhase::Closed;
        out
    }

    /// What the server does with packets that arrive after the connection
    /// was closed.  Correct implementations answer deterministically; the
    /// mvfst profile answers with a stateless reset only ≈82% of the time
    /// (Issue 2) and stays silent otherwise, with no back-off.
    fn after_close_response(&mut self) -> Vec<Bytes> {
        let p = self.profile.reset_probability_after_close;
        if p >= 1.0 {
            // Deterministic: retransmit the connection close.
            let close = Frame::ConnectionClose {
                error_code: 0x0A,
                frame_type: 0x1E,
                reason: "closed".to_string(),
                application: false,
            };
            let packet_type = if self.one_rtt_available {
                PacketType::Short
            } else {
                PacketType::Initial
            };
            return vec![self.build(packet_type, vec![close])];
        }
        if self.rng.gen_bool(p) {
            vec![self.stateless_reset()]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    // The server is exercised end-to-end (through real packet exchanges) in
    // `client.rs` and in the crate-level tests in `tests/conversations.rs`,
    // where a reference client is available to drive it.  Here we only pin
    // the deadline arithmetic of the non-blocking step path.
    use super::*;

    #[test]
    fn timed_datagram_path_reports_the_service_deadline() {
        let mut server = QuicServer::new(ImplementationProfile::google(), 1);
        let now = SimTime::from_micros(250);
        let (responses, ready_at) =
            server.handle_datagram_at(&Bytes::from_static(b"not-a-quic-packet"), 40_000, now);
        assert!(responses.is_empty(), "garbage datagrams are ignored");
        assert_eq!(ready_at, now + QuicServer::SERVICE_DELAY);
        assert_eq!(server.datagrams_processed(), 1);
    }
}
