//! # prognosis-quic-sim
//!
//! Simulated QUIC server implementations — the systems under learning of
//! §6.2 — plus the instrumentable reference client the Adapter is built on.
//!
//! Real Prognosis learned models of Cloudflare Quiche, Google QUIC and
//! Facebook mvfst running in Docker, using QUIC-Tracker as the reference
//! implementation.  This crate substitutes in-process servers that speak the
//! wire format of `prognosis-quic-wire` and whose *observable behaviour*
//! reproduces what the paper reports for each implementation, including its
//! defects:
//!
//! * [`profile::ImplementationProfile::google`] — the larger (12-state in
//!   the paper) post-handshake structure with server-side flow-control
//!   blocking, and the Issue-4 defect: the `Maximum Stream Data` field of
//!   `STREAM_DATA_BLOCKED` is hard-coded to 0;
//! * [`profile::ImplementationProfile::quiche`] — the smaller (8-state)
//!   structure without the blocked-stream states;
//! * [`profile::ImplementationProfile::mvfst`] — the Issue-2 defect: after a
//!   protocol-violation close, further packets are answered with a stateless
//!   reset only with probability ≈ 0.82 and with silence otherwise;
//! * [`profile::ImplementationProfile::tracker`] — the reference
//!   implementation, whose client side ([`client::ReferenceQuicClient`]) can
//!   reproduce the Issue-3 defect: the post-Retry Initial is re-sent from a
//!   fresh ephemeral UDP port, so the server's address validation fails.
//!
//! Because the learner is closed-box (it only sees packets), learning these
//! servers exercises exactly the same framework code paths as learning the
//! real implementations would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod profile;
pub mod server;

pub use client::ReferenceQuicClient;
pub use profile::{HandshakeStyle, ImplementationProfile};
pub use server::{QuicServer, ServerPhase};
