//! Implementation profiles: the observable design choices (and defects) that
//! distinguish the QUIC implementations the paper analyzed.
//!
//! The QUIC specification intentionally leaves room for different design
//! decisions (§6.2.3 calls this out explicitly), so two correct
//! implementations can — and do — have different learned models.  A profile
//! captures exactly the choices that are visible at the abstract-alphabet
//! level, plus the three injected defects corresponding to Issues 2–4.

use serde::{Deserialize, Serialize};

/// The overall shape of the handshake responses (which packets are emitted
/// when), mirroring the two families visible in Appendix A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandshakeStyle {
    /// Google-style: the first flight already carries early 1-RTT stream
    /// data, and handshake completion is signalled with separate
    /// `SHORT[CRYPTO]` and `SHORT[HANDSHAKE_DONE]` packets.
    Google,
    /// Quiche-style: handshake completion is acknowledged at the handshake
    /// level and `HANDSHAKE_DONE`, session tickets and the first stream data
    /// are coalesced into 1-RTT packets.
    Quiche,
}

/// Observable configuration of one simulated QUIC server implementation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImplementationProfile {
    /// Human-readable name used in reports.
    pub name: String,
    /// Handshake response shape.
    pub handshake_style: HandshakeStyle,
    /// Issue 4: `STREAM_DATA_BLOCKED.Maximum Stream Data` is sent as the
    /// constant 0 instead of the actual blocked offset.
    pub stream_data_blocked_constant_zero: bool,
    /// Issue 2: probability that a packet received after a
    /// protocol-violation close is answered with a stateless reset
    /// (1.0 for implementations that answer deterministically; the paper
    /// measured ≈ 0.82 for mvfst).
    pub reset_probability_after_close: f64,
    /// Initial flow-control credit the *client* grants the server for
    /// stream 1 (server-initiated responses).  A small value makes the
    /// server hit the limit and emit `STREAM_DATA_BLOCKED`, producing the
    /// extra post-handshake states of the Google model.
    pub initial_peer_max_stream_data: u64,
    /// Bytes of response data the server tries to send per client STREAM
    /// frame (relative to `initial_peer_max_stream_data` this determines how
    /// quickly it blocks).
    pub response_chunk: u64,
    /// Whether the server performs Retry-based address validation before
    /// accepting a connection.
    pub supports_retry: bool,
    /// Issue-1 divergence: whether the server aborts the connection when a
    /// client resets its packet-number space after a Retry (the behaviour
    /// the RFC clarification [PR #3990] explicitly allows), or silently
    /// accepts it.
    pub abort_on_pn_reset_after_retry: bool,
}

impl ImplementationProfile {
    /// The Google QUIC profile (Appendix A.2): larger model with
    /// flow-control blocking and the Issue-4 constant-zero defect.
    pub fn google() -> Self {
        ImplementationProfile {
            name: "google".to_string(),
            handshake_style: HandshakeStyle::Google,
            stream_data_blocked_constant_zero: true,
            reset_probability_after_close: 1.0,
            initial_peer_max_stream_data: 150,
            response_chunk: 100,
            supports_retry: false,
            abort_on_pn_reset_after_retry: false,
        }
    }

    /// The Cloudflare Quiche profile (Appendix A.3): smaller model, no
    /// observable blocking, correct `STREAM_DATA_BLOCKED` fields.
    pub fn quiche() -> Self {
        ImplementationProfile {
            name: "quiche".to_string(),
            handshake_style: HandshakeStyle::Quiche,
            stream_data_blocked_constant_zero: false,
            reset_probability_after_close: 1.0,
            initial_peer_max_stream_data: 1_000_000,
            response_chunk: 100,
            supports_retry: false,
            abort_on_pn_reset_after_retry: true,
        }
    }

    /// The Facebook mvfst profile: Quiche-like shape plus the Issue-2
    /// nondeterministic stateless-reset defect (≈ 82% of post-close packets
    /// are answered with a reset, the rest with silence, and there is no
    /// back-off).
    pub fn mvfst() -> Self {
        ImplementationProfile {
            name: "mvfst".to_string(),
            handshake_style: HandshakeStyle::Quiche,
            stream_data_blocked_constant_zero: false,
            reset_probability_after_close: 0.82,
            initial_peer_max_stream_data: 1_000_000,
            response_chunk: 100,
            supports_retry: false,
            abort_on_pn_reset_after_retry: false,
        }
    }

    /// The QUIC-Tracker profile used as the reference implementation; retry
    /// support is enabled because Issue 3 concerns its retry handling.
    pub fn tracker() -> Self {
        ImplementationProfile {
            name: "tracker".to_string(),
            handshake_style: HandshakeStyle::Quiche,
            stream_data_blocked_constant_zero: false,
            reset_probability_after_close: 1.0,
            initial_peer_max_stream_data: 1_000_000,
            response_chunk: 100,
            supports_retry: true,
            abort_on_pn_reset_after_retry: false,
        }
    }

    /// Enables Retry-based address validation on this profile.
    pub fn with_retry(mut self) -> Self {
        self.supports_retry = true;
        self
    }

    /// All three target profiles the paper learned models of.
    pub fn targets() -> Vec<ImplementationProfile> {
        vec![Self::quiche(), Self::google(), Self::mvfst()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_encode_the_documented_defects() {
        let google = ImplementationProfile::google();
        assert!(
            google.stream_data_blocked_constant_zero,
            "Issue 4 lives in the Google profile"
        );
        assert_eq!(google.handshake_style, HandshakeStyle::Google);
        assert!(
            google.initial_peer_max_stream_data < 1_000,
            "Google profile must hit flow control"
        );

        let quiche = ImplementationProfile::quiche();
        assert!(!quiche.stream_data_blocked_constant_zero);
        assert_eq!(quiche.reset_probability_after_close, 1.0);

        let mvfst = ImplementationProfile::mvfst();
        assert!(
            (mvfst.reset_probability_after_close - 0.82).abs() < 1e-9,
            "Issue 2: ≈82% resets"
        );

        let tracker = ImplementationProfile::tracker();
        assert!(
            tracker.supports_retry,
            "Issue 3 concerns the tracker's retry mechanism"
        );
    }

    #[test]
    fn target_list_and_retry_builder() {
        let targets = ImplementationProfile::targets();
        assert_eq!(targets.len(), 3);
        assert!(targets.iter().any(|p| p.name == "google"));
        let with_retry = ImplementationProfile::google().with_retry();
        assert!(with_retry.supports_retry);
    }
}
