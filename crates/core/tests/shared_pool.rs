//! Heterogeneous learning runs leasing one [`EnginePool`]: a TCP learn and
//! a QUIC learn executing *concurrently* on the same engine threads must
//! produce exactly the models and query-cost statistics of their private
//! (`spawn_with`) runs — the pool moves scheduling, never results.  This is
//! the substrate the campaign orchestrator builds its matrix cells on.

use prognosis_core::engine::EnginePool;
use prognosis_core::pipeline::{
    learn_model_parallel, learn_model_parallel_on, LearnConfig, LearnedModel,
};
use prognosis_core::quic_adapter::{quic_alphabet, QuicSulFactory};
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSulFactory};
use prognosis_quic_sim::profile::ImplementationProfile;

fn config() -> LearnConfig {
    LearnConfig {
        random_tests: 200,
        max_word_len: 6,
        eq_batch_size: 64,
        workers: 2,
        ..LearnConfig::default()
    }
}

fn private_tcp() -> LearnedModel {
    learn_model_parallel(&TcpSulFactory::default(), &tcp_alphabet(), config())
        .expect("private TCP learn succeeds")
        .learned
}

fn private_quic() -> LearnedModel {
    let factory = QuicSulFactory::new(ImplementationProfile::google(), 11);
    learn_model_parallel(&factory, &quic_alphabet(), config())
        .expect("private QUIC learn succeeds")
        .learned
}

#[test]
fn concurrent_heterogeneous_leases_match_private_runs() {
    let tcp_reference = private_tcp();
    let quic_reference = private_quic();

    // 4 slots, two concurrent 2-worker leases: both protocols run at once
    // on the same engine threads, interleaving heterogeneous session types.
    let pool = EnginePool::new(4);
    let (tcp_shared, quic_shared) = std::thread::scope(|scope| {
        let tcp = scope.spawn(|| {
            learn_model_parallel_on(&pool, &TcpSulFactory::default(), &tcp_alphabet(), config())
                .expect("shared-pool TCP learn succeeds")
                .learned
        });
        let quic = scope.spawn(|| {
            let factory = QuicSulFactory::new(ImplementationProfile::google(), 11);
            learn_model_parallel_on(&pool, &factory, &quic_alphabet(), config())
                .expect("shared-pool QUIC learn succeeds")
                .learned
        });
        (
            tcp.join().expect("tcp thread"),
            quic.join().expect("quic thread"),
        )
    });

    assert_eq!(tcp_shared.model, tcp_reference.model);
    assert_eq!(
        tcp_shared.stats.membership_queries,
        tcp_reference.stats.membership_queries
    );
    assert_eq!(
        tcp_shared.stats.equivalence_tests,
        tcp_reference.stats.equivalence_tests
    );
    assert_eq!(quic_shared.model, quic_reference.model);
    assert_eq!(
        quic_shared.stats.membership_queries,
        quic_reference.stats.membership_queries
    );
    assert_eq!(
        quic_shared.stats.equivalence_tests,
        quic_reference.stats.equivalence_tests
    );

    // Every leased slot was returned: the pool is reusable afterwards.
    assert_eq!(pool.free_slots(), pool.total_slots());
}

#[test]
fn an_undersized_pool_serializes_leases_without_changing_results() {
    let tcp_reference = private_tcp();

    // 2 slots but two 2-worker runs: the second lease must wait for the
    // first to finish — all-or-nothing acquisition, no deadlock, and the
    // results stay identical.
    let pool = EnginePool::new(2);
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            learn_model_parallel_on(&pool, &TcpSulFactory::default(), &tcp_alphabet(), config())
                .expect("first serialized learn succeeds")
                .learned
        });
        let b = scope.spawn(|| {
            learn_model_parallel_on(&pool, &TcpSulFactory::default(), &tcp_alphabet(), config())
                .expect("second serialized learn succeeds")
                .learned
        });
        (
            a.join().expect("first thread"),
            b.join().expect("second thread"),
        )
    });

    assert_eq!(first.model, tcp_reference.model);
    assert_eq!(second.model, tcp_reference.model);
    assert_eq!(pool.free_slots(), pool.total_slots());
}
