//! Determinism of the event-driven session engine: for any
//! `(workers, max_inflight)` the multiplexed engine must learn a
//! bit-identical model with identical query-cost statistics
//! (`fresh_symbols`, `equivalence_tests`, `membership_queries`) — and a
//! warm start against a persisted observation cache must answer everything
//! from disk regardless of the engine shape.

use prognosis_core::latency::LatencySulFactory;
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig, LearnedModel};
use prognosis_core::session::SimDuration;
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
use proptest::prelude::*;
use std::sync::OnceLock;

fn engine_config() -> LearnConfig {
    LearnConfig {
        random_tests: 250,
        max_word_len: 7,
        eq_batch_size: 128,
        ..LearnConfig::default()
    }
}

/// The sequential reference run every engine shape must reproduce.
fn sequential_baseline() -> &'static LearnedModel {
    static BASELINE: OnceLock<LearnedModel> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let mut sul = TcpSul::with_defaults();
        learn_model(&mut sul, &tcp_alphabet(), engine_config())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The learned model and every query-cost statistic are invariant
    // under the engine shape — workers, in-flight sessions, and whether
    // the round trips are latency-modelled.
    #[test]
    fn engine_shape_never_changes_the_model_or_the_query_costs(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
        with_latency in any::<bool>(),
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let baseline = sequential_baseline();
        let config = engine_config()
            .with_workers(workers)
            .with_max_inflight(max_inflight);
        let outcome = if with_latency {
            let factory = LatencySulFactory::new(
                TcpSulFactory::default(),
                SimDuration::from_micros(50),
                SimDuration::from_micros(100),
            );
            let outcome = learn_model_parallel(&factory, &tcp_alphabet(), config)
                .expect("parallel learning succeeds");
            prop_assert!(
                outcome.engine.virtual_elapsed_micros > 0,
                "latency-modelled runs take virtual time"
            );
            outcome.learned
        } else {
            learn_model_parallel(&TcpSulFactory::default(), &tcp_alphabet(), config)
                .expect("parallel learning succeeds")
                .learned
        };
        prop_assert_eq!(
            &outcome.model,
            &baseline.model,
            "(workers, max_inflight, latency) = ({}, {}, {}) changed the model",
            workers, max_inflight, with_latency
        );
        prop_assert_eq!(outcome.stats.fresh_symbols, baseline.stats.fresh_symbols);
        prop_assert_eq!(outcome.stats.equivalence_tests, baseline.stats.equivalence_tests);
        prop_assert_eq!(outcome.stats.membership_queries, baseline.stats.membership_queries);
        prop_assert_eq!(outcome.stats.counterexamples, baseline.stats.counterexamples);
    }
}

mod warm_start_grid {
    use super::*;

    fn cache_path() -> String {
        std::env::temp_dir()
            .join(format!(
                "prognosis-session-engine-warm-{}.json",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    }

    /// Seeds the cache file exactly once (the PR-2 `CacheStore` format) and
    /// returns the cold model every warm shape must reproduce.
    fn cold_seeded() -> &'static LearnedModel {
        static COLD: OnceLock<LearnedModel> = OnceLock::new();
        COLD.get_or_init(|| {
            let path = cache_path();
            let _ = std::fs::remove_file(&path);
            let mut sul = TcpSul::with_defaults();
            learn_model(
                &mut sul,
                &tcp_alphabet(),
                engine_config().with_cache_path(path),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // A warm start against a persisted cache issues zero fresh SUL
        // symbols and learns a bit-identical model for every engine shape.
        #[test]
        fn warm_start_is_engine_shape_independent(
            workers in 1usize..4,
            inflight_exp in 0u32..7,
        ) {
            let max_inflight = 1usize << inflight_exp;
            let cold = cold_seeded();
            let outcome = learn_model_parallel(
                &TcpSulFactory::default(),
                &tcp_alphabet(),
                engine_config()
                    .with_cache_path(cache_path())
                    .with_workers(workers)
                    .with_max_inflight(max_inflight),
            )
            .expect("parallel learning succeeds");
            prop_assert_eq!(
                &outcome.learned.model,
                &cold.model,
                "warm model with (workers, max_inflight) = ({}, {}) \
                 must be bit-identical to the cold model",
                workers, max_inflight
            );
            prop_assert_eq!(
                outcome.learned.stats.fresh_symbols, 0,
                "a covering cache must answer everything from disk"
            );
            prop_assert_eq!(outcome.sul_stats.symbols_sent, 0);
            prop_assert_eq!(
                outcome.learned.stats.membership_queries,
                cold.stats.membership_queries
            );
        }
    }
}
