//! Determinism of the impaired-network session transport: for any
//! `(workers, max_inflight)`, learning over a lossy + jittery + reordering
//! link must produce a bit-identical model with identical query-cost
//! statistics (`fresh_symbols`, `membership_queries`, `equivalence_tests`)
//! — impairment fates are a pure function of `(noise seed, per-query packet
//! index)`, so the engine shape moves only virtual time, never answers.
//! On an unimpaired wire the transport must reproduce the in-process
//! blocking baseline exactly.

use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig, LearnedModel};
use prognosis_core::session::SimDuration;
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
use proptest::prelude::*;
use std::sync::OnceLock;

fn engine_config() -> LearnConfig {
    LearnConfig {
        random_tests: 150,
        max_word_len: 6,
        eq_batch_size: 128,
        ..LearnConfig::default()
    }
}

/// The lossy, jittery, reordering link every grid point learns over.
fn impaired_link() -> LinkConfig {
    LinkConfig::with_latency(SimDuration::from_micros(100))
        .jitter(SimDuration::from_micros(200))
        .loss(0.08)
        .reorder(0.15)
        .duplicate(0.05)
}

fn impaired_factory() -> NetworkedSessionFactory<TcpSulFactory> {
    NetworkedSessionFactory::new(TcpSulFactory::default(), impaired_link()).with_noise_seed(23)
}

/// The (1 worker, 1 session) impaired reference run every other grid point
/// must reproduce bit-identically.
fn impaired_baseline() -> &'static LearnedModel {
    static BASELINE: OnceLock<LearnedModel> = OnceLock::new();
    BASELINE.get_or_init(|| {
        learn_model_parallel(&impaired_factory(), &tcp_alphabet(), engine_config())
            .expect("impaired learning succeeds")
            .learned
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The acceptance claim of the impaired-network transport: a learning
    // run over a lossy + jittery link at high max_inflight completes, and
    // is deterministic per seed across the whole engine-shape grid.
    #[test]
    fn impaired_learning_is_engine_shape_independent(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let baseline = impaired_baseline();
        let outcome = learn_model_parallel(
            &impaired_factory(),
            &tcp_alphabet(),
            engine_config()
                .with_workers(workers)
                .with_max_inflight(max_inflight),
        )
        .expect("impaired learning succeeds");
        prop_assert_eq!(
            &outcome.learned.model,
            &baseline.model,
            "(workers, max_inflight) = ({}, {}) changed the model learned over an impaired link",
            workers, max_inflight
        );
        prop_assert_eq!(outcome.learned.stats.fresh_symbols, baseline.stats.fresh_symbols);
        prop_assert_eq!(outcome.learned.stats.membership_queries, baseline.stats.membership_queries);
        prop_assert_eq!(outcome.learned.stats.equivalence_tests, baseline.stats.equivalence_tests);
        prop_assert_eq!(outcome.learned.stats.counterexamples, baseline.stats.counterexamples);
        prop_assert!(
            outcome.engine.virtual_elapsed_micros > 0,
            "packets crossing a real link take virtual time"
        );
    }
}

#[test]
fn sixteen_inflight_sessions_complete_on_a_lossy_jittery_link() {
    // The headline configuration from the issue: max_inflight ≥ 16 over a
    // lossy + jittery link, twice, bit-identically.
    let config = engine_config().with_workers(1).with_max_inflight(16);
    let first = learn_model_parallel(&impaired_factory(), &tcp_alphabet(), config.clone())
        .expect("impaired learning succeeds");
    let second = learn_model_parallel(&impaired_factory(), &tcp_alphabet(), config)
        .expect("impaired learning succeeds");
    assert_eq!(first.learned.model, second.learned.model);
    assert_eq!(
        first.learned.stats.fresh_symbols,
        second.learned.stats.fresh_symbols
    );
    assert!(first.learned.model.num_states() >= 2);
}

#[test]
fn unimpaired_wire_reproduces_the_blocking_baseline() {
    // Latency alone is not an impairment: the networked transport must
    // answer exactly as the in-process blocking path, so the learned model
    // and every statistic match the plain sequential run bit for bit.
    let mut sul = TcpSul::with_defaults();
    let blocking = learn_model(&mut sul, &tcp_alphabet(), engine_config());
    let factory = NetworkedSessionFactory::new(
        TcpSulFactory::default(),
        LinkConfig::with_latency(SimDuration::from_micros(150)),
    );
    let outcome = learn_model_parallel(
        &factory,
        &tcp_alphabet(),
        engine_config().with_workers(2).with_max_inflight(8),
    )
    .expect("networked learning succeeds");
    assert_eq!(outcome.learned.model, blocking.model);
    assert_eq!(
        outcome.learned.stats.fresh_symbols,
        blocking.stats.fresh_symbols
    );
    assert_eq!(
        outcome.learned.stats.membership_queries,
        blocking.stats.membership_queries
    );
    // The sessions' Oracle Tables captured the wire exchanges.
    assert!(outcome.suls.iter().any(|s| !s.oracle_table().is_empty()));
}
