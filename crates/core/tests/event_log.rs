//! Determinism of the deterministic event stream: with diagnostics off,
//! the JSONL event log a learning run emits is a pure function of the
//! scenario — for any `(workers, max_inflight)` the serialized stream
//! must come back **byte-identical** to the (1 worker, 1 session)
//! reference.  Deterministic events carry only query-relative virtual
//! time and learner-order sequence numbers, and scoped staging commits
//! them in learner order, so the engine shape can move wall-clock
//! scheduling but never a single byte of the log.  The impaired-link
//! grid additionally pins the per-packet wire events (send / deliver /
//! drop / duplicate fates) across shapes, and the dataflow grid pins the
//! async path: sift-continuation and speculative-equivalence scopes
//! flush through the submission-order frontier, so even overlapped
//! phases and rolled-back speculation leave an identical stream.

use prognosis_core::latency::LatencySulFactory;
use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::pipeline::{learn_model_parallel_with_events, LearnConfig, SiftStrategy};
use prognosis_core::session::{SessionSulFactory, SimDuration};
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSulFactory};
use prognosis_events::{EventSink, MemorySink};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn engine_config() -> LearnConfig {
    LearnConfig {
        random_tests: 150,
        max_word_len: 6,
        eq_batch_size: 128,
        ..LearnConfig::default()
    }
}

/// Runs the scenario at the given engine shape with a memory sink and
/// diagnostics off, returning the serialized deterministic stream.
fn log_at<F>(factory: &F, workers: usize, max_inflight: usize, sift: SiftStrategy) -> String
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let sink = Arc::new(MemorySink::new());
    learn_model_parallel_with_events(
        factory,
        &tcp_alphabet(),
        engine_config()
            .with_workers(workers)
            .with_max_inflight(max_inflight)
            .with_sift(sift),
        Arc::clone(&sink) as Arc<dyn EventSink>,
        false,
    )
    .expect("parallel learning succeeds");
    sink.contents()
}

fn latency_factory() -> LatencySulFactory<TcpSulFactory> {
    LatencySulFactory::new(
        TcpSulFactory::default(),
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
    )
}

fn impaired_factory() -> NetworkedSessionFactory<TcpSulFactory> {
    let link = LinkConfig::with_latency(SimDuration::from_micros(100))
        .jitter(SimDuration::from_micros(200))
        .loss(0.08)
        .reorder(0.15)
        .duplicate(0.05);
    // Seed 7 loses packet index 3 (the noise stream rewinds to 0 every
    // query), so every multi-step query really exercises the drop path.
    NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(7)
}

/// The (1, 1) reference stream for the latency-modelled scenario.
fn latency_reference() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let log = log_at(&latency_factory(), 1, 1, SiftStrategy::Wavefront);
        assert!(
            log.contains("\"name\":\"session:done\"") && log.contains("\"name\":\"phase:enter\""),
            "the deterministic stream must carry session lifecycle and phase transitions"
        );
        log
    })
}

/// The (1, 1) reference stream for the impaired-wire scenario.
fn impaired_reference() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let log = log_at(&impaired_factory(), 1, 1, SiftStrategy::Wavefront);
        assert!(
            log.contains("\"name\":\"wire:send\"") && log.contains("\"name\":\"wire:drop\""),
            "the impaired stream must carry per-packet wire fates"
        );
        log
    })
}

/// The (1, 1) reference stream for the dataflow-learner scenario.
fn dataflow_reference() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let log = log_at(&latency_factory(), 1, 1, SiftStrategy::Dataflow);
        assert!(
            log.contains("\"name\":\"session:done\"")
                && log.contains("\"name\":\"speculation:commit\""),
            "the dataflow stream must carry async sessions and speculation commits"
        );
        log
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The tentpole determinism claim: the event log for a fixed scenario
    // is byte-identical across the whole (workers, max_inflight) grid.
    #[test]
    fn event_log_is_byte_identical_across_engine_shapes(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let log = log_at(&latency_factory(), workers, max_inflight, SiftStrategy::Wavefront);
        prop_assert_eq!(
            latency_reference(), &log,
            "(workers, max_inflight) = ({}, {}) changed the event log",
            workers, max_inflight
        );
    }

    // Same claim over an impaired wire: per-packet send/deliver/drop/
    // duplicate fates are scoped to the query and replayed bit-identically
    // regardless of the engine shape.
    #[test]
    fn wire_event_log_is_byte_identical_across_engine_shapes(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let log = log_at(&impaired_factory(), workers, max_inflight, SiftStrategy::Wavefront);
        prop_assert_eq!(
            impaired_reference(), &log,
            "(workers, max_inflight) = ({}, {}) changed the wire event log",
            workers, max_inflight
        );
    }

    // Same claim for the dataflow learner: async sift continuations and
    // speculative equivalence scopes flush through the submission-order
    // frontier, so overlapped phases and shape-dependent speculation depth
    // never reach the deterministic stream.
    #[test]
    fn dataflow_event_log_is_byte_identical_across_engine_shapes(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let log = log_at(&latency_factory(), workers, max_inflight, SiftStrategy::Dataflow);
        prop_assert_eq!(
            dataflow_reference(), &log,
            "(workers, max_inflight) = ({}, {}) changed the dataflow event log",
            workers, max_inflight
        );
    }
}
