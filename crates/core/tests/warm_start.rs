//! Cross-run persistence: a learning run with a `cache_path` persists its
//! observations, and a repeat run against the same SUL answers every
//! membership query from disk — zero fresh SUL symbols, bit-identical
//! model, for any worker count.  A changed SUL configuration or alphabet
//! invalidates the key and the run soundly starts cold.

use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig};
use prognosis_core::quic_adapter::{quic_data_alphabet, QuicSul};
use prognosis_core::sul::Sul;
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
use prognosis_quic_sim::profile::ImplementationProfile;

fn tmp_cache(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "prognosis-warm-start-test-{}-{name}.json",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

fn small_config(cache: &str) -> LearnConfig {
    LearnConfig {
        random_tests: 300,
        max_word_len: 8,
        ..LearnConfig::default()
    }
    .with_cache_path(cache)
}

#[test]
fn tcp_warm_start_is_deterministic_for_one_and_four_workers() {
    let cache = tmp_cache("tcp-workers");
    let _ = std::fs::remove_file(&cache);
    let config = small_config(&cache);

    let mut cold_sul = TcpSul::with_defaults();
    let cold = learn_model(&mut cold_sul, &tcp_alphabet(), config.clone());
    assert!(cold.stats.fresh_symbols > 0, "cold run pays fresh symbols");

    for workers in [1usize, 4] {
        let outcome = learn_model_parallel(
            &TcpSulFactory::default(),
            &tcp_alphabet(),
            config.clone().with_workers(workers),
        )
        .expect("parallel learning succeeds");
        assert_eq!(
            cold.model, outcome.learned.model,
            "warm model with {workers} workers must be bit-identical to the cold model"
        );
        assert_eq!(
            outcome.learned.stats.fresh_symbols, 0,
            "warm run with {workers} workers must answer everything from the cache"
        );
        assert_eq!(outcome.sul_stats.symbols_sent, 0);
        assert_eq!(
            cold.stats.membership_queries, outcome.learned.stats.membership_queries,
            "the learner must see the identical query stream warm and cold"
        );
    }
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn quic_warm_start_answers_repeat_runs_from_disk() {
    let cache = tmp_cache("quic");
    let _ = std::fs::remove_file(&cache);
    let config = LearnConfig {
        random_tests: 200,
        max_word_len: 8,
        ..LearnConfig::default()
    }
    .with_cache_path(&cache);

    let mut cold_sul = QuicSul::new(ImplementationProfile::google(), 3);
    let cold = learn_model(&mut cold_sul, &quic_data_alphabet(), config.clone());
    let mut warm_sul = QuicSul::new(ImplementationProfile::google(), 3);
    let warm = learn_model(&mut warm_sul, &quic_data_alphabet(), config.clone());
    assert_eq!(cold.model, warm.model);
    assert_eq!(warm.stats.fresh_symbols, 0);
    assert_eq!(warm_sul.stats().symbols_sent, 0);

    // Same path, different SUL seed: the key mismatch forces a cold run.
    let mut other_sul = QuicSul::new(ImplementationProfile::google(), 4);
    let other = learn_model(&mut other_sul, &quic_data_alphabet(), config.clone());
    assert!(
        other.stats.fresh_symbols > 0,
        "a different SUL seed must not reuse the cached observations"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn alphabet_change_invalidates_the_cache_key() {
    let cache = tmp_cache("alphabet");
    let _ = std::fs::remove_file(&cache);
    let config = small_config(&cache);

    let mut sul = TcpSul::with_defaults();
    let _ = learn_model(&mut sul, &tcp_alphabet(), config.clone());

    // A reduced alphabet is a different learning problem: warm start must
    // not pick up the full-alphabet observations even though every reduced
    // query would be answerable (the key is the alphabet, not coverage).
    let reduced: prognosis_automata::alphabet::Alphabet =
        tcp_alphabet().iter().take(3).cloned().collect();
    let mut sul2 = TcpSul::with_defaults();
    let reduced_run = learn_model(&mut sul2, &reduced, config.clone());
    assert!(reduced_run.stats.fresh_symbols > 0);

    // ... and the reduced run's save replaced the file (different key), so
    // the full alphabet now starts cold again.
    let mut sul3 = TcpSul::with_defaults();
    let full_again = learn_model(&mut sul3, &tcp_alphabet(), config.clone());
    assert!(full_again.stats.fresh_symbols > 0);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn warm_start_can_be_disabled_while_still_persisting() {
    let cache = tmp_cache("cold-start");
    let _ = std::fs::remove_file(&cache);
    let config = small_config(&cache);

    let mut sul = TcpSul::with_defaults();
    let first = learn_model(&mut sul, &tcp_alphabet(), config.clone());

    let no_warm = LearnConfig {
        warm_start: false,
        ..config.clone()
    };
    let mut sul2 = TcpSul::with_defaults();
    let second = learn_model(&mut sul2, &tcp_alphabet(), no_warm);
    assert_eq!(
        first.stats.fresh_symbols, second.stats.fresh_symbols,
        "with warm_start off the second run repeats the cold run exactly"
    );

    // The file kept accumulating: a warm third run is free.
    let mut sul3 = TcpSul::with_defaults();
    let third = learn_model(&mut sul3, &tcp_alphabet(), config.clone());
    assert_eq!(third.stats.fresh_symbols, 0);
    let _ = std::fs::remove_file(&cache);
}

mod oracle_table_serde {
    use prognosis_core::oracle_table::OracleTable;
    use proptest::prelude::*;

    fn arb_table() -> impl Strategy<Value = OracleTable> {
        // Each query: up to 6 steps of (symbol index, input fields, output
        // fields); symbols come from a small pool so traces share prefixes.
        let step = || (0usize..5, prop::collection::vec(any::<i64>(), 0..3));
        let query = prop::collection::vec((step(), step()), 1..6);
        prop::collection::vec(query, 0..12).prop_map(|queries| {
            let mut table = OracleTable::new();
            for steps in queries {
                let inputs = steps
                    .iter()
                    .map(|((i, fields), _)| (format!("in{i}"), fields.clone()))
                    .collect();
                let outputs = steps
                    .iter()
                    .map(|(_, (o, fields))| (format!("out{o}"), fields.clone()))
                    .collect();
                table.record_steps(inputs, outputs);
            }
            table
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oracle_table_round_trips_through_json(table in arb_table()) {
            let json = serde_json::to_string(&table).unwrap();
            let back: OracleTable = serde_json::from_str(&json).unwrap();
            // Entry-by-entry equality is stronger than the order-insensitive
            // set equality the cache needs.
            prop_assert_eq!(&back, &table);
            prop_assert_eq!(back.len(), table.len());
        }
    }
}
