//! Wavefront-vs-serial sift equivalence over the engine grid: for any
//! `(workers, max_inflight, impairment)` the breadth-wise sift wavefront
//! must build a **bit-identical** discrimination tree and model to serial
//! sifting, with `membership_queries` / `fresh_symbols` no greater than
//! serial (batch dedup may make them smaller — the direction is asserted),
//! including warm starts against a PR-2 `CacheStore` file.

use prognosis_automata::alphabet::Alphabet;
use prognosis_automata::mealy::MealyMachine;
use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::parallel::ParallelSulOracle;
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig, LearnedModel};
use prognosis_core::session::{SessionSulFactory, SimDuration};
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSulFactory};
use prognosis_learner::dtree::SiftStrategy;
use prognosis_learner::stats::LearningStats;
use prognosis_learner::{CacheOracle, DTreeLearner, Learner, RandomWordOracle};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One learner-level run on a fresh parallel engine: returns the model,
/// the learner stats, the discrimination tree's canonical signature and
/// the fresh-symbol cost.
fn learn_direct<F>(
    factory: &F,
    alphabet: &Alphabet,
    strategy: SiftStrategy,
    workers: usize,
    max_inflight: usize,
    random_tests: usize,
) -> (MealyMachine, LearningStats, Vec<String>, u64)
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let oracle = ParallelSulOracle::spawn_with(factory, workers, max_inflight);
    let mut membership = CacheOracle::new(oracle);
    let mut learner = DTreeLearner::with_strategy(alphabet.clone(), strategy);
    let mut equivalence = RandomWordOracle::new(7, random_tests, 2, 6).with_batch_size(128);
    let result = learner.learn(&mut membership, &mut equivalence);
    let fresh = membership.fresh_symbols();
    (result.model, result.stats, learner.tree_signature(), fresh)
}

fn compare_strategies<F>(
    factory: &F,
    alphabet: &Alphabet,
    workers: usize,
    max_inflight: usize,
    random_tests: usize,
    label: &str,
) where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let (serial_model, serial_stats, serial_tree, serial_fresh) = learn_direct(
        factory,
        alphabet,
        SiftStrategy::Serial,
        workers,
        max_inflight,
        random_tests,
    );
    let (wave_model, wave_stats, wave_tree, wave_fresh) = learn_direct(
        factory,
        alphabet,
        SiftStrategy::Wavefront,
        workers,
        max_inflight,
        random_tests,
    );
    prop_assert_eq!(
        &wave_model,
        &serial_model,
        "{}: models diverged (not merely inequivalent — state numbering counts)",
        label
    );
    prop_assert_eq!(
        &wave_tree,
        &serial_tree,
        "{}: discrimination trees diverged",
        label
    );
    prop_assert!(
        wave_stats.membership_queries <= serial_stats.membership_queries,
        "{}: wavefront asked more queries ({} > {})",
        label,
        wave_stats.membership_queries,
        serial_stats.membership_queries
    );
    prop_assert!(
        wave_fresh <= serial_fresh,
        "{}: wavefront executed more fresh symbols ({} > {})",
        label,
        wave_fresh,
        serial_fresh
    );
    prop_assert_eq!(wave_stats.counterexamples, serial_stats.counterexamples);
    prop_assert_eq!(wave_stats.learning_rounds, serial_stats.learning_rounds);
    prop_assert_eq!(wave_stats.equivalence_tests, serial_stats.equivalence_tests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The wavefront is the same algorithm as serial sifting at every
    // point of the (workers, max_inflight, impairment) grid — including
    // over a 10%-loss impaired network, where answers depend on the
    // (rewound, pure) noise streams.
    #[test]
    fn wavefront_matches_serial_over_the_engine_grid(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
        lossy in any::<bool>(),
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let label = format!(
            "(workers, max_inflight, lossy) = ({workers}, {max_inflight}, {lossy})"
        );
        if lossy {
            let alphabet =
                Alphabet::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)"]);
            let factory = NetworkedSessionFactory::new(
                TcpSulFactory::default(),
                LinkConfig::with_latency(SimDuration::from_micros(100)).loss(0.1),
            )
            .with_noise_seed(23);
            compare_strategies(&factory, &alphabet, workers, max_inflight, 150, &label);
        } else {
            compare_strategies(
                &TcpSulFactory::default(),
                &tcp_alphabet(),
                workers,
                max_inflight,
                250,
                &label,
            );
        }
    }
}

mod warm_start_grid {
    use super::*;

    fn cache_path() -> String {
        std::env::temp_dir()
            .join(format!(
                "prognosis-sift-wavefront-warm-{}.json",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    }

    fn engine_config() -> LearnConfig {
        LearnConfig {
            random_tests: 250,
            max_word_len: 7,
            eq_batch_size: 128,
            ..LearnConfig::default()
        }
    }

    /// Seeds the PR-2 cache file once (wavefront, sequential pipeline) and
    /// returns the cold model every warm grid point must reproduce.
    fn cold_seeded() -> &'static LearnedModel {
        static COLD: OnceLock<LearnedModel> = OnceLock::new();
        COLD.get_or_init(|| {
            let path = cache_path();
            let _ = std::fs::remove_file(&path);
            let mut sul = prognosis_core::tcp_adapter::TcpSul::with_defaults();
            learn_model(
                &mut sul,
                &tcp_alphabet(),
                engine_config().with_cache_path(path),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // Warm starts against a persisted cache are strategy- and
        // engine-shape-independent: zero fresh SUL symbols and a
        // bit-identical model for either sift strategy at any grid point.
        #[test]
        fn warm_start_is_sift_strategy_independent(
            workers in 1usize..4,
            inflight_exp in 0u32..7,
            serial in any::<bool>(),
        ) {
            let max_inflight = 1usize << inflight_exp;
            let strategy = if serial {
                SiftStrategy::Serial
            } else {
                SiftStrategy::Wavefront
            };
            let cold = cold_seeded();
            let outcome = learn_model_parallel(
                &TcpSulFactory::default(),
                &tcp_alphabet(),
                engine_config()
                    .with_cache_path(cache_path())
                    .with_workers(workers)
                    .with_max_inflight(max_inflight)
                    .with_sift(strategy),
            )
            .expect("parallel learning succeeds");
            prop_assert_eq!(
                &outcome.learned.model,
                &cold.model,
                "warm {:?} model at (workers, max_inflight) = ({}, {}) \
                 must be bit-identical to the cold model",
                strategy, workers, max_inflight
            );
            prop_assert_eq!(
                outcome.learned.stats.fresh_symbols, 0,
                "a covering cache must answer everything from disk"
            );
            prop_assert_eq!(outcome.sul_stats.symbols_sent, 0);
            if strategy == SiftStrategy::Wavefront {
                // Same strategy as the cold seed run: identical counting.
                prop_assert_eq!(
                    outcome.learned.stats.membership_queries,
                    cold.stats.membership_queries
                );
            } else {
                // Serial counts duplicate probes the wavefront dedups.
                prop_assert!(
                    outcome.learned.stats.membership_queries
                        >= cold.stats.membership_queries
                );
            }
        }
    }
}
