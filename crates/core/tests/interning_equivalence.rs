//! The interning tentpole's safety net: symbol ids, chunked queue pulls
//! and banked answer replies are pure engine-internal mechanics.  A
//! learning run's observable face — the learned model, the learner-side
//! statistics, the SUL interaction counters, the deterministic event-log
//! bytes and the final observation trie — must be bit-identical across
//! the whole (workers, max_inflight, loss) grid to the (1 worker,
//! 1 session) reference of the same scenario.  A second test warm-starts
//! the interned learner from a journal file encoded byte-by-byte against
//! the *documented* pre-interning on-disk format (string symbols, LEB128
//! varints, FNV-checksummed frames) — written here by hand, not by
//! today's `JournalStore` writer — proving the disk format survived the
//! interning rewrite unchanged.

use prognosis_automata::mealy::MealyMachine;
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::pipeline::learn_model_parallel_with_events;
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig};
use prognosis_core::session::SimDuration;
use prognosis_core::sul::{Sul, SulStats};
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
use prognosis_events::{EventSink, MemorySink};
use prognosis_learner::cache::{alphabet_hash, StoreKey};
use prognosis_learner::journal::{JournalStore, JOURNAL_MAGIC};
use prognosis_learner::stats::LearningStats;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

fn tmp_path(name: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "prognosis-interning-equiv-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn grid_config() -> LearnConfig {
    LearnConfig {
        random_tests: 120,
        max_word_len: 6,
        eq_batch_size: 64,
        ..LearnConfig::default()
    }
}

/// Everything a learning run exposes to its caller and its logs.
struct RunFingerprint {
    model: MealyMachine,
    stats: LearningStats,
    sul: SulStats,
    log: String,
    /// Final observation trie as its canonical path dump; `None` on an
    /// impaired link (lossy answers never persist — `cache_key` is `None`
    /// by design, so there is no trie file to read back).
    trie_paths: Option<Vec<(InputWord, OutputWord, bool)>>,
}

/// Runs the TCP-over-wire scenario at the given engine shape and link
/// loss, capturing the full fingerprint.
fn run_at(lossy: bool, workers: usize, max_inflight: usize) -> RunFingerprint {
    let mut link = LinkConfig::with_latency(SimDuration::from_micros(100));
    if lossy {
        link = link.loss(0.1);
    }
    let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(7);
    let cache = (!lossy).then(|| tmp_path("grid"));
    let mut config = grid_config()
        .with_workers(workers)
        .with_max_inflight(max_inflight);
    if let Some(cache) = &cache {
        let _ = std::fs::remove_file(cache);
        config = config.with_cache_path(cache.to_string_lossy().into_owned());
    }
    let sink = Arc::new(MemorySink::new());
    let outcome = learn_model_parallel_with_events(
        &factory,
        &tcp_alphabet(),
        config,
        Arc::clone(&sink) as Arc<dyn EventSink>,
        false,
    )
    .expect("parallel learning succeeds");
    let trie_paths = cache.map(|cache| {
        let key = StoreKey::new(
            TcpSul::with_defaults()
                .cache_key()
                .expect("TCP SULs are cacheable"),
            "",
            &tcp_alphabet(),
        );
        let trie = JournalStore::load_matching(&cache, &key)
            .expect("the unimpaired run persisted its observations");
        let _ = std::fs::remove_file(&cache);
        trie.paths()
    });
    RunFingerprint {
        model: outcome.learned.model,
        stats: outcome.learned.stats,
        sul: outcome.sul_stats,
        log: sink.contents(),
        trie_paths,
    }
}

fn reference(lossy: bool) -> &'static RunFingerprint {
    static CLEAN: OnceLock<RunFingerprint> = OnceLock::new();
    static LOSSY: OnceLock<RunFingerprint> = OnceLock::new();
    let cell = if lossy { &LOSSY } else { &CLEAN };
    cell.get_or_init(|| {
        let fp = run_at(lossy, 1, 1);
        assert!(
            fp.log.contains("\"name\":\"wire:send\""),
            "the networked scenario must log per-packet wire events"
        );
        if lossy {
            assert!(
                fp.log.contains("\"name\":\"wire:drop\""),
                "a 10% lossy link must actually drop packets"
            );
        }
        fp
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The tentpole contract: interned ids, chunked pulls and banked
    // replies may move wall-clock scheduling, but every learner-visible
    // artefact is a pure function of the scenario — identical across
    // (workers 1–3, max_inflight 1–64, loss ∈ {0, 0.1}).
    #[test]
    fn interned_runs_are_bit_identical_across_the_engine_grid(
        workers in 1usize..=3,
        inflight_exp in 0u32..7,
        lossy in any::<bool>(),
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let run = run_at(lossy, workers, max_inflight);
        let reference = reference(lossy);
        prop_assert_eq!(
            &reference.model, &run.model,
            "(workers, max_inflight, lossy) = ({}, {}, {}) changed the model",
            workers, max_inflight, lossy
        );
        prop_assert_eq!(reference.stats, run.stats, "learner statistics diverged");
        prop_assert_eq!(reference.sul, run.sul, "SUL interaction counters diverged");
        prop_assert_eq!(
            &reference.log, &run.log,
            "the deterministic event log changed bytes"
        );
        prop_assert_eq!(
            &reference.trie_paths, &run.trie_paths,
            "the persisted observation trie changed shape"
        );
    }
}

// ---- pre-interning journal compatibility ------------------------------

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Low 32 bits of FNV-1a-64 — the journal's per-frame checksum.
fn frame_checksum(payload: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash as u32
}

fn push_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    push_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
}

/// Encodes a journal file exactly as the pre-interning writer laid it out:
/// magic, one string-keyed segment header, one string-symbol record per
/// path.  Deliberately independent of `JournalStore`'s own encoder — this
/// is the documented disk format, transcribed from the spec.
fn encode_pre_interning_journal(
    key: &StoreKey,
    paths: &[(InputWord, OutputWord, bool)],
) -> Vec<u8> {
    let mut file = Vec::new();
    file.extend_from_slice(JOURNAL_MAGIC);
    let mut segment = Vec::new();
    push_str(&mut segment, key.sul_id());
    push_str(&mut segment, key.impl_version());
    segment.extend_from_slice(&key.alphabet_hash().to_le_bytes());
    push_varint(&mut segment, key.alphabet().len() as u64);
    for symbol in key.alphabet() {
        push_str(&mut segment, symbol);
    }
    push_frame(&mut file, 0x01, &segment);
    for (input, output, terminal) in paths {
        let mut record = Vec::new();
        record.push(u8::from(*terminal));
        push_varint(&mut record, input.len() as u64);
        for (step_in, step_out) in input.iter().zip(output.iter()) {
            push_str(&mut record, step_in.as_str());
            push_str(&mut record, step_out.as_str());
        }
        push_frame(&mut file, 0x02, &record);
    }
    file
}

/// A journal file in the pre-interning on-disk format (hand-encoded string
/// records) warm-starts the interned learner to a zero-fresh-symbol,
/// bit-identical repeat run — the disk format did not change.
#[test]
fn warm_start_from_a_pre_interning_journal_file() {
    let alphabet = tcp_alphabet();
    let key = StoreKey::new(
        TcpSul::with_defaults()
            .cache_key()
            .expect("TCP SULs are cacheable"),
        "",
        &alphabet,
    );
    assert_eq!(key.alphabet_hash(), alphabet_hash(&alphabet));

    // A cold run persists the observation set the repeat run will need.
    let cold_cache = tmp_path("cold");
    let _ = std::fs::remove_file(&cold_cache);
    let config = LearnConfig {
        random_tests: 300,
        max_word_len: 8,
        ..LearnConfig::default()
    }
    .with_cache_path(cold_cache.to_string_lossy().into_owned());
    let cold = learn_model(&mut TcpSul::with_defaults(), &alphabet, config.clone());
    assert!(cold.stats.fresh_symbols > 0, "cold run pays fresh symbols");
    let paths = JournalStore::load_matching(&cold_cache, &key)
        .expect("cold run persisted its trie")
        .paths();
    let _ = std::fs::remove_file(&cold_cache);

    // Re-encode those observations with the local pre-interning encoder
    // and point a warm run at the hand-made file.
    let warm_cache = tmp_path("preintern");
    std::fs::write(&warm_cache, encode_pre_interning_journal(&key, &paths))
        .expect("write hand-encoded journal");
    let report = JournalStore::verify(&warm_cache).expect("verify hand-encoded journal");
    assert!(
        report.is_clean(),
        "the hand-encoded pre-interning file must parse as a clean journal"
    );

    let warm_config = config.with_cache_path(warm_cache.to_string_lossy().into_owned());
    for workers in [1usize, 3] {
        let outcome = learn_model_parallel(
            &TcpSulFactory::default(),
            &alphabet,
            warm_config.clone().with_workers(workers),
        )
        .expect("warm parallel learning succeeds");
        assert_eq!(
            cold.model, outcome.learned.model,
            "warm model with {workers} workers must match the cold model"
        );
        assert_eq!(
            outcome.learned.stats.fresh_symbols, 0,
            "a pre-interning journal must answer every query from disk"
        );
        assert_eq!(outcome.sul_stats.symbols_sent, 0);
        assert_eq!(
            cold.stats.membership_queries, outcome.learned.stats.membership_queries,
            "the learner must see the identical query stream warm and cold"
        );
    }
    let _ = std::fs::remove_file(&warm_cache);
}
