//! Dataflow-vs-serial learner equivalence over the engine grid: for any
//! `(workers, max_inflight, impairment)` the continuation-driven dataflow
//! learner — async sift probes, interleaved phases, speculative equivalence
//! streaming — must build a **bit-identical** discrimination tree and model
//! to serial sifting, with `membership_queries` no greater than serial and
//! exact speculation-word accounting, including warm starts against a PR-2
//! `CacheStore` file.

use prognosis_automata::alphabet::Alphabet;
use prognosis_automata::mealy::MealyMachine;
use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::parallel::ParallelSulOracle;
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig, LearnedModel};
use prognosis_core::session::{SessionSulFactory, SimDuration};
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSulFactory};
use prognosis_learner::dtree::{SiftStrategy, SpeculationStats};
use prognosis_learner::stats::LearningStats;
use prognosis_learner::{CacheOracle, DTreeLearner, Learner, RandomWordOracle};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One learner-level run on a fresh parallel engine: returns the model,
/// the learner stats, the discrimination tree's canonical signature, the
/// fresh-symbol cost, and the speculation counters.
fn learn_direct<F>(
    factory: &F,
    alphabet: &Alphabet,
    strategy: SiftStrategy,
    workers: usize,
    max_inflight: usize,
    random_tests: usize,
) -> (
    MealyMachine,
    LearningStats,
    Vec<String>,
    u64,
    SpeculationStats,
)
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let oracle = ParallelSulOracle::spawn_with(factory, workers, max_inflight);
    let mut membership = CacheOracle::new(oracle);
    let mut learner = DTreeLearner::with_strategy(alphabet.clone(), strategy);
    let mut equivalence = RandomWordOracle::new(7, random_tests, 2, 6).with_batch_size(128);
    let result = learner.learn(&mut membership, &mut equivalence);
    let fresh = membership.fresh_symbols();
    (
        result.model,
        result.stats,
        learner.tree_signature(),
        fresh,
        learner.speculation(),
    )
}

fn compare_strategies<F>(
    factory: &F,
    alphabet: &Alphabet,
    workers: usize,
    max_inflight: usize,
    random_tests: usize,
    label: &str,
) where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let (serial_model, serial_stats, serial_tree, serial_fresh, _) = learn_direct(
        factory,
        alphabet,
        SiftStrategy::Serial,
        workers,
        max_inflight,
        random_tests,
    );
    let (flow_model, flow_stats, flow_tree, flow_fresh, spec) = learn_direct(
        factory,
        alphabet,
        SiftStrategy::Dataflow,
        workers,
        max_inflight,
        random_tests,
    );
    prop_assert_eq!(
        &flow_model,
        &serial_model,
        "{}: models diverged (not merely inequivalent — state numbering counts)",
        label
    );
    prop_assert_eq!(
        &flow_tree,
        &serial_tree,
        "{}: discrimination trees diverged",
        label
    );
    prop_assert!(
        flow_stats.membership_queries <= serial_stats.membership_queries,
        "{}: dataflow asked more queries ({} > {})",
        label,
        flow_stats.membership_queries,
        serial_stats.membership_queries
    );
    prop_assert!(
        flow_fresh <= serial_fresh,
        "{}: dataflow executed more fresh symbols ({} > {})",
        label,
        flow_fresh,
        serial_fresh
    );
    prop_assert_eq!(flow_stats.counterexamples, serial_stats.counterexamples);
    prop_assert_eq!(flow_stats.learning_rounds, serial_stats.learning_rounds);
    // Chunk-commit identity: the dataflow path must count exactly the
    // equivalence tests the serial chunk-at-a-time runner would execute.
    prop_assert_eq!(flow_stats.equivalence_tests, serial_stats.equivalence_tests);
    prop_assert_eq!(
        spec.words_used + spec.words_discarded + spec.words_unsent,
        spec.words_submitted,
        "{}: every speculative word must be committed, discarded, or unsent",
        label
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The dataflow learner is the same algorithm as serial sifting at every
    // point of the (workers, max_inflight, impairment) grid — including
    // over a 10%-loss impaired network, where answers depend on the
    // (rewound, pure) noise streams.
    #[test]
    fn dataflow_matches_serial_over_the_engine_grid(
        workers in 1usize..4,
        inflight_exp in 0u32..7,
        lossy in any::<bool>(),
    ) {
        let max_inflight = 1usize << inflight_exp; // 1..=64
        let label = format!(
            "(workers, max_inflight, lossy) = ({workers}, {max_inflight}, {lossy})"
        );
        if lossy {
            let alphabet =
                Alphabet::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)"]);
            let factory = NetworkedSessionFactory::new(
                TcpSulFactory::default(),
                LinkConfig::with_latency(SimDuration::from_micros(100)).loss(0.1),
            )
            .with_noise_seed(23);
            compare_strategies(&factory, &alphabet, workers, max_inflight, 150, &label);
        } else {
            compare_strategies(
                &TcpSulFactory::default(),
                &tcp_alphabet(),
                workers,
                max_inflight,
                250,
                &label,
            );
        }
    }
}

// A counterexample landing while speculative equivalence words are still in
// flight must roll the speculation back — cancelled sessions discarded, the
// counterexample's chunk committed — without perturbing the learned model
// or the serial equivalence-test count.
#[test]
fn speculation_rollback_discards_inflight_words_without_divergence() {
    let (serial_model, serial_stats, _, _, _) = learn_direct(
        &TcpSulFactory::default(),
        &tcp_alphabet(),
        SiftStrategy::Serial,
        2,
        8,
        400,
    );
    let (flow_model, flow_stats, _, _, spec) = learn_direct(
        &TcpSulFactory::default(),
        &tcp_alphabet(),
        SiftStrategy::Dataflow,
        2,
        8,
        400,
    );
    assert_eq!(flow_model, serial_model);
    assert_eq!(flow_stats.equivalence_tests, serial_stats.equivalence_tests);
    assert!(
        serial_stats.counterexamples >= 1,
        "TCP learning must need at least one refinement round for this test"
    );
    assert!(
        spec.suites >= 2,
        "each learning round streams its own speculative suite"
    );
    assert!(
        spec.rollbacks >= 1,
        "a counterexample must cut the speculative suite short"
    );
    assert!(
        spec.words_discarded + spec.words_unsent > 0,
        "rolled-back suites must leave uncommitted words behind"
    );
    assert_eq!(
        spec.words_used + spec.words_discarded + spec.words_unsent,
        spec.words_submitted
    );
}

mod warm_start_grid {
    use super::*;

    fn cache_path() -> String {
        std::env::temp_dir()
            .join(format!(
                "prognosis-dataflow-learner-warm-{}.json",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    }

    fn engine_config() -> LearnConfig {
        LearnConfig {
            random_tests: 250,
            max_word_len: 7,
            eq_batch_size: 128,
            ..LearnConfig::default()
        }
    }

    /// Seeds the PR-2 cache file once (serial, sequential pipeline) and
    /// returns the cold model every warm grid point must reproduce.
    fn cold_seeded() -> &'static LearnedModel {
        static COLD: OnceLock<LearnedModel> = OnceLock::new();
        COLD.get_or_init(|| {
            let path = cache_path();
            let _ = std::fs::remove_file(&path);
            let mut sul = prognosis_core::tcp_adapter::TcpSul::with_defaults();
            learn_model(
                &mut sul,
                &tcp_alphabet(),
                engine_config()
                    .with_cache_path(path)
                    .with_sift(SiftStrategy::Serial),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // Warm starts against a persisted cache are engine-shape-independent
        // for the dataflow learner too: zero fresh SUL symbols and a
        // bit-identical model at any grid point, with the speculative suite
        // answered entirely from the staged trie.
        #[test]
        fn warm_start_covers_speculation_from_cache(
            workers in 1usize..4,
            inflight_exp in 0u32..7,
        ) {
            let max_inflight = 1usize << inflight_exp;
            let cold = cold_seeded();
            let outcome = learn_model_parallel(
                &TcpSulFactory::default(),
                &tcp_alphabet(),
                engine_config()
                    .with_cache_path(cache_path())
                    .with_workers(workers)
                    .with_max_inflight(max_inflight)
                    .with_sift(SiftStrategy::Dataflow),
            )
            .expect("parallel learning succeeds");
            prop_assert_eq!(
                &outcome.learned.model,
                &cold.model,
                "warm dataflow model at (workers, max_inflight) = ({}, {}) \
                 must be bit-identical to the cold model",
                workers, max_inflight
            );
            prop_assert_eq!(
                outcome.learned.stats.fresh_symbols, 0,
                "a covering cache must answer everything from disk"
            );
            // Unlike the blocking strategies, warm dataflow runs may still
            // touch the SUL: speculative suite words beyond a rollback's
            // committed chunk were never executed cold, so they miss the
            // cache, run, and are then discarded (never entering the trie).
            // That waste is bounded by the discarded-word count.
            let spec = outcome.learned.speculation;
            prop_assert!(
                outcome.sul_stats.symbols_sent
                    <= spec.words_discarded * engine_config().max_word_len as u64,
                "fresh SUL work ({} symbols) must be discarded speculation only \
                 ({} words discarded)",
                outcome.sul_stats.symbols_sent,
                spec.words_discarded
            );
            prop_assert_eq!(
                outcome.learned.stats.equivalence_tests,
                cold.stats.equivalence_tests,
                "chunk-commit identity must hold against a warm cache"
            );
        }
    }
}
