//! A SUL wrapper that models network round-trip latency on virtual time.
//!
//! Prognosis-style closed-box learning talks to the implementation over a
//! real network: every abstract symbol costs at least one packet round
//! trip, and §4.1's wall-clock numbers are dominated by that latency, not
//! by CPU.  The in-process simulated SULs in this workspace answer in
//! microseconds, which hides exactly the cost the session engine exists to
//! amortize.  [`LatencySul`] restores the deployment-shaped cost model —
//! but on the `netsim` **virtual clock** instead of `thread::sleep`: each
//! step and reset advances a [`SharedClock`] by the configured round-trip
//! time, so benchmarks compare sequential and multiplexed learning in
//! deterministic virtual seconds while running at CPU speed.  Through
//! [`TimedSul`], a latency-wrapped SUL becomes a deadline-based session
//! ([`TimedSession`]): one scheduler thread keeps many such round trips in
//! flight concurrently, which is precisely how event-driven trace
//! collection scales in practice.

use crate::oracle_table::{HasOracleTable, OracleTable};
use crate::session::{
    SessionSulFactory, SharedClock, SimDuration, SimTime, TimedSession, TimedSul,
};
use crate::sul::{Sul, SulFactory, SulStats};
use prognosis_automata::alphabet::Symbol;

/// Wraps a SUL, charging fixed virtual-time latency to every step and
/// reset.
pub struct LatencySul<S> {
    inner: S,
    step_latency: SimDuration,
    reset_latency: SimDuration,
    clock: SharedClock,
    started_at: SimTime,
}

impl<S: Sul> LatencySul<S> {
    /// Wraps `inner`, charging `step_latency` of virtual time per symbol
    /// and `reset_latency` per reset on a fresh private clock.
    pub fn new(inner: S, step_latency: SimDuration, reset_latency: SimDuration) -> Self {
        LatencySul::with_clock(inner, step_latency, reset_latency, SharedClock::new())
    }

    /// Wraps `inner` on an existing shared clock (e.g. one a scheduler or
    /// netsim [`prognosis_netsim::Network`] also advances).
    pub fn with_clock(
        inner: S,
        step_latency: SimDuration,
        reset_latency: SimDuration,
        clock: SharedClock,
    ) -> Self {
        let started_at = clock.now();
        LatencySul {
            inner,
            step_latency,
            reset_latency,
            clock,
            started_at,
        }
    }

    /// The wrapped SUL.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner SUL.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The clock this wrapper charges its latency to.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Virtual time spent "on the wire" since this wrapper was created —
    /// the denominator of virtual-time throughput in the benchmarks.
    pub fn virtual_elapsed(&self) -> SimDuration {
        self.clock.now().since(self.started_at)
    }
}

impl<S: Sul> Sul for LatencySul<S> {
    fn step(&mut self, input: &Symbol) -> Symbol {
        // The blocking path models a worker thread that cannot do anything
        // else while the packet is in flight: the whole round trip lands on
        // the clock serially.
        self.clock.advance_by(self.step_latency);
        self.inner.step(input)
    }

    fn reset(&mut self) {
        self.clock.advance_by(self.reset_latency);
        self.inner.reset()
    }

    fn stats(&self) -> SulStats {
        self.inner.stats()
    }

    fn cache_key(&self) -> Option<String> {
        // Latency changes virtual time only, never answers, so the wrapped
        // SUL shares its cache identity with the bare one.
        self.inner.cache_key()
    }
}

impl<S: Sul> TimedSul for LatencySul<S> {
    fn step_at(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime) {
        // Deadline-based path: the answer is computed eagerly (answers are
        // pure) but is only visible one round trip later.  The clock is
        // pulled forward to the deadline at most — concurrent sessions on
        // the same clock overlap their waits instead of summing them.
        let output = self.inner.step(input);
        let ready_at = now + self.step_latency;
        self.clock.advance_to(ready_at);
        (output, ready_at)
    }

    fn reset_at(&mut self, now: SimTime) -> SimTime {
        self.inner.reset();
        let ready_at = now + self.reset_latency;
        self.clock.advance_to(ready_at);
        ready_at
    }
}

impl<S: HasOracleTable> HasOracleTable for LatencySul<S> {
    fn oracle_table(&self) -> &OracleTable {
        self.inner.oracle_table()
    }
}

/// Mints latency-wrapped SUL instances from an inner factory.
#[derive(Clone, Debug)]
pub struct LatencySulFactory<F> {
    inner: F,
    step_latency: SimDuration,
    reset_latency: SimDuration,
}

impl<F: SulFactory> LatencySulFactory<F> {
    /// Wraps every SUL minted by `inner` with the given virtual latencies.
    pub fn new(inner: F, step_latency: SimDuration, reset_latency: SimDuration) -> Self {
        LatencySulFactory {
            inner,
            step_latency,
            reset_latency,
        }
    }

    /// Creates a fresh latency-wrapped SUL (the blocking path; the session
    /// engine mints deadline-based sessions via [`SessionSulFactory`]).
    pub fn create(&self) -> LatencySul<F::Sul> {
        LatencySul::new(self.inner.create(), self.step_latency, self.reset_latency)
    }
}

impl<F: SulFactory> SessionSulFactory for LatencySulFactory<F> {
    type Session = TimedSession<LatencySul<F::Sul>>;

    fn create_session(&self) -> Self::Session {
        TimedSession::new(self.create())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionPoll, SessionSul};
    use crate::sul::replay_query;
    use crate::tcp_adapter::{TcpSul, TcpSulFactory};
    use prognosis_automata::word::InputWord;

    #[test]
    fn latency_wrapper_is_behaviourally_transparent() {
        let factory = LatencySulFactory::new(
            TcpSulFactory::default(),
            SimDuration::from_micros(50),
            SimDuration::from_micros(50),
        );
        let mut wrapped = factory.create();
        let mut plain = TcpSul::with_defaults();
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"]);
        assert_eq!(
            replay_query(&mut wrapped, &word),
            replay_query(&mut plain, &word)
        );
        assert_eq!(wrapped.stats().symbols_sent, 3);
        assert_eq!(wrapped.inner().stats().symbols_sent, 3);
        assert_eq!(wrapped.into_inner().stats().resets, 1);
    }

    #[test]
    fn latency_is_paid_in_virtual_time_not_wall_clock() {
        let mut sul = LatencySul::new(
            TcpSul::with_defaults(),
            SimDuration::from_millis(2),
            SimDuration::from_millis(2),
        );
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let start = std::time::Instant::now();
        replay_query(&mut sul, &word);
        assert_eq!(
            sul.virtual_elapsed().as_micros(),
            6_000,
            "reset + 2 steps = 6ms of virtual time"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_millis(2),
            "no real sleeping anywhere in-process"
        );
    }

    #[test]
    fn timed_sessions_use_deadlines_on_the_shared_clock() {
        let factory = LatencySulFactory::new(
            TcpSulFactory::default(),
            SimDuration::from_micros(50),
            SimDuration::from_micros(100),
        );
        let mut session = factory.create_session();
        let ready = session.start_reset(SimTime::ZERO);
        assert_eq!(ready.as_micros(), 100);
        session.start_step(&Symbol::new("SYN(?,?,0)"), ready);
        match session.poll_step(ready) {
            SessionPoll::Pending { wake_at } => assert_eq!(wake_at.as_micros(), 150),
            SessionPoll::Ready(_) => panic!("a 50µs round trip is not ready immediately"),
        }
        match session.poll_step(SimTime::from_micros(150)) {
            SessionPoll::Ready(out) => assert_eq!(out.as_str(), "ACK+SYN(?,?,0)"),
            SessionPoll::Pending { .. } => panic!("deadline reached"),
        }
        // Tearing down hands back the latency wrapper (oracle-table access
        // flows through it).
        let sul = session.into_sul();
        assert_eq!(sul.stats().symbols_sent, 1);
    }
}
