//! A SUL wrapper that models network round-trip latency.
//!
//! Prognosis-style closed-box learning talks to the implementation over a
//! real network: every abstract symbol costs at least one packet round
//! trip, and §4.1's wall-clock numbers are dominated by that latency, not
//! by CPU.  The in-process simulated SULs in this workspace answer in
//! microseconds, which hides exactly the cost the batched-parallel engine
//! exists to amortize.  [`LatencySul`] restores the deployment-shaped cost
//! model by sleeping a configurable duration per step and per reset, so
//! benchmarks compare sequential and parallel learning under realistic
//! conditions: independent SUL instances wait on "the wire" concurrently,
//! which is precisely how parallel trace collection scales in practice.

use crate::oracle_table::{HasOracleTable, OracleTable};
use crate::sul::{Sul, SulFactory, SulStats};
use prognosis_automata::alphabet::Symbol;
use std::time::Duration;

/// Wraps a SUL, adding fixed latency to every step and reset.
pub struct LatencySul<S> {
    inner: S,
    step_latency: Duration,
    reset_latency: Duration,
}

impl<S: Sul> LatencySul<S> {
    /// Wraps `inner`, sleeping `step_latency` per symbol and
    /// `reset_latency` per reset.
    pub fn new(inner: S, step_latency: Duration, reset_latency: Duration) -> Self {
        LatencySul {
            inner,
            step_latency,
            reset_latency,
        }
    }

    /// The wrapped SUL.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner SUL.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Sul> Sul for LatencySul<S> {
    fn step(&mut self, input: &Symbol) -> Symbol {
        if !self.step_latency.is_zero() {
            std::thread::sleep(self.step_latency);
        }
        self.inner.step(input)
    }

    fn reset(&mut self) {
        if !self.reset_latency.is_zero() {
            std::thread::sleep(self.reset_latency);
        }
        self.inner.reset()
    }

    fn stats(&self) -> SulStats {
        self.inner.stats()
    }

    fn cache_key(&self) -> Option<String> {
        // Latency changes wall-clock only, never answers, so the wrapped
        // SUL shares its cache identity with the bare one.
        self.inner.cache_key()
    }
}

impl<S: HasOracleTable> HasOracleTable for LatencySul<S> {
    fn oracle_table(&self) -> &OracleTable {
        self.inner.oracle_table()
    }
}

/// Mints latency-wrapped SUL instances from an inner factory.
#[derive(Clone, Debug)]
pub struct LatencySulFactory<F> {
    inner: F,
    step_latency: Duration,
    reset_latency: Duration,
}

impl<F: SulFactory> LatencySulFactory<F> {
    /// Wraps every SUL minted by `inner` with the given latencies.
    pub fn new(inner: F, step_latency: Duration, reset_latency: Duration) -> Self {
        LatencySulFactory {
            inner,
            step_latency,
            reset_latency,
        }
    }
}

impl<F: SulFactory> SulFactory for LatencySulFactory<F> {
    type Sul = LatencySul<F::Sul>;

    fn create(&self) -> Self::Sul {
        LatencySul::new(self.inner.create(), self.step_latency, self.reset_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sul::replay_query;
    use crate::tcp_adapter::{TcpSul, TcpSulFactory};
    use prognosis_automata::word::InputWord;

    #[test]
    fn latency_wrapper_is_behaviourally_transparent() {
        let factory = LatencySulFactory::new(
            TcpSulFactory::default(),
            Duration::from_micros(50),
            Duration::from_micros(50),
        );
        let mut wrapped = factory.create();
        let mut plain = TcpSul::with_defaults();
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"]);
        assert_eq!(
            replay_query(&mut wrapped, &word),
            replay_query(&mut plain, &word)
        );
        assert_eq!(wrapped.stats().symbols_sent, 3);
        assert_eq!(wrapped.inner().stats().symbols_sent, 3);
        assert_eq!(wrapped.into_inner().stats().resets, 1);
    }

    #[test]
    fn latency_is_actually_paid() {
        let mut sul = LatencySul::new(
            TcpSul::with_defaults(),
            Duration::from_millis(2),
            Duration::from_millis(2),
        );
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let start = std::time::Instant::now();
        replay_query(&mut sul, &word);
        assert!(
            start.elapsed() >= Duration::from_millis(6),
            "reset + 2 steps ≥ 6ms"
        );
    }
}
