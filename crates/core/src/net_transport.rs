//! The impaired-network session transport: concrete packets of multiplexed
//! query sessions routed through a shared `netsim` [`Network`] per worker.
//!
//! The PR-3 session engine multiplexes in-flight queries on bare deadline
//! state machines, so link impairments — loss, jitter, reordering,
//! duplication ([`LinkConfig`]) — never touched an in-flight learning
//! query.  This module closes that gap: a [`NetworkedSession`] puts every
//! concrete TCP segment / QUIC datagram of its query on a real simulated
//! wire.  All sessions of one scheduler worker share **one** [`Network`]
//! (its virtual time attached to the worker's `SharedClock` via
//! [`Network::attach_clock`]), each session owning a pair of ephemeral
//! ports: requests leave the client endpoint, the implementation under
//! learning answers from the server endpoint, and both directions cross
//! the impaired link.  A step whose packet is lost resolves to the
//! adapter's timeout symbol at the step deadline instead of hanging.
//!
//! Determinism is engineered, not accidental: every endpoint draws its
//! packet fates from a private noise stream ([`Network::set_noise_seed`])
//! that is **rewound at query boundaries**, and [`LinkConfig::fate`] makes
//! each impairment a pure function of `(stream seed, packet index)`.  With
//! every session of a learning run sharing one stream seed, a membership
//! query's answer is a pure function of the query itself — the same
//! weather hits packet *k* of a query no matter which session, worker or
//! virtual instant executes it — so the learned model and all query-cost
//! statistics are bit-identical across `(workers, max_inflight)` grids
//! even on a lossy, jittery link.  The nondeterminism checker's
//! multiplexed path instead gives each repetition its own stream
//! ([`NetworkedSessionFactory::repetition_sessions`]), which is what makes
//! answer *frequencies* under noise observable (§5, the mvfst 82% finding).

use crate::session::{
    SessionPoll, SessionSul, SessionSulFactory, SharedClock, SimDuration, SimTime,
};
use crate::sul::{Sul, SulFactory, SulStats};
use bytes::Bytes;
use prognosis_automata::alphabet::Symbol;
use std::sync::{Arc, Mutex};

pub use prognosis_netsim::{LinkConfig, Network};

/// Decorrelates a session's server-direction noise stream from its
/// client-direction one.
const SERVER_NOISE_SALT: u64 = 0x5EED_0000_A110_CA7E;

/// What one abstract input symbol turns into at the wire boundary.
pub enum WireRequest {
    /// A concrete request datagram to put on the wire.
    Datagram(Bytes),
    /// The symbol produced no packet (e.g. it could not be concretized);
    /// the step completes immediately with this output.
    Immediate(Symbol),
}

/// A SUL whose query exchange decomposes into concrete datagrams a network
/// can carry: the client side concretizes abstract symbols into wire bytes
/// and abstracts responses back, the server side is driven one datagram at
/// a time.  [`crate::TcpSul`] and [`crate::QuicSul`] implement it; the
/// in-process [`Sul::step`] path and this wire path answer identically on
/// an ideal link by construction (same client, same server, same records).
pub trait WireSul: Sul {
    /// Begins one abstract step: concretize `input` into the request
    /// datagram (recording the concrete input fields for the Oracle
    /// Table), or complete immediately when no packet is exchanged.
    fn wire_request(&mut self, input: &Symbol) -> WireRequest;

    /// The source port the request should claim on the wire, given the
    /// session's bound client port.  The default is the bound port; the
    /// QUIC adapter maps the Issue-3 defect (post-Retry rebinding) to a
    /// fresh spoofed port here.
    fn wire_source_port(&self, bound: u16) -> u16 {
        bound
    }

    /// Server side: handles one request datagram arriving from
    /// `source_port` as of virtual time `now`, returning the response
    /// datagrams plus the instant they are ready to leave the server.
    fn handle_wire(
        &mut self,
        datagram: &Bytes,
        source_port: u16,
        now: SimTime,
    ) -> (Vec<Bytes>, SimTime);

    /// Client side: absorbs one response datagram delivered by the
    /// network (connection bookkeeping plus Oracle-Table material).
    fn absorb_wire(&mut self, datagram: &Bytes);

    /// Completes the step: abstracts everything absorbed since
    /// [`WireSul::wire_request`] into the output symbol (the adapter's
    /// timeout/silence symbol when nothing arrived) and records it.
    fn finish_step(&mut self) -> Symbol;
}

enum StepState {
    Idle,
    /// No packet was exchanged; the output is available immediately.
    Immediate(Symbol),
    /// The request is on the wire (or being serviced).
    Awaiting {
        /// The step's hard deadline: with nothing received by then, the
        /// step resolves to the adapter's timeout symbol.
        deadline: SimTime,
        /// Response flights handled by the server but not yet ready to
        /// leave it: `(ready_at, reply-to port, wire bytes)`.
        outbox: Vec<(SimTime, u16, Bytes)>,
    },
}

/// One query session whose concrete packets cross a shared simulated
/// network.  Implements [`SessionSul`], so a
/// [`crate::session::SessionScheduler`] can multiplex many of these per
/// worker: the scheduler wakes on the earliest of session deadlines and
/// network delivery times, and deliveries are drained between polls.
pub struct NetworkedSession<S: WireSul> {
    sul: S,
    net: Arc<Mutex<Network>>,
    client: prognosis_netsim::EndpointId,
    client_port: u16,
    server: prognosis_netsim::EndpointId,
    server_port: u16,
    timeout: SimDuration,
    impaired: bool,
    state: StepState,
    /// Event scope announced for the next query (see
    /// [`SessionSul::begin_event_scope`]); consumed by `start_reset`,
    /// which registers it as the wire scope of this session's endpoint
    /// pair.
    pending_scope: Option<u64>,
}

impl<S: WireSul> NetworkedSession<S> {
    /// The session's client-side ephemeral port on the shared network.
    pub fn client_port(&self) -> u16 {
        self.client_port
    }

    /// The session's server-side ephemeral port on the shared network.
    pub fn server_port(&self) -> u16 {
        self.server_port
    }

    /// The shared network this session's packets cross.
    pub fn network(&self) -> &Arc<Mutex<Network>> {
        &self.net
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Network> {
        self.net.lock().expect("session network poisoned")
    }
}

impl<S: WireSul> SessionSul for NetworkedSession<S> {
    type Sul = S;

    fn start_reset(&mut self, now: SimTime) -> SimTime {
        self.sul.reset();
        self.state = StepState::Idle;
        let pending_scope = self.pending_scope.take();
        let mut net = self.lock();
        net.advance_to(now);
        // One query's stragglers — late jittered deliveries, duplicates in
        // flight — must never leak into the next query, and the next query
        // must meet the same network weather as every run of it.
        net.drop_in_flight_to(self.client_port);
        net.drop_in_flight_to(self.server_port);
        net.endpoint_mut(self.client)
            .expect("client endpoint bound")
            .clear();
        net.endpoint_mut(self.server)
            .expect("server endpoint bound")
            .clear();
        net.rewind_noise(self.client)
            .expect("client endpoint bound");
        net.rewind_noise(self.server)
            .expect("server endpoint bound");
        if let Some(scope) = pending_scope {
            // The network clock just advanced to `now`, so wire events of
            // this query get timestamps relative to its reset instant.
            net.set_wire_scope(self.client, self.server, scope);
        }
        now
    }

    fn start_step(&mut self, input: &Symbol, now: SimTime) {
        debug_assert!(matches!(self.state, StepState::Idle), "step started twice");
        match self.sul.wire_request(input) {
            WireRequest::Immediate(symbol) => self.state = StepState::Immediate(symbol),
            WireRequest::Datagram(wire) => {
                let source = self.sul.wire_source_port(self.client_port);
                let mut net = self.lock();
                net.advance_to(now);
                net.send_from_port(self.client, source, self.server_port, wire)
                    .expect("session server port is bound");
                drop(net);
                self.state = StepState::Awaiting {
                    deadline: now + self.timeout,
                    outbox: Vec::new(),
                };
            }
        }
    }

    fn poll_step(&mut self, now: SimTime) -> SessionPoll {
        match std::mem::replace(&mut self.state, StepState::Idle) {
            StepState::Idle => panic!("poll_step without start_step"),
            StepState::Immediate(symbol) => SessionPoll::Ready(symbol),
            StepState::Awaiting {
                deadline,
                mut outbox,
            } => {
                let mut net = self.net.lock().expect("session network poisoned");
                // Pump the wire until this instant is quiescent: release
                // response flights whose service deadline has passed, feed
                // delivered requests to the server, absorb delivered
                // responses at the client.  Every send can enable another
                // delivery at the same instant (zero-latency links), hence
                // the loop.
                loop {
                    // The session drives the network straight from the
                    // scheduler-provided instant, so it works under any
                    // clock — attached or not.
                    net.advance_to(now);
                    let mut progressed = false;
                    let (due, later): (Vec<_>, Vec<_>) = outbox
                        .drain(..)
                        .partition(|(ready_at, _, _)| *ready_at <= now);
                    outbox = later;
                    for (_, reply_port, wire) in due {
                        // Replying to a spoofed source port (the Issue-3
                        // defect) has no route; the capture records it lost.
                        let _ = net.send_from_port(self.server, self.server_port, reply_port, wire);
                        progressed = true;
                    }
                    let requests = net
                        .endpoint_mut(self.server)
                        .expect("server endpoint bound")
                        .receive_all();
                    for datagram in requests {
                        let (responses, ready_at) =
                            self.sul
                                .handle_wire(&datagram.payload, datagram.source_port, now);
                        progressed = true;
                        for response in responses {
                            outbox.push((ready_at, datagram.source_port, response));
                        }
                    }
                    let responses = net
                        .endpoint_mut(self.client)
                        .expect("client endpoint bound")
                        .receive_all();
                    for datagram in responses {
                        self.sul.absorb_wire(&datagram.payload);
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
                // The step is over at its deadline, or as soon as nothing
                // addressed to this session is on the wire any more (a lost
                // request quiesces immediately — the timeout symbol needs
                // no virtual waiting, its fate is already decided).
                let quiescent = outbox.is_empty()
                    && net.in_flight_to(self.client_port) == 0
                    && net.in_flight_to(self.server_port) == 0;
                if now >= deadline || quiescent {
                    if !quiescent {
                        // The step gave up with packets still on the wire
                        // (timeout below the worst-case round trip): discard
                        // everything addressed to this session so a late
                        // response can never be attributed to a later step.
                        net.drop_in_flight_to(self.client_port);
                        net.drop_in_flight_to(self.server_port);
                    }
                    drop(net);
                    return SessionPoll::Ready(self.sul.finish_step());
                }
                let mut wake_at = deadline;
                for (ready_at, _, _) in &outbox {
                    wake_at = wake_at.min(*ready_at);
                }
                if let Some(at) = net.next_delivery_to(self.client_port) {
                    wake_at = wake_at.min(at);
                }
                if let Some(at) = net.next_delivery_to(self.server_port) {
                    wake_at = wake_at.min(at);
                }
                drop(net);
                self.state = StepState::Awaiting { deadline, outbox };
                SessionPoll::Pending { wake_at }
            }
        }
    }

    fn stats(&self) -> SulStats {
        self.sul.stats()
    }

    fn cache_key(&self) -> Option<String> {
        // On an impaired link answers depend on the noise stream, not only
        // on the SUL configuration — such sessions must never share a
        // persistent cache with clean runs.  An unimpaired wire (latency
        // included) answers exactly as the in-process SUL does.
        if self.impaired {
            None
        } else {
            self.sul.cache_key()
        }
    }

    fn attach_event_sink(&mut self, sink: std::sync::Arc<prognosis_events::ScopedSink>) {
        // All sessions of a worker group share one network; attaching is
        // idempotent, the last sink wins.
        self.lock().attach_event_sink(sink);
    }

    fn begin_event_scope(&mut self, scope: u64) {
        self.pending_scope = Some(scope);
    }

    fn into_sul(self) -> S {
        self.sul
    }
}

/// Mints [`NetworkedSession`]s.  One scheduler worker's whole session group
/// shares a single [`Network`] whose virtual time is attached to the
/// worker's clock ([`SessionSulFactory::create_worker_sessions`]); every
/// session gets its own pair of ephemeral ports and its own rewindable
/// noise streams.
#[derive(Clone, Debug)]
pub struct NetworkedSessionFactory<F> {
    inner: F,
    link: LinkConfig,
    /// Direction-specific server→client link; `None` means symmetric
    /// (the forward config applies both ways).
    reverse: Option<LinkConfig>,
    timeout: SimDuration,
    /// Whether `timeout` was set explicitly via
    /// [`NetworkedSessionFactory::with_timeout`] (an explicit override is
    /// never replaced by the derived default, in any builder order).
    timeout_overridden: bool,
    noise_seed: u64,
}

fn worst_one_way(link: &LinkConfig) -> SimDuration {
    link.latency + link.jitter + link.reorder_delay
}

impl<F> NetworkedSessionFactory<F>
where
    F: SulFactory,
    F::Sul: WireSul,
{
    /// A factory routing `inner`'s sessions over `link` in both directions,
    /// with a step timeout generous enough for one maximally-delayed round
    /// trip.
    pub fn new(inner: F, link: LinkConfig) -> Self {
        let one_way = worst_one_way(&link);
        NetworkedSessionFactory {
            inner,
            link,
            reverse: None,
            timeout: one_way + one_way + SimDuration::from_millis(1),
            timeout_overridden: false,
            noise_seed: 0,
        }
    }

    /// Makes the link asymmetric: requests (client→server) keep crossing
    /// the forward config, responses (server→client) cross `reverse` —
    /// via per-direction `Network::set_link` entries on each session's
    /// endpoint pair.  Real access networks are asymmetric (uplink loss ≠
    /// downlink loss); this is what lets E18 sweep the two directions
    /// independently.  The derived step timeout is re-computed to cover
    /// one maximally-delayed round trip across both directions; a timeout
    /// set explicitly via [`NetworkedSessionFactory::with_timeout`] is
    /// kept, whatever the builder-call order.
    pub fn with_reverse_link(mut self, reverse: LinkConfig) -> Self {
        if !self.timeout_overridden {
            self.timeout =
                worst_one_way(&self.link) + worst_one_way(&reverse) + SimDuration::from_millis(1);
        }
        self.reverse = Some(reverse);
        self
    }

    /// Overrides the per-step timeout (the instant at which a step whose
    /// packets were lost resolves to the adapter's timeout symbol).
    ///
    /// # Panics
    /// Panics when the timeout is zero.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        assert!(
            !timeout.is_zero(),
            "a zero step timeout cannot make progress"
        );
        self.timeout = timeout;
        self.timeout_overridden = true;
        self
    }

    /// Sets the base noise seed: learning sessions all share this stream
    /// (answers stay a pure function of the query), repetition sessions
    /// derive per-repetition streams from it.
    pub fn with_noise_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// The forward (client→server) link configuration.
    pub fn link(&self) -> LinkConfig {
        self.link
    }

    /// The reverse (server→client) link configuration.
    pub fn reverse_link(&self) -> LinkConfig {
        self.reverse.unwrap_or(self.link)
    }

    /// The per-step timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    fn spawn_group(&self, seeds: &[u64]) -> (Vec<NetworkedSession<F::Sul>>, SharedClock) {
        let clock = SharedClock::new();
        let mut network = Network::with_default_link(self.noise_seed, self.link);
        network.attach_clock(clock.clone());
        let net = Arc::new(Mutex::new(network));
        let sessions = seeds
            .iter()
            .map(|&seed| {
                let mut guard = net.lock().expect("session network poisoned");
                let (client, client_port) = guard
                    .bind_ephemeral()
                    .expect("ephemeral ports available for the session group");
                let (server, server_port) = guard
                    .bind_ephemeral()
                    .expect("ephemeral ports available for the session group");
                guard.set_noise_seed(client, seed).expect("just bound");
                guard
                    .set_noise_seed(server, seed ^ SERVER_NOISE_SALT)
                    .expect("just bound");
                if let Some(reverse) = self.reverse {
                    // Direction-specific links on this session's endpoint
                    // pair; the network default (the forward config) keeps
                    // covering spoofed-source sends.
                    guard.set_link(client, server, self.link);
                    guard.set_link(server, client, reverse);
                }
                drop(guard);
                NetworkedSession {
                    sul: self.inner.create(),
                    net: Arc::clone(&net),
                    client,
                    client_port,
                    server,
                    server_port,
                    timeout: self.timeout,
                    impaired: self.link.is_impaired() || self.reverse_link().is_impaired(),
                    state: StepState::Idle,
                    pending_scope: None,
                }
            })
            .collect();
        (sessions, clock)
    }

    /// The noise-stream seed of repetition `rep`: a splitmix64-finalized
    /// mix, so repetition seeds carry no linear structure a downstream
    /// `LinkConfig::fate` sub-stream (which XORs in `index × constant`)
    /// could cancel against — repetition *r*'s packet *p* and repetition
    /// *r'*'s packet *p'* draw genuinely unrelated fates.
    fn repetition_seed(&self, rep: u64) -> u64 {
        let mut z = self
            .noise_seed
            .wrapping_add((rep + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Sessions for repetitions `start .. start + count` of one query on a
    /// fresh shared network: repetition *r* draws its packet fates from its
    /// own noise stream, so concurrent repetitions of the same query see
    /// independent network weather — the sampling substrate of
    /// [`crate::nondeterminism::check_multiplexed`].
    pub fn repetition_sessions(
        &self,
        start: u64,
        count: usize,
    ) -> (Vec<NetworkedSession<F::Sul>>, SharedClock) {
        let seeds: Vec<u64> = (0..count as u64)
            .map(|i| self.repetition_seed(start + i))
            .collect();
        self.spawn_group(&seeds)
    }
}

impl<F> SessionSulFactory for NetworkedSessionFactory<F>
where
    F: SulFactory,
    F::Sul: WireSul,
{
    type Session = NetworkedSession<F::Sul>;

    fn create_session(&self) -> Self::Session {
        self.spawn_group(&[self.noise_seed])
            .0
            .pop()
            .expect("one session spawned")
    }

    fn create_worker_sessions(&self, count: usize) -> (Vec<Self::Session>, SharedClock) {
        self.spawn_group(&vec![self.noise_seed; count])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic_adapter::{QuicSul, QuicSulFactory};
    use crate::session::{QueryPhase, SessionScheduler};
    use crate::sul::replay_query;
    use crate::tcp_adapter::{TcpSul, TcpSulFactory};
    use prognosis_automata::word::{InputWord, OutputWord};
    use prognosis_quic_sim::profile::ImplementationProfile;

    fn words() -> Vec<InputWord> {
        vec![
            InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"]),
            InputWord::from_symbols(["ACK(?,?,0)"]),
            InputWord::from_symbols(["SYN(?,?,0)", "FIN+ACK(?,?,0)"]),
            InputWord::from_symbols(["RST(?,?,0)", "SYN(?,?,0)", "NOT_A_SYMBOL"]),
            InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)", "ACK(?,?,0)"]),
        ]
    }

    fn run_multiplexed(
        factory: &NetworkedSessionFactory<TcpSulFactory>,
        batch: &[InputWord],
    ) -> Vec<OutputWord> {
        let (sessions, clock) = factory.create_worker_sessions(batch.len());
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        for (i, word) in batch.iter().enumerate() {
            scheduler.submit(i, word.clone(), QueryPhase::Construction);
        }
        let mut done = scheduler.run_to_idle();
        done.sort_by_key(|(i, _)| *i);
        done.into_iter().map(|(_, out)| out).collect()
    }

    #[test]
    fn ideal_wire_answers_exactly_as_the_in_process_path() {
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal());
        let batch = words();
        let got = run_multiplexed(&factory, &batch);
        for (word, out) in batch.iter().zip(&got) {
            assert_eq!(
                out,
                &replay_query(&mut TcpSul::with_defaults(), word),
                "wire transport diverged on {word:?}"
            );
        }
    }

    #[test]
    fn latency_and_jitter_cost_virtual_time_but_never_change_answers() {
        let link = LinkConfig::with_latency(SimDuration::from_micros(300))
            .jitter(SimDuration::from_micros(150));
        let factory =
            NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(5);
        let batch = words();
        let (sessions, clock) = factory.create_worker_sessions(batch.len());
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        for (i, word) in batch.iter().enumerate() {
            scheduler.submit(i, word.clone(), QueryPhase::Construction);
        }
        let mut done = scheduler.run_to_idle();
        done.sort_by_key(|(i, _)| *i);
        for (word, (_, out)) in batch.iter().zip(&done) {
            assert_eq!(out, &replay_query(&mut TcpSul::with_defaults(), word));
        }
        assert!(
            scheduler.stats().virtual_elapsed_micros >= 600,
            "at least one full round trip of virtual time"
        );
        assert!(scheduler.stats().clock_advances > 0);
    }

    #[test]
    fn lost_packets_resolve_to_the_timeout_symbol_at_the_deadline() {
        // Loss 1.0: every request is dropped on the wire, so every step of
        // every query must resolve to NIL instead of hanging the scheduler.
        let factory = NetworkedSessionFactory::new(
            TcpSulFactory::default(),
            LinkConfig::with_latency(SimDuration::from_micros(100)).loss(1.0),
        );
        let batch = words();
        let got = run_multiplexed(&factory, &batch);
        for (word, out) in batch.iter().zip(&got) {
            let expected: OutputWord = word.iter().map(|_| Symbol::new("NIL")).collect();
            assert_eq!(out, &expected, "lossy wire must time out, not hang");
        }
    }

    #[test]
    fn impaired_answers_are_a_pure_function_of_the_query() {
        // The determinism keystone: on a heavily impaired link, re-running
        // the same batch — in a different session order, on a different
        // group size — yields identical answers, because fates depend only
        // on (noise seed, per-query packet index).
        let link = LinkConfig::with_latency(SimDuration::from_micros(200))
            .jitter(SimDuration::from_micros(300))
            .loss(0.3)
            .reorder(0.3)
            .duplicate(0.2);
        let factory =
            NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(11);
        let batch = words();
        let first = run_multiplexed(&factory, &batch);
        let second = run_multiplexed(&factory, &batch);
        assert_eq!(first, second, "same group size must reproduce");
        // One session executing the batch serially sees the same answers.
        let (sessions, clock) = factory.create_worker_sessions(1);
        let mut serial = SessionScheduler::with_clock(sessions, clock);
        let mut serial_out = Vec::new();
        for (i, word) in batch.iter().enumerate() {
            serial.submit(i, word.clone(), QueryPhase::Construction);
            serial_out.extend(serial.run_to_idle().into_iter().map(|(_, o)| o));
        }
        assert_eq!(first, serial_out, "group size must not change answers");
        // And the noise seed genuinely matters (the link is really lossy).
        let reseeded =
            NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(12);
        let third = run_multiplexed(&reseeded, &batch);
        assert_ne!(first, third, "a different seed meets different weather");
    }

    #[test]
    fn networked_quic_handshake_completes_on_an_ideal_wire() {
        let factory = NetworkedSessionFactory::new(
            QuicSulFactory::new(ImplementationProfile::google(), 1),
            LinkConfig::ideal(),
        );
        let word = InputWord::from_symbols([
            "INITIAL(?,?)[CRYPTO]",
            "HANDSHAKE(?,?)[ACK,CRYPTO]",
            "SHORT(?,?)[ACK,STREAM]",
        ]);
        let (sessions, clock) = factory.create_worker_sessions(1);
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        scheduler.submit(0, word.clone(), QueryPhase::Construction);
        let done = scheduler.run_to_idle();
        let expected = replay_query(&mut QuicSul::new(ImplementationProfile::google(), 1), &word);
        assert_eq!(done[0].1, expected);
        // The Oracle Table flows back out through the session teardown.
        let mut sessions = scheduler.into_sessions();
        let mut session = sessions.pop().unwrap();
        session.start_reset(SimTime::ZERO);
        let sul = session.into_sul();
        assert!(!sul.oracle_table().is_empty());
    }

    #[test]
    fn buggy_retry_client_still_cannot_complete_the_handshake_over_the_wire() {
        // Issue 3 over netsim: the post-Retry Initial leaves from a spoofed
        // source port, so server-side address validation fails and the
        // handshake stays stuck — same observable as the in-process path.
        let word = InputWord::from_symbols(["INITIAL(?,?)[CRYPTO]", "INITIAL(?,?)[CRYPTO]"]);
        let profile = ImplementationProfile::quiche().with_retry();
        for buggy in [false, true] {
            let mut inner = QuicSulFactory::new(profile.clone(), 1);
            if buggy {
                inner = inner.with_buggy_retry_client();
            }
            let factory = NetworkedSessionFactory::new(inner, LinkConfig::ideal());
            let (sessions, clock) = factory.create_worker_sessions(1);
            let mut scheduler = SessionScheduler::with_clock(sessions, clock);
            scheduler.submit(0, word.clone(), QueryPhase::Construction);
            let done = scheduler.run_to_idle();
            let second_step = done[0].1.as_slice()[1].to_string();
            if buggy {
                assert_eq!(second_step, "{}", "validation must fail: {second_step}");
            } else {
                assert_ne!(second_step, "{}", "validated handshake proceeds");
            }
        }
    }

    #[test]
    fn repetition_streams_share_no_diagonal_fates() {
        // Regression: repetition seeds used the same multiplier as
        // LinkConfig's per-knob sub-streams, so repetition r's packet
        // r + 1 collapsed to one shared fate across every repetition.
        // With finalized seeds, the diagonal fates must genuinely vary.
        let link = LinkConfig::ideal().loss(0.5);
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), link);
        let diagonal: Vec<bool> = (0..32u64)
            .map(|rep| link.fate(factory.repetition_seed(rep), rep + 1).is_none())
            .collect();
        assert!(
            diagonal.iter().any(|&lost| lost) && diagonal.iter().any(|&lost| !lost),
            "diagonal packet fates must not collapse to one value: {diagonal:?}"
        );
        let mut seeds: Vec<u64> = (0..1_000).map(|rep| factory.repetition_seed(rep)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1_000, "repetition seeds are pairwise distinct");
    }

    #[test]
    fn create_session_works_under_a_foreign_scheduler_clock() {
        // A single session from `create_session` must behave on a scheduler
        // that knows nothing of the factory's internal clock — the session
        // drives its network from the scheduler-provided instant.
        let factory = NetworkedSessionFactory::new(
            TcpSulFactory::default(),
            LinkConfig::with_latency(SimDuration::from_micros(200)),
        );
        let mut scheduler = SessionScheduler::new(vec![factory.create_session()]);
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        scheduler.submit(0, word.clone(), QueryPhase::Construction);
        let done = scheduler.run_to_idle();
        assert_eq!(done[0].1, replay_query(&mut TcpSul::with_defaults(), &word));
        assert!(scheduler.stats().virtual_elapsed_micros >= 400);
    }

    #[test]
    fn sub_rtt_timeouts_never_shift_answers_across_steps() {
        // Regression: a step resolving at its deadline used to leave its
        // response in flight, and the next step absorbed it as its own
        // answer.  With a timeout far below the link latency, every step
        // must individually time out to NIL — no off-by-one outputs.
        let factory = NetworkedSessionFactory::new(
            TcpSulFactory::default(),
            LinkConfig::with_latency(SimDuration::from_micros(500)),
        )
        .with_timeout(SimDuration::from_micros(10));
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "SYN(?,?,0)"]);
        let (sessions, clock) = factory.create_worker_sessions(1);
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        scheduler.submit(0, word.clone(), QueryPhase::Construction);
        let done = scheduler.run_to_idle();
        let expected: OutputWord = word.iter().map(|_| Symbol::new("NIL")).collect();
        assert_eq!(done[0].1, expected);
    }

    #[test]
    fn asymmetric_links_apply_per_direction() {
        // Requests cross an ideal uplink; responses pay 400µs downlink
        // latency.  Answers match the in-process path, the virtual time is
        // downlink-only, and the capture shows every request delivered.
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal())
            .with_reverse_link(LinkConfig::with_latency(SimDuration::from_micros(400)));
        assert_eq!(factory.link().latency, SimDuration::ZERO);
        assert_eq!(
            factory.reverse_link().latency,
            SimDuration::from_micros(400)
        );
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let (sessions, clock) = factory.create_worker_sessions(1);
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        scheduler.submit(0, word.clone(), QueryPhase::Construction);
        let done = scheduler.run_to_idle();
        assert_eq!(done[0].1, replay_query(&mut TcpSul::with_defaults(), &word));
        // The SYN's response pays the 400µs downlink leg; the ACK step
        // elicits no response packet, so it costs (almost) nothing — the
        // elapsed time is the downlink latency, not a full symmetric RTT.
        let elapsed = scheduler.stats().virtual_elapsed_micros;
        assert!(
            (400..800).contains(&elapsed),
            "only responses pay the downlink leg (elapsed {elapsed}µs)"
        );
    }

    #[test]
    fn reverse_only_loss_times_out_after_the_server_was_reached() {
        use prognosis_netsim::capture::Fate;
        // Uplink ideal, downlink drops everything: every step resolves to
        // the timeout symbol, yet the capture shows the requests were
        // *delivered* — the loss is genuinely direction-specific.
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal())
            .with_reverse_link(LinkConfig::ideal().loss(1.0));
        let word = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let (sessions, clock) = factory.create_worker_sessions(1);
        let (client_port, server_port) = (sessions[0].client_port(), sessions[0].server_port());
        let net = Arc::clone(sessions[0].network());
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        scheduler.submit(0, word.clone(), QueryPhase::Construction);
        let done = scheduler.run_to_idle();
        let expected: OutputWord = word.iter().map(|_| Symbol::new("NIL")).collect();
        assert_eq!(done[0].1, expected, "lost responses must time out");
        let guard = net.lock().unwrap();
        let to_server: Vec<Fate> = guard
            .capture()
            .records()
            .iter()
            .filter(|r| r.destination_port == server_port)
            .map(|r| r.fate)
            .collect();
        let to_client: Vec<Fate> = guard
            .capture()
            .records()
            .iter()
            .filter(|r| r.destination_port == client_port)
            .map(|r| r.fate)
            .collect();
        assert!(
            !to_server.is_empty() && to_server.iter().all(|f| *f == Fate::Delivered),
            "uplink must deliver every request: {to_server:?}"
        );
        assert!(
            !to_client.is_empty() && to_client.iter().all(|f| *f == Fate::Lost),
            "downlink must lose every response: {to_client:?}"
        );
    }

    #[test]
    fn asymmetric_impairment_is_deterministic_across_engine_shapes() {
        let factory = NetworkedSessionFactory::new(
            TcpSulFactory::default(),
            LinkConfig::with_latency(SimDuration::from_micros(100)),
        )
        .with_reverse_link(
            LinkConfig::with_latency(SimDuration::from_micros(300))
                .loss(0.3)
                .jitter(SimDuration::from_micros(200)),
        )
        .with_noise_seed(17);
        let batch = words();
        let grouped = run_multiplexed(&factory, &batch);
        // One session at a time must see the exact same answers.
        let (sessions, clock) = factory.create_worker_sessions(1);
        let mut serial = SessionScheduler::with_clock(sessions, clock);
        let mut serial_out = Vec::new();
        for (i, word) in batch.iter().enumerate() {
            serial.submit(i, word.clone(), QueryPhase::Construction);
            serial_out.extend(serial.run_to_idle().into_iter().map(|(_, o)| o));
        }
        assert_eq!(grouped, serial_out, "group size must not change answers");
        // An impaired reverse direction alone must disable caching.
        let session = factory.create_session();
        assert_eq!(session.cache_key(), None);
    }

    #[test]
    fn explicit_timeouts_survive_with_reverse_link_in_any_order() {
        let reverse = LinkConfig::with_latency(SimDuration::from_millis(3));
        // Explicit timeout, then asymmetric link: the override must stick.
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal())
            .with_timeout(SimDuration::from_micros(10))
            .with_reverse_link(reverse);
        assert_eq!(factory.timeout(), SimDuration::from_micros(10));
        // Asymmetric link, then explicit timeout: same outcome.
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal())
            .with_reverse_link(reverse)
            .with_timeout(SimDuration::from_micros(10));
        assert_eq!(factory.timeout(), SimDuration::from_micros(10));
        // Without an override, the derived timeout covers both directions.
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), LinkConfig::ideal())
            .with_reverse_link(reverse);
        assert!(factory.timeout() >= SimDuration::from_millis(4));
    }

    #[test]
    fn sessions_get_distinct_port_pairs_and_factory_reports_config() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(2));
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), link)
            .with_timeout(SimDuration::from_millis(50));
        assert_eq!(factory.timeout(), SimDuration::from_millis(50));
        assert_eq!(factory.link().latency, SimDuration::from_millis(2));
        let (sessions, _clock) = factory.create_worker_sessions(3);
        let mut ports: Vec<u16> = sessions
            .iter()
            .flat_map(|s| [s.client_port(), s.server_port()])
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 6, "each session owns a distinct port pair");
        assert!(Arc::ptr_eq(sessions[0].network(), sessions[1].network()));
    }
}
