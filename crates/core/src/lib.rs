//! # prognosis-core
//!
//! The Prognosis framework (§2–§3 of the paper): the part that turns a
//! closed-box protocol implementation into something a model learner can
//! query, and that orchestrates learning, synthesis and analysis.
//!
//! * [`sul`] — the [`sul::Sul`] abstraction: a system that can be stepped
//!   with abstract input symbols and reset between queries, plus the bridge
//!   that exposes any `Sul` as a learner membership oracle.
//! * [`oracle_table`] — the Oracle Table of §3.2 (property 4): the cache of
//!   abstract-trace / concrete-trace pairs that feeds the synthesis module.
//! * [`nondeterminism`] — the repeated-query nondeterminism check of §5,
//!   which both protects the learner from environmental noise and is itself
//!   a bug-finding analysis (Issue 2).
//! * [`tcp_adapter`] / [`quic_adapter`] — the protocol bindings: adapters
//!   built on the instrumented reference implementations from
//!   `prognosis-tcp` and `prognosis-quic-sim`, enforcing properties (1)–(5)
//!   of §3.2.
//! * [`session`] — the event-driven session engine: [`session::SessionSul`]
//!   is a non-blocking query session polled against a virtual clock
//!   ([`session::SharedClock`]), and [`session::SessionScheduler`]
//!   multiplexes many in-flight sessions on one thread, advancing the clock
//!   to the next deadline instead of sleeping.
//! * [`net_transport`] — the impaired-network session transport:
//!   [`net_transport::NetworkedSession`] routes each multiplexed session's
//!   concrete packets through one shared `netsim` network per worker, so
//!   loss, jitter, reordering and duplication apply to in-flight learning
//!   queries; lost packets resolve to the adapter's timeout symbol at the
//!   step deadline.
//! * [`engine`] — the shared engine pool: a standalone, reusable pool of
//!   worker threads ([`engine::EnginePool`]) that concurrent learn tasks
//!   lease session-worker slots from, so an entire campaign of
//!   heterogeneous SULs runs over one set of engine threads.
//! * [`parallel`] — the parallel membership-query engine: a
//!   [`session::SessionSulFactory`] mints independent query sessions and
//!   [`parallel::ParallelSulOracle`] runs a per-worker session scheduler
//!   with dynamic work-pulling dispatch — model- and statistics-identical
//!   to a sequential run for any `(workers, max_inflight)`.
//! * [`pipeline`] — end-to-end orchestration: learn a Mealy model of a SUL
//!   (sequentially or with parallel session workers), optionally synthesize
//!   a register machine from the Oracle Table, and hand both to the
//!   analysis crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod latency;
pub mod net_transport;
pub mod nondeterminism;
pub mod oracle_table;
pub mod parallel;
pub mod pipeline;
pub mod quic_adapter;
pub mod session;
pub mod sul;
pub mod tcp_adapter;

pub use engine::{EngineLease, EnginePool};
pub use latency::{LatencySul, LatencySulFactory};
pub use net_transport::{
    LinkConfig, Network, NetworkedSession, NetworkedSessionFactory, WireRequest, WireSul,
};
pub use nondeterminism::{check_multiplexed, NondeterminismChecker, NondeterminismReport};
pub use oracle_table::{HasOracleTable, OracleTable};
pub use parallel::{EngineShutdown, ParallelSulOracle};
pub use pipeline::{
    learn_model, learn_model_parallel, learn_model_parallel_on, learn_model_parallel_seeded,
    LearnConfig, LearnError, LearnedModel, ParallelLearnOutcome, SeededLearnOutcome,
};
pub use quic_adapter::{quic_alphabet, quic_data_alphabet, QuicSul, QuicSulFactory};
pub use session::{
    BlockingSession, BlockingSessionFactory, EngineStats, SchedulerStats, SessionPoll,
    SessionScheduler, SessionSul, SessionSulFactory, SharedClock, SimDuration, SimTime,
    TimedSession, TimedSul,
};
pub use sul::{replay_query, Sul, SulFactory, SulMembershipOracle, SulStats};
pub use tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
