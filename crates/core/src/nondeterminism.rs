//! The nondeterminism check (§5).
//!
//! The learner expects a deterministic answer to every query.  Environmental
//! noise (latency, loss) and genuine implementation bugs can both make the
//! observed output vary, so Prognosis executes each query a minimum number
//! of times and, when the answers disagree, keeps re-executing until either
//! a configurable confidence level is reached or a query budget is
//! exhausted; in the latter case the query is flagged as nondeterministic.
//! In the mvfst case study (Issue 2, §6.2.4) this check is what surfaced the
//! probabilistic stateless-reset behaviour — "only in 82% of the responses"
//! — so the checker also reports the observed frequency of every distinct
//! answer.

use crate::net_transport::{NetworkedSessionFactory, WireSul};
use crate::session::{QueryPhase, SessionScheduler};
use crate::sul::{Sul, SulFactory};
use prognosis_automata::alphabet::Symbol;
use prognosis_automata::word::{InputWord, OutputWord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the repeated-query check.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NondeterminismConfig {
    /// Minimum number of times every query is executed.
    pub min_repetitions: usize,
    /// Maximum number of executions before giving up and declaring the
    /// query nondeterministic.
    pub max_repetitions: usize,
    /// Fraction of executions that must agree for the answer to be accepted
    /// (e.g. 0.95).
    pub confidence: f64,
}

impl Default for NondeterminismConfig {
    fn default() -> Self {
        NondeterminismConfig {
            min_repetitions: 3,
            max_repetitions: 50,
            confidence: 0.95,
        }
    }
}

/// The verdict for one checked query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NondeterminismReport {
    /// The input word that was checked.
    pub input: InputWord,
    /// Distinct output words observed, with their observation counts.
    pub observations: BTreeMap<OutputWord, usize>,
    /// Total executions performed.
    pub executions: usize,
    /// Whether the query was accepted as (sufficiently) deterministic.
    pub deterministic: bool,
}

impl NondeterminismReport {
    /// The most frequent output and its observed frequency in `[0, 1]`.
    pub fn majority(&self) -> Option<(&OutputWord, f64)> {
        self.observations
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(out, &count)| (out, count as f64 / self.executions as f64))
    }

    /// Number of distinct outputs observed.
    pub fn distinct_outputs(&self) -> usize {
        self.observations.len()
    }
}

/// Repeated-query checker over a [`Sul`].
pub struct NondeterminismChecker<S> {
    sul: S,
    config: NondeterminismConfig,
}

impl<S: Sul> NondeterminismChecker<S> {
    /// Wraps a SUL with the given configuration.
    pub fn new(sul: S, config: NondeterminismConfig) -> Self {
        assert!(config.min_repetitions >= 1);
        assert!(config.max_repetitions >= config.min_repetitions);
        assert!((0.0..=1.0).contains(&config.confidence));
        NondeterminismChecker { sul, config }
    }

    /// Wraps a SUL with the default configuration.
    pub fn with_defaults(sul: S) -> Self {
        NondeterminismChecker::new(sul, NondeterminismConfig::default())
    }

    /// Access to the wrapped SUL.
    pub fn sul_mut(&mut self) -> &mut S {
        &mut self.sul
    }

    /// Consumes the checker, returning the SUL.
    pub fn into_inner(self) -> S {
        self.sul
    }

    fn execute_once(&mut self, input: &InputWord) -> OutputWord {
        self.sul.reset();
        let mut out = OutputWord::empty();
        for symbol in input.iter() {
            out.push(self.sul.step(symbol));
        }
        out
    }

    /// Runs the repeated-query protocol for one input word.
    pub fn check(&mut self, input: &InputWord) -> NondeterminismReport {
        let mut observations: BTreeMap<OutputWord, usize> = BTreeMap::new();
        let mut executions = 0;
        // Phase 1: the mandatory minimum repetitions.
        for _ in 0..self.config.min_repetitions {
            let out = self.execute_once(input);
            *observations.entry(out).or_insert(0) += 1;
            executions += 1;
        }
        // Phase 2: if the answers disagree, keep sampling until the majority
        // reaches the confidence threshold or the budget runs out.
        loop {
            if observations.len() == 1 {
                return NondeterminismReport {
                    input: input.clone(),
                    observations,
                    executions,
                    deterministic: true,
                };
            }
            let majority = observations.values().copied().max().unwrap_or(0);
            if majority as f64 / executions as f64 >= self.config.confidence {
                return NondeterminismReport {
                    input: input.clone(),
                    observations,
                    executions,
                    deterministic: true,
                };
            }
            if executions >= self.config.max_repetitions {
                return NondeterminismReport {
                    input: input.clone(),
                    observations,
                    executions,
                    deterministic: false,
                };
            }
            let out = self.execute_once(input);
            *observations.entry(out).or_insert(0) += 1;
            executions += 1;
        }
    }

    /// Checks every single-symbol and two-symbol query over an alphabet and
    /// returns the reports for the queries found to be nondeterministic —
    /// the sweep Prognosis runs when the learner first observes conflicting
    /// answers.
    pub fn sweep(&mut self, alphabet: &[Symbol], prefix: &InputWord) -> Vec<NondeterminismReport> {
        let mut flagged = Vec::new();
        for symbol in alphabet {
            let word = prefix.append(symbol.clone());
            let report = self.check(&word);
            if !report.deterministic {
                flagged.push(report);
            }
        }
        flagged
    }
}

/// The session-engine path of the repeated-query check: the `k` repetitions
/// of one query run as `k` **concurrent sessions** multiplexed on one
/// [`SessionScheduler`] over an impaired network — the regime a real
/// deployment's noise check operates in, where many flows share the wire at
/// once (and where the PR-3 engine could previously not take impairments at
/// all).
///
/// Each repetition draws its packet fates from its own noise stream
/// ([`NetworkedSessionFactory::repetition_sessions`]), so repetitions are
/// independent samples of the link's weather while the whole check stays a
/// pure function of `(query, factory seeds, config)`: rerunning it yields
/// the identical report.  Sampling proceeds in concurrent waves of
/// `min_repetitions` until the confidence threshold is met or the
/// `max_repetitions` budget is exhausted, mirroring the sequential
/// [`NondeterminismChecker::check`] protocol.
pub fn check_multiplexed<F>(
    factory: &NetworkedSessionFactory<F>,
    input: &InputWord,
    config: NondeterminismConfig,
) -> NondeterminismReport
where
    F: SulFactory,
    F::Sul: WireSul,
{
    assert!(config.min_repetitions >= 1);
    assert!(config.max_repetitions >= config.min_repetitions);
    assert!((0.0..=1.0).contains(&config.confidence));
    let mut observations: BTreeMap<OutputWord, usize> = BTreeMap::new();
    let mut executions = 0usize;
    loop {
        // Decide how many more samples this wave needs.
        let wanted = if executions < config.min_repetitions {
            config.min_repetitions - executions
        } else if observations.len() == 1 {
            return NondeterminismReport {
                input: input.clone(),
                observations,
                executions,
                deterministic: true,
            };
        } else {
            let majority = observations.values().copied().max().unwrap_or(0);
            if majority as f64 / executions as f64 >= config.confidence {
                return NondeterminismReport {
                    input: input.clone(),
                    observations,
                    executions,
                    deterministic: true,
                };
            }
            if executions >= config.max_repetitions {
                return NondeterminismReport {
                    input: input.clone(),
                    observations,
                    executions,
                    deterministic: false,
                };
            }
            config
                .min_repetitions
                .min(config.max_repetitions - executions)
        };
        // One wave: `wanted` concurrent sessions of the same query, each
        // repetition on its own noise stream over one shared network.
        let (sessions, clock) = factory.repetition_sessions(executions as u64, wanted);
        let mut scheduler = SessionScheduler::with_clock(sessions, clock);
        for index in 0..wanted {
            scheduler.submit(index, input.clone(), QueryPhase::Construction);
        }
        for (_, output) in scheduler.run_to_idle() {
            *observations.entry(output).or_insert(0) += 1;
            executions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A SUL that answers `flaky` nondeterministically (based on a counter)
    /// and everything else deterministically.
    struct FlakySul {
        counter: u64,
        /// Answer "reset" for `flaky` once every `period` executions.
        period: u64,
    }

    impl Sul for FlakySul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            if input.as_str() == "flaky" {
                self.counter += 1;
                if self.counter.is_multiple_of(self.period) {
                    Symbol::new("silence")
                } else {
                    Symbol::new("reset")
                }
            } else {
                Symbol::new("ok")
            }
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn deterministic_queries_are_accepted_quickly() {
        let mut checker = NondeterminismChecker::with_defaults(FlakySul {
            counter: 0,
            period: 5,
        });
        let report = checker.check(&InputWord::from_symbols(["stable", "stable"]));
        assert!(report.deterministic);
        assert_eq!(report.executions, 3);
        assert_eq!(report.distinct_outputs(), 1);
        assert_eq!(report.majority().unwrap().1, 1.0);
    }

    #[test]
    fn genuinely_nondeterministic_queries_are_flagged_with_frequencies() {
        // Roughly 1 in 5 answers differ: the 95% confidence threshold cannot
        // be met, so the query is flagged and the ~80/20 split is reported.
        let config = NondeterminismConfig {
            min_repetitions: 5,
            max_repetitions: 100,
            confidence: 0.95,
        };
        let mut checker = NondeterminismChecker::new(
            FlakySul {
                counter: 0,
                period: 5,
            },
            config,
        );
        let report = checker.check(&InputWord::from_symbols(["flaky"]));
        assert!(!report.deterministic);
        assert_eq!(report.executions, 100);
        assert_eq!(report.distinct_outputs(), 2);
        let (majority, freq) = report.majority().unwrap();
        assert_eq!(majority, &OutputWord::from_symbols(["reset"]));
        assert!(
            (0.75..=0.85).contains(&freq),
            "observed frequency {freq} should be ≈0.8"
        );
    }

    #[test]
    fn occasional_noise_below_threshold_is_tolerated() {
        // 1 in 25 answers differ; with a 90% confidence threshold the
        // majority answer is accepted as deterministic.
        let config = NondeterminismConfig {
            min_repetitions: 3,
            max_repetitions: 60,
            confidence: 0.90,
        };
        let mut checker = NondeterminismChecker::new(
            FlakySul {
                counter: 0,
                period: 25,
            },
            config,
        );
        let report = checker.check(&InputWord::from_symbols(["flaky"]));
        assert!(report.deterministic);
    }

    #[test]
    fn sweep_reports_only_the_problematic_symbols() {
        let config = NondeterminismConfig {
            min_repetitions: 5,
            max_repetitions: 40,
            confidence: 0.99,
        };
        let mut checker = NondeterminismChecker::new(
            FlakySul {
                counter: 0,
                period: 3,
            },
            config,
        );
        let alphabet = vec![
            Symbol::new("stable"),
            Symbol::new("flaky"),
            Symbol::new("other"),
        ];
        let flagged = checker.sweep(&alphabet, &InputWord::empty());
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].input, InputWord::from_symbols(["flaky"]));
        let _ = checker.sul_mut();
        let _ = checker.into_inner();
    }

    #[test]
    fn multiplexed_check_reproduces_injected_loss_frequencies() {
        use crate::net_transport::{LinkConfig, NetworkedSessionFactory};
        use crate::session::SimDuration;
        use crate::tcp_adapter::TcpSulFactory;

        // 10% loss per direction: a SYN's answer survives the round trip
        // with probability 0.9 × 0.9 = 0.81 — the ~80/20 split the paper's
        // mvfst analysis hinges on, here injected by the network.
        let link = LinkConfig::with_latency(SimDuration::from_micros(100)).loss(0.1);
        let factory =
            NetworkedSessionFactory::new(TcpSulFactory::default(), link).with_noise_seed(42);
        let config = NondeterminismConfig {
            min_repetitions: 50,
            max_repetitions: 400,
            confidence: 0.95,
        };
        let word = InputWord::from_symbols(["SYN(?,?,0)"]);
        let report = check_multiplexed(&factory, &word, config);
        assert!(
            !report.deterministic,
            "20% answer noise cannot meet a 95% confidence threshold"
        );
        assert_eq!(report.distinct_outputs(), 2);
        assert_eq!(report.executions, 400);
        let (majority, freq) = report.majority().unwrap();
        assert_eq!(majority, &OutputWord::from_symbols(["ACK+SYN(?,?,0)"]));
        assert!(
            (0.72..=0.90).contains(&freq),
            "observed frequency {freq} should be ≈0.81"
        );
        // The whole check is a pure function of (query, seeds, config).
        let again = check_multiplexed(&factory, &word, config);
        assert_eq!(report, again);
    }

    #[test]
    fn multiplexed_check_accepts_clean_links_quickly() {
        use crate::net_transport::{LinkConfig, NetworkedSessionFactory};
        use crate::session::SimDuration;
        use crate::tcp_adapter::TcpSulFactory;

        let link = LinkConfig::with_latency(SimDuration::from_micros(100));
        let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), link);
        let report = check_multiplexed(
            &factory,
            &InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]),
            NondeterminismConfig::default(),
        );
        assert!(report.deterministic);
        assert_eq!(report.executions, 3);
        assert_eq!(report.distinct_outputs(), 1);
    }

    #[test]
    #[should_panic]
    fn invalid_configuration_is_rejected() {
        let _ = NondeterminismChecker::new(
            FlakySul {
                counter: 0,
                period: 2,
            },
            NondeterminismConfig {
                min_repetitions: 10,
                max_repetitions: 2,
                confidence: 0.5,
            },
        );
    }
}
