//! The TCP adapter: the protocol binding of §6.1.
//!
//! The adapter pairs the TCP implementation under learning
//! ([`prognosis_tcp::TcpServer`]) with the instrumented reference client
//! ([`prognosis_tcp::ReferenceTcpClient`]), enforcing the §3.2 properties:
//! packets are only sent when the learner requests them (1), the concrete
//! segment always matches the requested abstract symbol (2), both sides are
//! reset between queries (3), every exchange is recorded in the Oracle Table
//! together with its concrete sequence/acknowledgement numbers (4), and
//! responses are abstracted back to the learner's alphabet (5).

use crate::net_transport::{WireRequest, WireSul};
use crate::oracle_table::{HasOracleTable, OracleTable};
use crate::session::{SessionSulFactory, SimTime, TimedSession, TimedSul};
use crate::sul::{Sul, SulFactory, SulStats};
use bytes::Bytes;
use prognosis_automata::alphabet::{Alphabet, Symbol};
use prognosis_tcp::client::ReferenceTcpClient;
use prognosis_tcp::segment::TcpSegment;
use prognosis_tcp::server::{TcpServer, TcpServerConfig};

/// The abstract TCP alphabet used in §6.1 (the same alphabet as prior work):
/// packet flags with the payload length, sequence/acknowledgement numbers
/// left unspecified.
pub fn tcp_alphabet() -> Alphabet {
    Alphabet::from_symbols([
        "SYN(?,?,0)",
        "SYN+ACK(?,?,0)",
        "ACK(?,?,0)",
        "ACK+PSH(?,?,1)",
        "FIN+ACK(?,?,0)",
        "RST(?,?,0)",
        "ACK+RST(?,?,0)",
    ])
}

/// Mints independent [`TcpSul`] instances from one server configuration,
/// so membership-query batches can fan out across parallel workers.
#[derive(Clone, Debug, Default)]
pub struct TcpSulFactory {
    config: TcpServerConfig,
}

impl TcpSulFactory {
    /// A factory using the given server configuration.
    pub fn new(config: TcpServerConfig) -> Self {
        TcpSulFactory { config }
    }
}

impl SulFactory for TcpSulFactory {
    type Sul = TcpSul;

    fn create(&self) -> TcpSul {
        TcpSul::new(self.config.clone())
    }
}

impl SessionSulFactory for TcpSulFactory {
    type Session = TimedSession<TcpSul>;

    fn create_session(&self) -> Self::Session {
        TimedSession::new(self.create())
    }
}

/// The TCP system under learning: implementation + adapter.
pub struct TcpSul {
    server: TcpServer,
    client: ReferenceTcpClient,
    /// The server configuration, kept so the SUL can report a stable
    /// cross-run cache key (the config fully determines query answers:
    /// the reference client's ports and ISN are fixed constants).
    config: TcpServerConfig,
    oracle: OracleTable,
    stats: SulStats,
    /// The (abstract, concrete-fields) steps of the query in progress.
    current_inputs: Vec<(String, Vec<i64>)>,
    current_outputs: Vec<(String, Vec<i64>)>,
    /// Responses absorbed from the wire during the in-flight networked
    /// step (see [`WireSul`]); empty outside a wire step.
    wire_responses: Vec<(String, Vec<i64>)>,
}

impl TcpSul {
    /// Creates the SUL with the given server configuration.
    pub fn new(config: TcpServerConfig) -> Self {
        let server_port = config.port;
        TcpSul {
            server: TcpServer::new(config.clone()),
            client: ReferenceTcpClient::new(40_965, server_port, 48_108),
            config,
            oracle: OracleTable::new(),
            stats: SulStats::default(),
            current_inputs: Vec::new(),
            current_outputs: Vec::new(),
            wire_responses: Vec::new(),
        }
    }

    /// Creates the SUL with the default (fixed-ISN) configuration used by
    /// the learning experiments.
    pub fn with_defaults() -> Self {
        TcpSul::new(TcpServerConfig::default())
    }

    /// The Oracle Table accumulated so far.
    pub fn oracle_table(&self) -> &OracleTable {
        &self.oracle
    }

    /// The current state of the server (for white-box assertions in tests).
    pub fn server(&self) -> &TcpServer {
        &self.server
    }

    fn fields(segment: &TcpSegment) -> Vec<i64> {
        vec![i64::from(segment.seq), i64::from(segment.ack)]
    }

    fn flush_query(&mut self) {
        if self.current_inputs.is_empty() {
            return;
        }
        self.oracle.record_steps(
            std::mem::take(&mut self.current_inputs),
            std::mem::take(&mut self.current_outputs),
        );
    }

    /// One step on the virtual clock: the abstract output plus the instant
    /// the server's response is ready (`now` when no packet was exchanged).
    /// Both [`Sul::step`] and [`TimedSul::step_at`] funnel through here, so
    /// the two paths answer identically by construction.
    fn step_timed(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime) {
        self.stats.symbols_sent += 1;
        let segment = match self.client.concretize(input.as_str()) {
            Ok(s) => s,
            Err(_) => {
                // Unknown symbols are answered with silence so a bad alphabet
                // cannot wedge the learner.
                self.current_inputs.push((input.to_string(), vec![]));
                self.current_outputs.push(("NIL".to_string(), vec![]));
                return (Symbol::new("NIL"), now);
            }
        };
        self.stats.concrete_packets_sent += 1;
        let input_fields = Self::fields(&segment);
        let (response, ready_at) = self.server.handle_segment_at(&segment, now);
        let (abstract_out, output_fields) = match &response {
            Some(seg) => {
                self.stats.concrete_packets_received += 1;
                self.client.absorb(seg);
                (seg.abstract_name(), Self::fields(seg))
            }
            None => ("NIL".to_string(), vec![]),
        };
        self.current_inputs.push((input.to_string(), input_fields));
        self.current_outputs
            .push((abstract_out.clone(), output_fields));
        (Symbol::new(abstract_out), ready_at)
    }
}

impl Sul for TcpSul {
    fn step(&mut self, input: &Symbol) -> Symbol {
        self.step_timed(input, SimTime::ZERO).0
    }

    fn reset(&mut self) {
        self.stats.resets += 1;
        self.wire_responses.clear();
        self.flush_query();
        self.server.reset();
        self.client.reset();
    }

    fn stats(&self) -> SulStats {
        self.stats
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("tcp:{:?}", self.config))
    }
}

impl WireSul for TcpSul {
    fn wire_request(&mut self, input: &Symbol) -> WireRequest {
        self.stats.symbols_sent += 1;
        self.wire_responses.clear();
        match self.client.concretize(input.as_str()) {
            Err(_) => {
                // Unknown symbols exchange no packet: answered with silence
                // immediately, exactly as the in-process path does.
                self.current_inputs.push((input.to_string(), vec![]));
                self.current_outputs.push(("NIL".to_string(), vec![]));
                WireRequest::Immediate(Symbol::new("NIL"))
            }
            Ok(segment) => {
                self.stats.concrete_packets_sent += 1;
                self.current_inputs
                    .push((input.to_string(), Self::fields(&segment)));
                WireRequest::Datagram(segment.encode())
            }
        }
    }

    fn handle_wire(
        &mut self,
        datagram: &Bytes,
        _source_port: u16,
        now: SimTime,
    ) -> (Vec<Bytes>, SimTime) {
        match TcpSegment::decode(datagram.clone()) {
            Ok(segment) => {
                let (response, ready_at) = self.server.handle_segment_at(&segment, now);
                (
                    response.into_iter().map(|seg| seg.encode()).collect(),
                    ready_at,
                )
            }
            // A mangled segment is dropped by the server's input stage.
            Err(_) => (Vec::new(), now),
        }
    }

    fn absorb_wire(&mut self, datagram: &Bytes) {
        if let Ok(segment) = TcpSegment::decode(datagram.clone()) {
            self.stats.concrete_packets_received += 1;
            self.client.absorb(&segment);
            self.wire_responses
                .push((segment.abstract_name(), Self::fields(&segment)));
        }
    }

    fn finish_step(&mut self) -> Symbol {
        // TCP answers a request with at most one segment; a duplicated
        // delivery repeats the identical segment, so the first absorbed
        // response is the step's output.  Nothing absorbed means silence
        // on the wire — the adapter's timeout symbol.
        let (output, fields) = self
            .wire_responses
            .first()
            .cloned()
            .unwrap_or_else(|| ("NIL".to_string(), vec![]));
        self.wire_responses.clear();
        self.current_outputs.push((output.clone(), fields));
        Symbol::new(output)
    }
}

impl TimedSul for TcpSul {
    fn step_at(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime) {
        self.step_timed(input, now)
    }

    fn reset_at(&mut self, now: SimTime) -> SimTime {
        self.reset();
        now
    }
}

impl HasOracleTable for TcpSul {
    fn oracle_table(&self) -> &OracleTable {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosis_automata::word::InputWord;
    use prognosis_learner::oracle::MembershipOracle;

    #[test]
    fn cache_keys_distinguish_server_configurations() {
        let a = TcpSul::with_defaults();
        let b = TcpSul::with_defaults();
        assert_eq!(a.cache_key(), b.cache_key(), "same config, same key");
        let other = TcpSul::new(TcpServerConfig {
            window: 1_024,
            ..TcpServerConfig::default()
        });
        assert_ne!(a.cache_key(), other.cache_key());
    }

    #[test]
    fn alphabet_has_the_seven_symbols_of_the_paper() {
        let a = tcp_alphabet();
        assert_eq!(a.len(), 7);
        assert!(a.contains(&Symbol::new("ACK+PSH(?,?,1)")));
    }

    #[test]
    fn handshake_query_produces_the_expected_abstract_trace() {
        let mut sul = TcpSul::with_defaults();
        sul.reset();
        let out1 = sul.step(&Symbol::new("SYN(?,?,0)"));
        let out2 = sul.step(&Symbol::new("ACK(?,?,0)"));
        let out3 = sul.step(&Symbol::new("ACK+PSH(?,?,1)"));
        assert_eq!(out1.as_str(), "ACK+SYN(?,?,0)");
        assert_eq!(out2.as_str(), "NIL");
        assert_eq!(out3.as_str(), "ACK(?,?,0)");
        assert_eq!(sul.stats().symbols_sent, 3);
    }

    #[test]
    fn queries_are_deterministic_across_resets() {
        let mut sul = TcpSul::with_defaults();
        let mut oracle = crate::sul::SulMembershipOracle::new(&mut sul);
        let word =
            InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)", "ACK(?,?,0)"]);
        let a = oracle.query(&word);
        let b = oracle.query(&word);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_table_records_concrete_sequence_numbers() {
        let mut sul = TcpSul::with_defaults();
        sul.reset();
        sul.step(&Symbol::new("SYN(?,?,0)"));
        sul.step(&Symbol::new("ACK(?,?,0)"));
        sul.reset(); // flushes the query into the table
        assert_eq!(sul.oracle_table().len(), 1);
        let entry = sul.oracle_table().entries().next().unwrap();
        // The SYN carries the client ISN; the SYN+ACK response acknowledges ISN+1.
        assert_eq!(entry.steps[0].input_fields, vec![48_108, 0]);
        assert_eq!(entry.steps[0].output_fields, vec![10_000, 48_109]);
    }

    #[test]
    fn unknown_abstract_symbols_are_answered_with_nil() {
        let mut sul = TcpSul::with_defaults();
        sul.reset();
        assert_eq!(sul.step(&Symbol::new("NOT_A_SYMBOL")).as_str(), "NIL");
    }

    #[test]
    fn stray_segments_in_listen_get_rst() {
        let mut sul = TcpSul::with_defaults();
        sul.reset();
        let out = sul.step(&Symbol::new("ACK(?,?,0)"));
        assert_eq!(out.as_str(), "RST(?,?,0)");
        let out = sul.step(&Symbol::new("FIN+ACK(?,?,0)"));
        assert!(out.as_str().contains("RST"));
    }
}
