//! The shared engine pool: a standalone, reusable home for session workers.
//!
//! Before the campaign orchestrator existed, the worker pool was
//! constructed inside — and owned by — a single
//! [`crate::parallel::ParallelSulOracle`]: one oracle, one set of threads,
//! one SUL type, torn down when that oracle shut down.  Fleet campaigns
//! need the opposite shape: **one** pool of engine threads serving many
//! concurrent learn tasks, each with its own SUL type, session scheduler
//! and per-worker `netsim` network.  [`EnginePool`] is that split: it owns
//! plain executor threads and a slot ledger; a learn task *leases* slots
//! ([`EnginePool::lease`], blocking until enough are free), installs its
//! typed worker loops on the leased threads, and returns the slots when its
//! oracle shuts down.  Because every worker loop runs entirely on virtual
//! time, *which* pool thread hosts a given worker never affects learned
//! models or statistics — leasing moves only wall-clock scheduling.
//!
//! The pool is deliberately untyped (it executes boxed closures), which is
//! what lets a TCP learn task and a QUIC learn task share one pool at the
//! same time.

use prognosis_events::{Event, EventSink};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct JobQueue {
    pending: VecDeque<PoolJob>,
    shutdown: bool,
}

struct SlotLedger {
    free: usize,
    total: usize,
}

struct PoolShared {
    jobs: Mutex<JobQueue>,
    jobs_ready: Condvar,
    slots: Mutex<SlotLedger>,
    slots_ready: Condvar,
    /// Diagnostic sink for lease traffic (`lease:acquire` /
    /// `lease:release`); lives here because slot returns happen on pool
    /// threads, not through the [`EnginePool`] handle.
    events: Mutex<Option<Arc<dyn EventSink>>>,
}

/// A pool of engine threads that session workers run on.  Each thread hosts
/// at most one leased worker at a time (a slot *is* a thread), so a leased
/// worker gets a dedicated OS thread for its scheduler's lifetime — the
/// same execution model the pre-pool engine had, minus the per-oracle
/// spawn/join cost and the one-oracle-per-pool restriction.
pub struct EnginePool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl EnginePool {
    /// Spawns a pool of `threads` engine threads (= `threads` leasable
    /// worker slots).
    ///
    /// # Panics
    /// Panics when `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "an engine pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(JobQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            jobs_ready: Condvar::new(),
            slots: Mutex::new(SlotLedger {
                free: threads,
                total: threads,
            }),
            slots_ready: Condvar::new(),
            events: Mutex::new(None),
        });
        let threads = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.jobs.lock().expect("engine pool queue poisoned");
                        loop {
                            if let Some(job) = q.pending.pop_front() {
                                break job;
                            }
                            if q.shutdown {
                                return;
                            }
                            q = shared
                                .jobs_ready
                                .wait(q)
                                .expect("engine pool queue poisoned");
                        }
                    };
                    // Worker loops guard themselves with `catch_unwind` and
                    // report panics through their own channels, so a dying
                    // worker never takes the pool thread down with it.
                    job();
                })
            })
            .collect();
        EnginePool { shared, threads }
    }

    /// Attaches a sink for the pool's diagnostic lease events
    /// (`lease:acquire` on grant, `lease:release` per returned slot).
    /// Replaces any previous sink.
    pub fn set_event_sink(&self, sink: Arc<dyn EventSink>) {
        *self.shared.events.lock().expect("pool sink poisoned") = Some(sink);
    }

    /// Total worker slots (= pool threads).
    pub fn total_slots(&self) -> usize {
        self.shared
            .slots
            .lock()
            .expect("slot ledger poisoned")
            .total
    }

    /// Slots currently free to lease.  Advisory (another task may lease
    /// between the read and any decision based on it) — use for progress
    /// reporting, not for coordination.
    pub fn free_slots(&self) -> usize {
        self.shared.slots.lock().expect("slot ledger poisoned").free
    }

    /// Leases `workers` slots, blocking until that many are free at once.
    /// The lease is all-or-nothing (no partial acquisition), so two tasks
    /// each waiting for `k` slots can never deadlock each other — whichever
    /// sees `k` free first takes them atomically.
    ///
    /// # Panics
    /// Panics when `workers` is zero or exceeds the pool size (such a lease
    /// could never be satisfied).
    pub fn lease(&self, workers: usize) -> EngineLease {
        assert!(workers >= 1, "a lease needs at least one worker slot");
        let mut slots = self.shared.slots.lock().expect("slot ledger poisoned");
        assert!(
            workers <= slots.total,
            "cannot lease {workers} slots from a {}-thread pool",
            slots.total
        );
        while slots.free < workers {
            slots = self
                .shared
                .slots_ready
                .wait(slots)
                .expect("slot ledger poisoned");
        }
        slots.free -= workers;
        let free = slots.free;
        drop(slots);
        emit_pool_event(
            &self.shared,
            Event::LeaseAcquire {
                slots: workers as u64,
                free: free as u64,
            },
        );
        EngineLease {
            shared: Arc::clone(&self.shared),
            unspent: workers,
        }
    }

    /// Submits one worker-loop closure to run on a pool thread.  Callers go
    /// through [`EngineLease::submit_worker`], which ties the submission to
    /// a reserved slot.
    fn submit(shared: &PoolShared, job: PoolJob) {
        let mut q = shared.jobs.lock().expect("engine pool queue poisoned");
        assert!(!q.shutdown, "submitting work to a shut-down engine pool");
        q.pending.push_back(job);
        drop(q);
        shared.jobs_ready.notify_one();
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.jobs.lock().expect("engine pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.jobs_ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A reservation of worker slots in an [`EnginePool`].  Each call to
/// [`EngineLease::submit_worker`] spends one reserved slot; the slot
/// returns to the pool automatically when that worker's closure finishes
/// (normally or by panic).  Dropping a lease returns any unspent slots.
pub struct EngineLease {
    shared: Arc<PoolShared>,
    unspent: usize,
}

impl EngineLease {
    /// Slots reserved but not yet spent on a worker.
    pub fn remaining(&self) -> usize {
        self.unspent
    }

    /// Runs `job` on a pool thread, spending one reserved slot.  The slot
    /// is released when `job` returns — including when it panics internally
    /// and swallows the panic, which is how session worker loops report
    /// failure.
    ///
    /// # Panics
    /// Panics when the lease has no slots left.
    pub fn submit_worker<J: FnOnce() + Send + 'static>(&mut self, job: J) {
        self.submit_worker_releasing(move |_slot| job());
    }

    /// Like [`EngineLease::submit_worker`], but hands the job its slot's
    /// return guard so it can release the slot *before* its final effects
    /// (dropping the handle mid-job returns the slot immediately).  Worker
    /// loops use this to return the slot before sending their shutdown
    /// report, so a learn task that has joined its workers observes the
    /// pool as already reusable — without the early release, the ledger
    /// update would race every observer of the finished run.  A job that
    /// never drops the handle behaves exactly like `submit_worker`: the
    /// slot returns when the closure finishes, normally or by unwind.
    ///
    /// # Panics
    /// Panics when the lease has no slots left.
    pub fn submit_worker_releasing<J>(&mut self, job: J)
    where
        J: FnOnce(SlotHandle) + Send + 'static,
    {
        assert!(self.unspent > 0, "lease has no reserved slots left");
        self.unspent -= 1;
        let shared = Arc::clone(&self.shared);
        EnginePool::submit(
            &self.shared,
            Box::new(move || {
                // The handle releases the slot no matter how the job ends;
                // a panic that escapes the job must not leak the slot (the
                // guard's Drop runs during unwind).
                job(SlotHandle {
                    _guard: SlotReturn { shared, count: 1 },
                });
            }),
        );
    }
}

/// A leased slot's return guard, handed to jobs submitted through
/// [`EngineLease::submit_worker_releasing`].  Dropping it returns the slot
/// to the pool; holding it to the end of the job reproduces the default
/// release-on-finish behaviour.
pub struct SlotHandle {
    _guard: SlotReturn,
}

impl Drop for EngineLease {
    fn drop(&mut self) {
        if self.unspent > 0 {
            release_slots(&self.shared, self.unspent);
        }
    }
}

fn release_slots(shared: &PoolShared, count: usize) {
    let mut slots = shared.slots.lock().expect("slot ledger poisoned");
    slots.free += count;
    let free = slots.free;
    debug_assert!(slots.free <= slots.total, "slot over-release");
    drop(slots);
    emit_pool_event(shared, Event::LeaseRelease { free: free as u64 });
    shared.slots_ready.notify_all();
}

fn emit_pool_event(shared: &PoolShared, event: Event) {
    if let Some(sink) = &*shared.events.lock().expect("pool sink poisoned") {
        sink.emit(&event);
    }
}

/// Returns `count` slots to the pool on drop.
struct SlotReturn {
    shared: Arc<PoolShared>,
    count: usize,
}

impl Drop for SlotReturn {
    fn drop(&mut self) {
        release_slots(&self.shared, self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn leased_workers_run_and_slots_return() {
        let pool = EnginePool::new(3);
        assert_eq!(pool.total_slots(), 3);
        assert_eq!(pool.free_slots(), 3);
        let (tx, rx) = channel();
        let mut lease = pool.lease(2);
        assert_eq!(pool.free_slots(), 1);
        for i in 0..2 {
            let tx = tx.clone();
            lease.submit_worker(move || tx.send(i).unwrap());
        }
        let mut got: Vec<usize> = (0..2).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        // The workers finished, so their slots drain back to the pool.
        while pool.free_slots() < 3 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn dropping_an_unspent_lease_returns_slots() {
        let pool = EnginePool::new(2);
        let lease = pool.lease(2);
        assert_eq!(pool.free_slots(), 0);
        drop(lease);
        assert_eq!(pool.free_slots(), 2);
    }

    #[test]
    fn leases_block_until_slots_free() {
        let pool = Arc::new(EnginePool::new(1));
        let (release_tx, release_rx) = channel::<()>();
        let mut first = pool.lease(1);
        first.submit_worker(move || {
            release_rx.recv().unwrap();
        });
        let order = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let pool = Arc::clone(&pool);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let _lease = pool.lease(1); // blocks until the first worker ends
                order.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert_eq!(order.load(Ordering::SeqCst), 0);
        release_tx.send(()).unwrap();
        waiter.join().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_panicking_worker_returns_its_slot_and_keeps_the_thread() {
        let pool = EnginePool::new(1);
        let mut lease = pool.lease(1);
        lease.submit_worker(|| {
            let _ = std::panic::catch_unwind(|| panic!("worker died"));
        });
        // The slot comes back and the single pool thread still executes
        // later leases.
        let (tx, rx) = channel();
        let mut second = pool.lease(1);
        second.submit_worker(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
