//! The System Under Learning abstraction.
//!
//! A [`Sul`] is anything that can be driven one abstract input symbol at a
//! time and reset to its initial state between queries — exactly the
//! interface the learning module needs (§3).  The adapters in this crate
//! implement it on top of the instrumented reference implementations;
//! [`SulMembershipOracle`] closes the loop by exposing any `Sul` as a
//! [`MembershipOracle`] for the learners in `prognosis-learner`.

use prognosis_automata::alphabet::Symbol;
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_learner::oracle::MembershipOracle;
use serde::{Deserialize, Serialize};

/// A system that can be learned: stepped with abstract symbols, reset
/// between queries.
pub trait Sul {
    /// Sends one abstract input symbol and returns the abstract output
    /// observed in response.
    fn step(&mut self, input: &Symbol) -> Symbol;

    /// Returns the system (implementation *and* reference/adapter state) to
    /// its initial state, ready for an independent query (§3.2 property 3).
    fn reset(&mut self);

    /// Counters describing the interaction so far.
    fn stats(&self) -> SulStats {
        SulStats::default()
    }

    /// A stable identifier of this SUL's configuration, used to key the
    /// cross-run observation cache: two SULs with the same cache key must
    /// answer every query identically (the §3.2 determinism property lifted
    /// across process boundaries).  `None` — the default — opts the SUL out
    /// of persistent caching; the pipeline then learns cold even when a
    /// cache path is configured.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

impl<T: Sul + ?Sized> Sul for &mut T {
    fn step(&mut self, input: &Symbol) -> Symbol {
        (**self).step(input)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn stats(&self) -> SulStats {
        (**self).stats()
    }

    fn cache_key(&self) -> Option<String> {
        (**self).cache_key()
    }
}

/// Mints independent SUL instances.
///
/// Every instance must behave identically on identical queries (the §3.2
/// determinism property), so a factory is what lets the framework fan
/// membership-query batches out across several SUL copies — each worker of
/// a [`crate::parallel::ParallelSulOracle`] owns one instance, the same
/// engineering split real QUIC trace-collection tooling uses to scale.
pub trait SulFactory {
    /// The SUL type this factory creates.
    type Sul: Sul;

    /// Creates a fresh, independent SUL instance in its initial state.
    fn create(&self) -> Self::Sul;
}

impl<F: SulFactory + ?Sized> SulFactory for &F {
    type Sul = F::Sul;

    fn create(&self) -> Self::Sul {
        (**self).create()
    }
}

/// Replays one membership query against a SUL: reset, then step through the
/// word, collecting one output symbol per input symbol.
pub fn replay_query<S: Sul + ?Sized>(sul: &mut S, input: &InputWord) -> OutputWord {
    sul.reset();
    let mut out = OutputWord::empty();
    for symbol in input.iter() {
        out.push(sul.step(symbol));
    }
    out
}

/// Interaction counters for a SUL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SulStats {
    /// Abstract input symbols sent.
    pub symbols_sent: u64,
    /// Resets performed.
    pub resets: u64,
    /// Concrete packets (datagrams/segments) sent to the implementation.
    pub concrete_packets_sent: u64,
    /// Concrete packets received from the implementation.
    pub concrete_packets_received: u64,
}

/// Exposes a [`Sul`] as a membership oracle: each query resets the SUL and
/// replays the input word symbol by symbol.
pub struct SulMembershipOracle<S> {
    sul: S,
    queries: u64,
}

impl<S: Sul> SulMembershipOracle<S> {
    /// Wraps a SUL.
    pub fn new(sul: S) -> Self {
        SulMembershipOracle { sul, queries: 0 }
    }

    /// Immutable access to the wrapped SUL (e.g. to read its Oracle Table
    /// after learning).
    pub fn sul(&self) -> &S {
        &self.sul
    }

    /// Mutable access to the wrapped SUL.
    pub fn sul_mut(&mut self) -> &mut S {
        &mut self.sul
    }

    /// Consumes the oracle, returning the SUL.
    pub fn into_inner(self) -> S {
        self.sul
    }
}

impl<S: Sul> MembershipOracle for SulMembershipOracle<S> {
    fn query(&mut self, input: &InputWord) -> OutputWord {
        self.queries += 1;
        replay_query(&mut self.sul, input)
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosis_automata::known;
    use prognosis_automata::mealy::{MealyMachine, StateId};

    /// A SUL backed by a Mealy machine, for unit-testing the bridge.
    struct MachineSul {
        machine: MealyMachine,
        state: StateId,
        stats: SulStats,
    }

    impl MachineSul {
        fn new(machine: MealyMachine) -> Self {
            let state = machine.initial_state();
            MachineSul {
                machine,
                state,
                stats: SulStats::default(),
            }
        }
    }

    impl Sul for MachineSul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            self.stats.symbols_sent += 1;
            let (next, out) = self
                .machine
                .step(self.state, input)
                .expect("symbol in alphabet");
            self.state = next;
            out
        }

        fn reset(&mut self) {
            self.stats.resets += 1;
            self.state = self.machine.initial_state();
        }

        fn stats(&self) -> SulStats {
            self.stats
        }
    }

    #[test]
    fn membership_oracle_replays_queries_from_the_initial_state() {
        let machine = known::toggle();
        let mut oracle = SulMembershipOracle::new(MachineSul::new(machine.clone()));
        let word = InputWord::from_symbols(["press", "press", "press"]);
        let out1 = oracle.query(&word);
        let out2 = oracle.query(&word);
        assert_eq!(out1, out2, "each query starts from a reset state");
        assert_eq!(out1, machine.run(&word).unwrap());
        assert_eq!(oracle.queries_answered(), 2);
        assert_eq!(oracle.sul().stats().resets, 2);
        assert_eq!(oracle.sul().stats().symbols_sent, 6);
        assert_eq!(oracle.into_inner().stats.resets, 2);
    }

    #[test]
    fn learning_through_the_sul_bridge_recovers_the_machine() {
        use prognosis_learner::eq_oracles::RandomWordOracle;
        use prognosis_learner::{DTreeLearner, Learner};
        let target = known::counter(4);
        let mut learner = DTreeLearner::new(target.input_alphabet().clone());
        let mut membership = SulMembershipOracle::new(MachineSul::new(target.clone()));
        let mut equivalence = RandomWordOracle::new(5, 2000, 1, 12);
        let result = learner.learn(&mut membership, &mut equivalence);
        assert!(prognosis_automata::equivalence::machines_equivalent(
            &result.model,
            &target
        ));
    }
}
