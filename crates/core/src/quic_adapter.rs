//! The QUIC adapter: the protocol binding of §6.2.
//!
//! The adapter pairs a simulated QUIC server (any implementation profile)
//! with the instrumented QUIC-Tracker-style reference client.  Abstract
//! input symbols name a packet type plus the frames it must carry; the
//! reference client fills in connection IDs, packet numbers, ACK ranges,
//! stream offsets and flow-control limits that are valid in the current
//! connection state (the "never roll your own protocol logic" idea of §3.2).
//! Responses are abstracted back into the set notation of the appendix
//! models, e.g. `{HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}`, and the
//! concrete numeric fields of every exchanged packet are recorded in the
//! Oracle Table for synthesis.

use crate::net_transport::{WireRequest, WireSul};
use crate::oracle_table::{HasOracleTable, OracleTable};
use crate::session::{SessionSulFactory, SimTime, TimedSession, TimedSul};
use crate::sul::{Sul, SulFactory, SulStats};
use bytes::Bytes;
use prognosis_automata::alphabet::{Alphabet, Symbol};
use prognosis_quic_sim::client::{numeric_fields, ReferenceQuicClient};
use prognosis_quic_sim::profile::ImplementationProfile;
use prognosis_quic_sim::server::QuicServer;

/// The abstract QUIC input alphabet of §6.2.2: seven symbols covering
/// connection establishment, the handshake, data transmission and flow
/// control (out of the >30,000 symbols a naïve alphabet would have).
pub fn quic_alphabet() -> Alphabet {
    Alphabet::from_symbols([
        "INITIAL(?,?)[CRYPTO]",
        "INITIAL(?,?)[ACK,HANDSHAKE_DONE]",
        "HANDSHAKE(?,?)[ACK,CRYPTO]",
        "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]",
        "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]",
        "SHORT(?,?)[ACK,STREAM]",
        "SHORT(?,?)[ACK,HANDSHAKE_DONE]",
    ])
}

/// A reduced alphabet focused on the data-transfer path, used by the
/// extended-model synthesis experiment of Appendix B.1 (Issue 4): it keeps
/// learning fast while still exercising the `STREAM_DATA_BLOCKED` behaviour.
pub fn quic_data_alphabet() -> Alphabet {
    Alphabet::from_symbols([
        "INITIAL(?,?)[CRYPTO]",
        "HANDSHAKE(?,?)[ACK,CRYPTO]",
        "SHORT(?,?)[ACK,STREAM]",
        "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]",
    ])
}

/// Mints independent [`QuicSul`] instances (same profile, same seed), so
/// membership-query batches can fan out across parallel workers.
#[derive(Clone, Debug)]
pub struct QuicSulFactory {
    profile: ImplementationProfile,
    seed: u64,
    buggy_retry_client: bool,
}

impl QuicSulFactory {
    /// A factory for the given implementation profile and seed.
    pub fn new(profile: ImplementationProfile, seed: u64) -> Self {
        QuicSulFactory {
            profile,
            seed,
            buggy_retry_client: false,
        }
    }

    /// Enables the Issue-3 reference-client defect on every minted SUL.
    pub fn with_buggy_retry_client(mut self) -> Self {
        self.buggy_retry_client = true;
        self
    }
}

impl SulFactory for QuicSulFactory {
    type Sul = QuicSul;

    fn create(&self) -> QuicSul {
        let sul = QuicSul::new(self.profile.clone(), self.seed);
        if self.buggy_retry_client {
            sul.with_buggy_retry_client()
        } else {
            sul
        }
    }
}

impl SessionSulFactory for QuicSulFactory {
    type Session = TimedSession<QuicSul>;

    fn create_session(&self) -> Self::Session {
        TimedSession::new(self.create())
    }
}

/// The QUIC system under learning: one implementation profile + the adapter.
pub struct QuicSul {
    server: QuicServer,
    client: ReferenceQuicClient,
    /// Rendering of the profile + seed this SUL was built from, kept for
    /// the cross-run cache key (the pair fully determines query answers;
    /// the reference-client defect flag is folded in at key time because
    /// it can be toggled after construction).
    identity: String,
    /// Whether the profile answers every query deterministically.  A
    /// probabilistic profile (mvfst's 0.82 post-close RESET ratio) draws
    /// from RNG state that advances per reset, so its answers depend on
    /// query position — such SULs must opt out of the persistent cache.
    deterministic: bool,
    oracle: OracleTable,
    stats: SulStats,
    current_inputs: Vec<(String, Vec<i64>)>,
    current_outputs: Vec<(String, Vec<i64>)>,
    /// Response packets absorbed from the wire during the in-flight
    /// networked step (see [`WireSul`]); empty outside a wire step.
    wire_responses: Vec<(String, Vec<i64>)>,
}

impl QuicSul {
    /// Creates the SUL for the given implementation profile.
    pub fn new(profile: ImplementationProfile, seed: u64) -> Self {
        let identity = format!("quic:{profile:?}:seed={seed}");
        let deterministic = profile.reset_probability_after_close == 0.0
            || profile.reset_probability_after_close == 1.0;
        QuicSul {
            server: QuicServer::new(profile, seed),
            deterministic,
            client: ReferenceQuicClient::new(seed ^ 0xADA9, 40_000),
            identity,
            oracle: OracleTable::new(),
            stats: SulStats::default(),
            current_inputs: Vec::new(),
            current_outputs: Vec::new(),
            wire_responses: Vec::new(),
        }
    }

    /// Enables the Issue-3 reference-implementation defect (the post-Retry
    /// Initial is sent from a fresh ephemeral port).
    pub fn with_buggy_retry_client(mut self) -> Self {
        self.client.rebind_on_retry = true;
        self
    }

    /// The Oracle Table accumulated so far.
    pub fn oracle_table(&self) -> &OracleTable {
        &self.oracle
    }

    /// The server (for white-box assertions in tests and experiments).
    pub fn server(&self) -> &QuicServer {
        &self.server
    }

    fn flush_query(&mut self) {
        if self.current_inputs.is_empty() {
            return;
        }
        self.oracle.record_steps(
            std::mem::take(&mut self.current_inputs),
            std::mem::take(&mut self.current_outputs),
        );
    }

    /// One step on the virtual clock: the abstract output plus the instant
    /// the server's response flight is ready (`now` when nothing was sent).
    /// Both [`Sul::step`] and [`TimedSul::step_at`] funnel through here, so
    /// the two paths answer identically by construction.
    fn step_timed(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime) {
        self.stats.symbols_sent += 1;
        let (request_packet, wire) = match self.client.concretize(input.as_str()) {
            Ok(r) => r,
            Err(_) => {
                self.current_inputs.push((input.to_string(), vec![]));
                self.current_outputs.push(("{}".to_string(), vec![]));
                return (Symbol::new("{}"), now);
            }
        };
        self.stats.concrete_packets_sent += 1;
        let input_fields = numeric_fields(&request_packet);
        let (responses, ready_at) =
            self.server
                .handle_datagram_at(&wire, self.client.source_port(), now);
        // Abstract every response packet; keep (name, fields) pairs sorted by
        // name so the output symbol and the recorded fields stay aligned and
        // deterministic.
        let mut decoded: Vec<(String, Vec<i64>)> = responses
            .iter()
            .filter_map(|d| self.client.absorb(d))
            .map(|p| {
                self.stats.concrete_packets_received += 1;
                (ReferenceQuicClient::abstract_packet(&p), numeric_fields(&p))
            })
            .collect();
        decoded.sort();
        let names: Vec<&str> = decoded.iter().map(|(n, _)| n.as_str()).collect();
        let abstract_out = format!("{{{}}}", names.join(","));
        let output_fields: Vec<i64> = decoded
            .iter()
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        self.current_inputs.push((input.to_string(), input_fields));
        self.current_outputs
            .push((abstract_out.clone(), output_fields));
        (Symbol::new(abstract_out), ready_at)
    }
}

impl Sul for QuicSul {
    fn step(&mut self, input: &Symbol) -> Symbol {
        self.step_timed(input, SimTime::ZERO).0
    }

    fn reset(&mut self) {
        self.stats.resets += 1;
        self.wire_responses.clear();
        self.flush_query();
        self.server.reset();
        self.client.reset();
    }

    fn stats(&self) -> SulStats {
        self.stats
    }

    fn cache_key(&self) -> Option<String> {
        // Probabilistic profiles violate the cache-key contract (identical
        // keys ⇒ identical answers): their answers depend on RNG state
        // advanced per reset, so they learn cold every time.
        self.deterministic.then(|| {
            format!(
                "{}:rebind_on_retry={}",
                self.identity, self.client.rebind_on_retry
            )
        })
    }
}

impl TimedSul for QuicSul {
    fn step_at(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime) {
        self.step_timed(input, now)
    }

    fn reset_at(&mut self, now: SimTime) -> SimTime {
        self.reset();
        now
    }
}

impl WireSul for QuicSul {
    fn wire_request(&mut self, input: &Symbol) -> WireRequest {
        self.stats.symbols_sent += 1;
        self.wire_responses.clear();
        match self.client.concretize(input.as_str()) {
            Err(_) => {
                self.current_inputs.push((input.to_string(), vec![]));
                self.current_outputs.push(("{}".to_string(), vec![]));
                WireRequest::Immediate(Symbol::new("{}"))
            }
            Ok((request_packet, wire)) => {
                self.stats.concrete_packets_sent += 1;
                self.current_inputs
                    .push((input.to_string(), numeric_fields(&request_packet)));
                WireRequest::Datagram(wire)
            }
        }
    }

    fn wire_source_port(&self, bound: u16) -> u16 {
        if self.client.rebound() {
            // The Issue-3 defect on the netsim wire: the post-Retry
            // Initial leaves from a fresh port, distinct per rebind and
            // kept below the ephemeral range so it can never collide with
            // another session's bound endpoint.
            1_024 + self.client.source_port() % 16_384
        } else {
            bound
        }
    }

    fn handle_wire(
        &mut self,
        datagram: &Bytes,
        source_port: u16,
        now: SimTime,
    ) -> (Vec<Bytes>, SimTime) {
        self.server.handle_datagram_at(datagram, source_port, now)
    }

    fn absorb_wire(&mut self, datagram: &Bytes) {
        if let Some(packet) = self.client.absorb(datagram) {
            self.stats.concrete_packets_received += 1;
            self.wire_responses.push((
                ReferenceQuicClient::abstract_packet(&packet),
                numeric_fields(&packet),
            ));
        }
    }

    fn finish_step(&mut self) -> Symbol {
        // Mirror the in-process path: (name, fields) pairs sorted by name
        // so the output symbol and the recorded fields stay aligned.  An
        // empty flight — server silence or every datagram lost — abstracts
        // to `{}`, the adapter's timeout symbol.
        let mut decoded = std::mem::take(&mut self.wire_responses);
        decoded.sort();
        let names: Vec<&str> = decoded.iter().map(|(n, _)| n.as_str()).collect();
        let abstract_out = format!("{{{}}}", names.join(","));
        let output_fields: Vec<i64> = decoded
            .iter()
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        self.current_outputs
            .push((abstract_out.clone(), output_fields));
        Symbol::new(abstract_out)
    }
}

impl HasOracleTable for QuicSul {
    fn oracle_table(&self) -> &OracleTable {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosis_automata::word::InputWord;
    use prognosis_learner::oracle::MembershipOracle;

    #[test]
    fn cache_keys_distinguish_profiles_seeds_and_client_defects() {
        let a = QuicSul::new(ImplementationProfile::google(), 3);
        let same = QuicSul::new(ImplementationProfile::google(), 3);
        assert_eq!(a.cache_key(), same.cache_key());
        let other_seed = QuicSul::new(ImplementationProfile::google(), 4);
        assert_ne!(a.cache_key(), other_seed.cache_key());
        let other_profile = QuicSul::new(ImplementationProfile::quiche(), 3);
        assert_ne!(a.cache_key(), other_profile.cache_key());
        let buggy = QuicSul::new(ImplementationProfile::google(), 3).with_buggy_retry_client();
        assert_ne!(a.cache_key(), buggy.cache_key());
    }

    #[test]
    fn probabilistic_profiles_opt_out_of_the_persistent_cache() {
        // mvfst answers post-close packets with a stateless reset only
        // ≈82% of the time (Issue 2): its answers depend on RNG position,
        // so caching them across runs would poison warm starts.
        let mvfst = QuicSul::new(ImplementationProfile::mvfst(), 3);
        assert_eq!(mvfst.cache_key(), None);
        assert!(QuicSul::new(ImplementationProfile::google(), 3)
            .cache_key()
            .is_some());
    }

    #[test]
    fn alphabets_match_the_paper() {
        assert_eq!(quic_alphabet().len(), 7);
        assert_eq!(quic_data_alphabet().len(), 4);
        assert!(quic_alphabet().contains(&Symbol::new("SHORT(?,?)[ACK,HANDSHAKE_DONE]")));
    }

    #[test]
    fn google_handshake_through_the_adapter() {
        let mut sul = QuicSul::new(ImplementationProfile::google(), 1);
        sul.reset();
        let out1 = sul.step(&Symbol::new("INITIAL(?,?)[CRYPTO]"));
        assert!(out1.as_str().contains("INITIAL(?,?)[ACK,CRYPTO]"), "{out1}");
        assert!(out1.as_str().contains("SHORT(?,?)[STREAM]"), "{out1}");
        let out2 = sul.step(&Symbol::new("HANDSHAKE(?,?)[ACK,CRYPTO]"));
        assert!(out2.as_str().contains("HANDSHAKE_DONE"), "{out2}");
        let out3 = sul.step(&Symbol::new("SHORT(?,?)[ACK,STREAM]"));
        assert!(out3.as_str().contains("STREAM"), "{out3}");
    }

    #[test]
    fn packets_before_connection_establishment_yield_empty_outputs() {
        let mut sul = QuicSul::new(ImplementationProfile::quiche(), 1);
        sul.reset();
        for symbol in [
            "HANDSHAKE(?,?)[ACK,CRYPTO]",
            "SHORT(?,?)[ACK,STREAM]",
            "SHORT(?,?)[ACK,HANDSHAKE_DONE]",
        ] {
            assert_eq!(sul.step(&Symbol::new(symbol)).as_str(), "{}");
        }
    }

    #[test]
    fn queries_are_deterministic_across_resets() {
        let mut sul = QuicSul::new(ImplementationProfile::google(), 9);
        let word = InputWord::from_symbols([
            "INITIAL(?,?)[CRYPTO]",
            "HANDSHAKE(?,?)[ACK,CRYPTO]",
            "SHORT(?,?)[ACK,STREAM]",
            "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]",
        ]);
        let mut oracle = crate::sul::SulMembershipOracle::new(&mut sul);
        let a = oracle.query(&word);
        let b = oracle.query(&word);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_table_captures_the_stream_data_blocked_field() {
        let mut sul = QuicSul::new(ImplementationProfile::google(), 1);
        sul.reset();
        sul.step(&Symbol::new("INITIAL(?,?)[CRYPTO]"));
        sul.step(&Symbol::new("HANDSHAKE(?,?)[ACK,CRYPTO]"));
        // Exhaust the 200-byte credit so the server reports itself blocked.
        for _ in 0..4 {
            sul.step(&Symbol::new("SHORT(?,?)[ACK,STREAM]"));
        }
        sul.reset();
        let table = sul.oracle_table();
        assert_eq!(table.len(), 1);
        let entry = table.entries().next().unwrap();
        let blocked_step = entry
            .abstract_trace
            .output
            .iter()
            .position(|o| o.as_str().contains("STREAM_DATA_BLOCKED"))
            .expect("the google profile must block within four requests");
        // The Issue-4 constant 0 is visible in the recorded concrete fields.
        assert!(entry.steps[blocked_step].output_fields.contains(&0));
    }

    #[test]
    fn violation_closes_and_stays_closed() {
        let mut sul = QuicSul::new(ImplementationProfile::quiche(), 1);
        sul.reset();
        sul.step(&Symbol::new("INITIAL(?,?)[CRYPTO]"));
        let close = sul.step(&Symbol::new("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"));
        assert!(close.as_str().contains("CONNECTION_CLOSE"), "{close}");
        let after = sul.step(&Symbol::new("SHORT(?,?)[ACK,STREAM]"));
        assert!(
            after.as_str().contains("CONNECTION_CLOSE") || after.as_str() == "{}",
            "{after}"
        );
    }
}
