//! End-to-end orchestration: learn a Mealy model of a SUL.
//!
//! The pipeline wires the pieces together the way the paper's experiments
//! do: the SUL (implementation + adapter) is exposed as a membership oracle
//! behind a prefix-trie cache, a discrimination-tree learner builds the
//! hypothesis, and a random-word equivalence oracle plays the role of the
//! heuristic equivalence oracle of §4.1.  Queries flow through the stack in
//! batches; with [`LearnConfig::workers`] > 1 the batches fan out across
//! independent SUL instances ([`crate::parallel::ParallelSulOracle`])
//! minted by a [`SulFactory`].  Results are deterministic and identical to
//! the sequential path for any worker count: the equivalence oracle's word
//! stream depends only on the seed, and each SUL instance answers each word
//! the same way (§3.2 property 3).

use crate::engine::EnginePool;
use crate::oracle_table::{HasOracleTable, OracleTable};
use crate::parallel::{EngineShutdown, ParallelSulOracle};
use crate::session::{EngineStats, QueryPhase, SessionSul, SessionSulFactory};
use crate::sul::{Sul, SulMembershipOracle, SulStats};
use prognosis_automata::alphabet::Alphabet;
use prognosis_automata::mealy::MealyMachine;
use prognosis_automata::word::InputWord;
use prognosis_events::EventSink;
use prognosis_learner::cache::StoreKey;
use prognosis_learner::eq_oracles::{RandomWordOracle, DEFAULT_EQ_BATCH_SIZE};
use prognosis_learner::journal::{JournalStore, RetainPolicy};
use prognosis_learner::oracle::{CacheOracle, MembershipOracle};
use prognosis_learner::stats::LearningStats;
use prognosis_learner::trie::PrefixTrie;
use prognosis_learner::{DTreeLearner, Learner};
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

pub use prognosis_learner::dtree::{SiftStrategy, SpeculationStats};

/// The session-SUL type a [`SessionSulFactory`] ultimately hands back —
/// what [`ParallelLearnOutcome::suls`] contains.
pub type FactorySul<F> = <<F as SessionSulFactory>::Session as SessionSul>::Sul;

/// Errors of the parallel learning engine.  A panicking worker SUL (or a
/// panic anywhere in the learning loop) surfaces as a value instead of
/// poisoning the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LearnError {
    /// A session worker thread panicked while answering queries.
    WorkerPanicked {
        /// Index of the worker that died.
        worker: usize,
        /// The panic payload, rendered.
        message: String,
    },
    /// The learning loop itself panicked (learner invariant violation,
    /// dispatcher failure, ...).
    EnginePanicked {
        /// The panic payload, rendered.
        message: String,
    },
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::WorkerPanicked { worker, message } => {
                write!(f, "session worker {worker} panicked: {message}")
            }
            LearnError::EnginePanicked { message } => {
                write!(f, "learning engine panicked: {message}")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Configuration of a learning run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// RNG seed for the equivalence oracle.
    pub seed: u64,
    /// Number of random test words per equivalence query.
    pub random_tests: usize,
    /// Minimum random test-word length.
    pub min_word_len: usize,
    /// Maximum random test-word length.
    pub max_word_len: usize,
    /// Number of parallel SUL workers ([`learn_model_parallel`] only; the
    /// borrowed-SUL path of [`learn_model`] is inherently single-instance).
    pub workers: usize,
    /// Concurrent query sessions each worker multiplexes on its virtual
    /// clock ([`learn_model_parallel`] only).  1 = the blocking model (one
    /// query at a time per worker); raise it to overlap simulated round
    /// trips — under RTT-dominated workloads throughput scales roughly
    /// linearly up to the membership batch size.  Answers and all query
    /// statistics are identical for every value.
    pub max_inflight: usize,
    /// Number of equivalence-test words dispatched per membership batch.
    pub eq_batch_size: usize,
    /// Where to persist the observation cache across runs (`None` disables
    /// persistence).  The file is keyed by the SUL's
    /// [`Sul::cache_key`] and the alphabet, so one path can safely be
    /// shared between different SULs and alphabets — mismatched entries are
    /// replaced, matching entries are merged.
    pub cache_path: Option<String>,
    /// Whether to pre-load the cache file before learning (warm start).
    /// With a fully matching cache a warm run issues zero fresh SUL
    /// symbols yet learns a bit-identical model, because the cache answers
    /// queries exactly as the (deterministic) SUL would.  When `false` the
    /// run learns cold but still persists its observations afterwards.
    pub warm_start: bool,
    /// How the learner drives sift queries: [`SiftStrategy::Wavefront`]
    /// (default) advances every pending word one discrimination-tree level
    /// per membership batch, so the session engine sees batches of
    /// `O(states × |Σ|)` during hypothesis construction;
    /// [`SiftStrategy::Serial`] is the one-query-at-a-time reference path.
    /// Results are bit-identical either way; the wavefront reports
    /// `membership_queries` ≤ serial.
    pub sift: SiftStrategy,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            seed: 7,
            random_tests: 2_000,
            min_word_len: 2,
            max_word_len: 10,
            workers: 1,
            max_inflight: 1,
            eq_batch_size: DEFAULT_EQ_BATCH_SIZE,
            cache_path: None,
            warm_start: true,
            sift: SiftStrategy::default(),
        }
    }
}

impl LearnConfig {
    /// Returns the configuration with the given worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "learning needs at least one worker");
        self.workers = workers;
        self
    }

    /// Returns the configuration with the given per-worker in-flight
    /// session count.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        assert!(max_inflight >= 1, "each worker needs at least one session");
        self.max_inflight = max_inflight;
        self
    }

    /// Returns the configuration persisting (and, unless disabled via
    /// [`LearnConfig::warm_start`], consuming) the observation cache at
    /// `path`.
    pub fn with_cache_path(mut self, path: impl Into<String>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Returns the configuration with the given sift strategy.
    pub fn with_sift(mut self, sift: SiftStrategy) -> Self {
        self.sift = sift;
        self
    }
}

/// The result of a learning run.
#[derive(Clone, Debug)]
pub struct LearnedModel {
    /// The learned Mealy machine.
    pub model: MealyMachine,
    /// Learner-side statistics (membership/equivalence queries, model size).
    pub stats: LearningStats,
    /// Cache statistics: distinct queries the SUL actually answered in
    /// *this* run (cache misses — every forwarded word is distinct, since
    /// an answered word is cached and never forwarded again).  A fully
    /// warm-started run reports 0.
    pub distinct_queries: usize,
    /// Speculative-equivalence accounting (all zero unless the run used
    /// [`SiftStrategy::Dataflow`]).
    pub speculation: SpeculationStats,
}

/// The result of a parallel learning run, including the session SULs
/// (whose Oracle Tables feed the synthesis stage).
pub struct ParallelLearnOutcome<S> {
    /// The learned model and query statistics.
    pub learned: LearnedModel,
    /// The session SULs, reset so their adapter-side state (Oracle Tables)
    /// is fully flushed.  Worker-major: worker `i`'s `max_inflight`
    /// sessions occupy indices `i·max_inflight ..`; with `max_inflight` = 1
    /// this is exactly one SUL per worker.
    pub suls: Vec<S>,
    /// Aggregated SUL interaction counters across all sessions.
    pub sul_stats: SulStats,
    /// Session-engine statistics: virtual makespan, scheduler occupancy,
    /// clock advances.  `engine.virtual_elapsed()` is the denominator of
    /// virtual-time throughput in the benchmarks.
    pub engine: EngineStats,
}

impl<S: HasOracleTable> ParallelLearnOutcome<S> {
    /// The worker SULs' Oracle Tables combined in worker order — the
    /// default synthesis input for parallel learning runs, so the
    /// synthesis stage sees every concrete trace any worker collected.
    pub fn merged_oracle_table(&self) -> OracleTable {
        let mut merged = OracleTable::new();
        for sul in &self.suls {
            merged.merge_from(sul.oracle_table().clone());
        }
        merged
    }
}

fn equivalence_oracle(config: &LearnConfig) -> RandomWordOracle {
    RandomWordOracle::new(
        config.seed,
        config.random_tests,
        config.min_word_len,
        config.max_word_len,
    )
    .with_batch_size(config.eq_batch_size)
}

/// Loads the persisted observation trie for this (SUL, alphabet) pair
/// from the journaled store.  Returns an empty trie when persistence is
/// off, warm start is disabled, the SUL is uncacheable, or the store has
/// no entry for the key.
fn warm_trie(config: &LearnConfig, cache_key: Option<&str>, alphabet: &Alphabet) -> PrefixTrie {
    match (&config.cache_path, cache_key) {
        (Some(path), Some(key)) if config.warm_start => {
            let key = StoreKey::new(key, "", alphabet);
            JournalStore::load_matching(path, &key).unwrap_or_default()
        }
        _ => PrefixTrie::new(),
    }
}

/// Persists the run's observation trie into the journaled store: only the
/// paths the file does not already cover are appended (a fully warm run
/// writes zero bytes), and a differently-keyed file is replaced — a cache
/// file follows its run's key.  Persistence failures are reported but
/// never fail the learning run itself.
fn persist_trie(
    config: &LearnConfig,
    cache_key: Option<&str>,
    alphabet: &Alphabet,
    trie: &PrefixTrie,
) {
    if let (Some(path), Some(key)) = (&config.cache_path, cache_key) {
        let key = StoreKey::new(key, "", alphabet);
        if let Err(e) = JournalStore::save_merged_at(path, &key, trie, RetainPolicy::OnlyThisKey) {
            eprintln!("warning: failed to persist observation cache to {path}: {e}");
        }
    }
}

fn run_learner<M: MembershipOracle>(
    alphabet: &Alphabet,
    config: &LearnConfig,
    mut membership: CacheOracle<M>,
    prime: &[InputWord],
) -> (LearnedModel, M, PrefixTrie, u64) {
    // Cross-version cache priming: replay the seed words (typically the
    // terminal words of a sibling implementation version's cache entry) as
    // one batch before the learner starts.  The answers come from *this*
    // SUL, so soundness is untouched; the learner's subsequent queries hit
    // the primed trie, and the batch saturates the session engine.  Because
    // the cache answers exactly as the deterministic SUL would, priming
    // never changes the learned model.
    let prime_misses = if prime.is_empty() {
        0
    } else {
        membership.note_phase(QueryPhase::Construction);
        let _ = membership.query_batch(prime);
        membership.misses()
    };
    let mut learner = DTreeLearner::with_strategy(alphabet.clone(), config.sift);
    let mut equivalence = equivalence_oracle(config);
    let result = learner.learn(&mut membership, &mut equivalence);
    let mut stats = result.stats;
    stats.fresh_symbols = membership.fresh_symbols();
    stats.equivalence_tests = equivalence.tests_executed();
    let learned = LearnedModel {
        model: result.model,
        stats,
        distinct_queries: membership.misses() as usize,
        speculation: learner.speculation(),
    };
    let (inner, trie) = membership.into_parts();
    (learned, inner, trie, prime_misses)
}

/// Learns a Mealy model of `sul` over `alphabet`, sequentially.
///
/// The SUL is borrowed mutably so the caller keeps access to its Oracle
/// Table (and any implementation-specific state) afterwards.
///
/// With [`LearnConfig::cache_path`] set and a SUL that reports a
/// [`Sul::cache_key`], observations persist across runs: a repeat run
/// answers every already-seen membership query from disk
/// (`stats.fresh_symbols == 0` when the cache covers the whole run) while
/// learning a bit-identical model.
pub fn learn_model<S: Sul>(sul: &mut S, alphabet: &Alphabet, config: LearnConfig) -> LearnedModel {
    let cache_key = sul.cache_key();
    let warm = warm_trie(&config, cache_key.as_deref(), alphabet);
    let membership = CacheOracle::with_trie(SulMembershipOracle::new(sul), warm);
    let (learned, _oracle, trie, _) = run_learner(alphabet, &config, membership, &[]);
    persist_trie(&config, cache_key.as_deref(), alphabet, &trie);
    learned
}

/// Learns a Mealy model over `alphabet` with `config.workers` parallel
/// session workers, each multiplexing `config.max_inflight` concurrent
/// query sessions minted by `factory` on a virtual clock.
///
/// With a fixed seed the learned model — and every query-cost statistic
/// (`fresh_symbols`, `equivalence_tests`, `membership_queries`) — is
/// identical to [`learn_model`]'s on a SUL from the same factory, for any
/// `(workers, max_inflight)`: membership answers are pure and equivalence
/// oracles resolve the first mismatch in suite order, so scheduling moves
/// only virtual time.  The observation cache (see [`learn_model`]) is
/// likewise configuration-independent.
///
/// A panicking worker (or learner) surfaces as a [`LearnError`] instead of
/// poisoning the calling thread.
pub fn learn_model_parallel<F>(
    factory: &F,
    alphabet: &Alphabet,
    config: LearnConfig,
) -> Result<ParallelLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let parallel =
        ParallelSulOracle::spawn_with(factory, config.workers.max(1), config.max_inflight.max(1));
    learn_on_oracle(parallel, factory, alphabet, &config)
}

/// [`learn_model_parallel`] with a structured event sink attached: wire,
/// session, phase and speculation events flow into `sink` as the run
/// executes (see [`prognosis_events`]).  With `diagnostics` false the sink
/// receives only the deterministic stream, which is byte-identical across
/// `(workers, max_inflight)` configurations for a fixed scenario.
pub fn learn_model_parallel_with_events<F>(
    factory: &F,
    alphabet: &Alphabet,
    config: LearnConfig,
    sink: Arc<dyn EventSink>,
    diagnostics: bool,
) -> Result<ParallelLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let parallel = ParallelSulOracle::spawn_with_events(
        factory,
        config.workers.max(1),
        config.max_inflight.max(1),
        Some(sink),
        diagnostics,
    );
    learn_on_oracle(parallel, factory, alphabet, &config)
}

/// [`learn_model_parallel`] over a *shared* [`EnginePool`]: the run's
/// `config.workers` worker loops are leased from `pool` (blocking until
/// that many slots are free) instead of spawning private threads, so
/// several concurrent learning runs — a campaign's matrix cells — share
/// one set of engine threads.  Results are identical to
/// [`learn_model_parallel`] with the same configuration.
pub fn learn_model_parallel_on<F>(
    pool: &EnginePool,
    factory: &F,
    alphabet: &Alphabet,
    config: LearnConfig,
) -> Result<ParallelLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let parallel = ParallelSulOracle::spawn_on_pool(
        pool,
        factory,
        config.workers.max(1),
        config.max_inflight.max(1),
    );
    learn_on_oracle(parallel, factory, alphabet, &config)
}

fn learn_on_oracle<F>(
    parallel: ParallelSulOracle<F::Session>,
    factory: &F,
    alphabet: &Alphabet,
    config: &LearnConfig,
) -> Result<ParallelLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    // A throwaway session reports the cache key; every session from the
    // same factory shares it (the determinism property of §3.2).
    let cache_key = factory.create_session().cache_key();
    let warm = warm_trie(config, cache_key.as_deref(), alphabet);
    let membership = CacheOracle::with_trie(parallel, warm);
    let (learned, parallel, trie, _) = match std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_learner(alphabet, config, membership, &[])
    })) {
        Ok(parts) => parts,
        Err(payload) => return Err(learn_error_from_panic(payload)),
    };
    persist_trie(config, cache_key.as_deref(), alphabet, &trie);
    let sul_stats = parallel.stats();
    let EngineShutdown { suls, engine } = parallel.shutdown()?;
    Ok(ParallelLearnOutcome {
        learned,
        suls,
        sul_stats,
        engine,
    })
}

/// The result of a seeded learning run ([`learn_model_parallel_seeded`]):
/// the regular parallel outcome plus the final observation trie and the
/// cache-priming accounting the campaign's versioned store needs.
pub struct SeededLearnOutcome<S> {
    /// The regular parallel learning outcome.
    pub outcome: ParallelLearnOutcome<S>,
    /// The full observation trie at the end of the run (warm seed ∪ primed
    /// answers ∪ the learner's own queries) — what the caller persists into
    /// its shared store.
    pub trie: PrefixTrie,
    /// Number of seed words replayed before learning started.
    pub primed_words: u64,
    /// Distinct queries the SUL answered *during priming* (0 when the warm
    /// trie already covered every seed word).
    pub prime_misses: u64,
    /// Distinct queries the SUL answered *after* priming — the learner
    /// queries the primed cache did not cover.  `1 − learn_misses /
    /// distinct_queries` is the cross-version cache hit rate.
    pub learn_misses: u64,
}

/// Campaign-shape learning: runs on a shared [`EnginePool`] with a
/// caller-supplied warm trie and an explicit set of *priming* words, and
/// hands the final trie back instead of persisting it — the caller (the
/// campaign runner's versioned shared cache) owns persistence.
///
/// `warm` must answer queries exactly as this factory's SULs would (same
/// cache key — the usual warm-start soundness rule).  `prime` may be any
/// word list; the words are replayed against this run's own SULs as one
/// batch before the learner starts, so a *sibling version's* query set can
/// seed this version's cache soundly: shared behaviour becomes warm
/// entries, divergent behaviour shows up as differing answers the caller
/// diffs into regression findings.
pub fn learn_model_parallel_seeded<F>(
    pool: &EnginePool,
    factory: &F,
    alphabet: &Alphabet,
    config: &LearnConfig,
    warm: PrefixTrie,
    prime: &[InputWord],
) -> Result<SeededLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    learn_model_parallel_seeded_with_events(pool, factory, alphabet, config, warm, prime, None)
}

/// [`learn_model_parallel_seeded`] with an optional structured event sink:
/// the campaign runner threads its shared sink (diagnostics enabled)
/// through here so every cell's engine traffic lands in one log.
#[allow(clippy::too_many_arguments)]
pub fn learn_model_parallel_seeded_with_events<F>(
    pool: &EnginePool,
    factory: &F,
    alphabet: &Alphabet,
    config: &LearnConfig,
    warm: PrefixTrie,
    prime: &[InputWord],
    sink: Option<Arc<dyn EventSink>>,
) -> Result<SeededLearnOutcome<FactorySul<F>>, LearnError>
where
    F: SessionSulFactory,
    F::Session: Send + 'static,
{
    let parallel = ParallelSulOracle::spawn_on_pool_with_events(
        pool,
        factory,
        config.workers.max(1),
        config.max_inflight.max(1),
        sink,
        true,
    );
    let membership = CacheOracle::with_trie(parallel, warm);
    let (learned, parallel, trie, prime_misses) =
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_learner(alphabet, config, membership, prime)
        })) {
            Ok(parts) => parts,
            Err(payload) => return Err(learn_error_from_panic(payload)),
        };
    let sul_stats = parallel.stats();
    let EngineShutdown { suls, engine } = parallel.shutdown()?;
    let learn_misses = (learned.distinct_queries as u64).saturating_sub(prime_misses);
    Ok(SeededLearnOutcome {
        outcome: ParallelLearnOutcome {
            learned,
            suls,
            sul_stats,
            engine,
        },
        trie,
        primed_words: prime.len() as u64,
        prime_misses,
        learn_misses,
    })
}

/// Renders a panic payload for error reporting: string payloads verbatim,
/// relayed [`LearnError`]s via their `Display`, anything else generically.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<LearnError>() {
        e.to_string()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

fn learn_error_from_panic(payload: Box<dyn std::any::Any + Send>) -> LearnError {
    match payload.downcast::<LearnError>() {
        Ok(error) => *error,
        Err(payload) => LearnError::EnginePanicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic_adapter::{quic_data_alphabet, QuicSul, QuicSulFactory};
    use crate::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
    use prognosis_automata::equivalence::machines_equivalent;
    use prognosis_quic_sim::profile::ImplementationProfile;

    #[test]
    fn learns_a_tcp_model_with_a_handful_of_states() {
        let mut sul = TcpSul::with_defaults();
        let config = LearnConfig {
            random_tests: 300,
            max_word_len: 8,
            ..LearnConfig::default()
        };
        let learned = learn_model(&mut sul, &tcp_alphabet(), config);
        // The paper's TCP model has 6 states and 42 transitions; our
        // userspace stack is in the same range (and total over 7 symbols).
        assert!(
            (4..=8).contains(&learned.model.num_states()),
            "unexpected TCP model size: {} states",
            learned.model.num_states()
        );
        assert_eq!(
            learned.model.num_transitions(),
            learned.model.num_states() * 7
        );
        assert!(learned.stats.membership_queries > 0);
        assert!(learned.distinct_queries > 0);
        // The Oracle Table filled up as a side effect of learning.
        sul.reset();
        assert!(!sul.oracle_table().is_empty());
    }

    #[test]
    fn learns_a_quic_model_on_the_reduced_alphabet() {
        let mut sul = QuicSul::new(ImplementationProfile::google(), 3);
        let config = LearnConfig {
            random_tests: 200,
            max_word_len: 8,
            ..LearnConfig::default()
        };
        let learned = learn_model(&mut sul, &quic_data_alphabet(), config);
        assert!(
            learned.model.num_states() >= 3,
            "google data-path model has several states"
        );
        // The initial state ignores everything except INITIAL[CRYPTO].
        let initial_outputs: Vec<String> = quic_data_alphabet()
            .iter()
            .map(|s| {
                learned
                    .model
                    .output(learned.model.initial_state(), s)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(
            initial_outputs
                .iter()
                .filter(|o| o.as_str() == "{}")
                .count()
                >= 2
        );
    }

    #[test]
    fn parallel_tcp_learning_matches_sequential() {
        let config = LearnConfig {
            random_tests: 300,
            max_word_len: 8,
            ..LearnConfig::default()
        };
        let mut sul = TcpSul::with_defaults();
        let sequential = learn_model(&mut sul, &tcp_alphabet(), config.clone());
        let outcome = learn_model_parallel(
            &TcpSulFactory::default(),
            &tcp_alphabet(),
            config.with_workers(4),
        )
        .expect("parallel learning succeeds");
        assert!(
            machines_equivalent(&sequential.model, &outcome.learned.model),
            "4-worker parallel learning must produce a model equivalent to sequential"
        );
        assert_eq!(
            sequential.model.num_states(),
            outcome.learned.model.num_states()
        );
        assert_eq!(
            sequential.stats.membership_queries, outcome.learned.stats.membership_queries,
            "the learner must see the identical query stream in both modes"
        );
        assert_eq!(outcome.suls.len(), 4);
        assert!(outcome.sul_stats.symbols_sent > 0);
        // The workers' Oracle Tables merge into one synthesis input.
        let merged = outcome.merged_oracle_table();
        assert!(!merged.is_empty());
        assert_eq!(
            merged.len(),
            outcome
                .suls
                .iter()
                .map(|s| s.oracle_table().len())
                .sum::<usize>()
        );
    }

    #[test]
    fn parallel_quic_learning_matches_sequential() {
        let config = LearnConfig {
            random_tests: 200,
            max_word_len: 8,
            ..LearnConfig::default()
        };
        let mut sul = QuicSul::new(ImplementationProfile::google(), 3);
        let sequential = learn_model(&mut sul, &quic_data_alphabet(), config.clone());
        let outcome = learn_model_parallel(
            &QuicSulFactory::new(ImplementationProfile::google(), 3),
            &quic_data_alphabet(),
            config.with_workers(4),
        )
        .expect("parallel learning succeeds");
        assert!(
            machines_equivalent(&sequential.model, &outcome.learned.model),
            "4-worker parallel QUIC learning must match sequential"
        );
    }

    #[test]
    fn worker_count_does_not_change_the_model() {
        let config = LearnConfig {
            random_tests: 200,
            max_word_len: 6,
            ..LearnConfig::default()
        };
        let factory = TcpSulFactory::default();
        let baseline =
            learn_model_parallel(&factory, &tcp_alphabet(), config.clone().with_workers(1))
                .expect("parallel learning succeeds");
        for (workers, inflight) in [(2, 1), (3, 1), (1, 4), (2, 8)] {
            let outcome = learn_model_parallel(
                &factory,
                &tcp_alphabet(),
                config
                    .clone()
                    .with_workers(workers)
                    .with_max_inflight(inflight),
            )
            .expect("parallel learning succeeds");
            assert!(
                machines_equivalent(&baseline.learned.model, &outcome.learned.model),
                "(workers, max_inflight) = ({workers}, {inflight}) changed the learned model"
            );
            assert_eq!(
                baseline.learned.stats.fresh_symbols, outcome.learned.stats.fresh_symbols,
                "(workers, max_inflight) = ({workers}, {inflight}) changed the fresh-symbol cost"
            );
            assert_eq!(outcome.suls.len(), workers * inflight);
        }
    }

    #[test]
    fn dataflow_learning_over_the_session_engine_matches_serial() {
        let config = LearnConfig {
            random_tests: 300,
            max_word_len: 8,
            ..LearnConfig::default()
        };
        let factory = TcpSulFactory::default();
        let serial = learn_model_parallel(
            &factory,
            &tcp_alphabet(),
            config.clone().with_sift(SiftStrategy::Serial),
        )
        .expect("serial learning succeeds");
        for (workers, inflight) in [(1, 1), (1, 8), (2, 8)] {
            let flow = learn_model_parallel(
                &factory,
                &tcp_alphabet(),
                config
                    .clone()
                    .with_sift(SiftStrategy::Dataflow)
                    .with_workers(workers)
                    .with_max_inflight(inflight),
            )
            .expect("dataflow learning succeeds");
            assert_eq!(
                serial.learned.model, flow.learned.model,
                "({workers}, {inflight}): dataflow model must be bit-identical to serial"
            );
            assert_eq!(
                serial.learned.stats.fresh_symbols, flow.learned.stats.fresh_symbols,
                "({workers}, {inflight}): speculation must not change the fresh-symbol cost"
            );
            assert_eq!(
                serial.learned.stats.equivalence_tests, flow.learned.stats.equivalence_tests,
                "({workers}, {inflight}): tests-executed must match the blocking count"
            );
            assert!(
                flow.learned.stats.membership_queries <= serial.learned.stats.membership_queries,
                "({workers}, {inflight}): dataflow must not ask more membership queries"
            );
            let spec = flow.learned.speculation;
            assert!(spec.suites >= 1, "dataflow streams presampled suites");
            assert_eq!(
                spec.words_used + spec.words_discarded + spec.words_unsent,
                spec.words_submitted
            );
        }
    }

    #[test]
    fn panicking_suls_surface_as_learn_errors() {
        use crate::session::BlockingSessionFactory;
        use crate::sul::SulFactory;
        use prognosis_automata::alphabet::Symbol;

        struct ExplodingSul;
        impl Sul for ExplodingSul {
            fn step(&mut self, _input: &Symbol) -> Symbol {
                panic!("the wire caught fire");
            }
            fn reset(&mut self) {}
        }
        struct ExplodingFactory;
        impl SulFactory for ExplodingFactory {
            type Sul = ExplodingSul;
            fn create(&self) -> ExplodingSul {
                ExplodingSul
            }
        }

        let config = LearnConfig {
            random_tests: 10,
            max_word_len: 4,
            ..LearnConfig::default()
        };
        let error = match learn_model_parallel(
            &BlockingSessionFactory(ExplodingFactory),
            &tcp_alphabet(),
            config.with_workers(2),
        ) {
            Err(error) => error,
            Ok(_) => panic!("a panicking SUL must produce an error, not a poisoned pipeline"),
        };
        match &error {
            LearnError::WorkerPanicked { message, .. } => {
                assert!(message.contains("the wire caught fire"), "{message}");
            }
            other => panic!("unexpected error variant: {other}"),
        }
    }
}
