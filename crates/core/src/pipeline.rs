//! End-to-end orchestration: learn a Mealy model of a SUL.
//!
//! The pipeline wires the pieces together the way the paper's experiments
//! do: the SUL (implementation + adapter) is exposed as a membership oracle
//! behind a cache, a discrimination-tree learner builds the hypothesis, and
//! a random-word equivalence oracle plays the role of the heuristic
//! equivalence oracle of §4.1.  The result carries the learned model, the
//! query statistics the paper reports (membership queries, model size), and
//! leaves the adapter's Oracle Table in place for the synthesis stage.

use crate::sul::{Sul, SulMembershipOracle};
use prognosis_automata::alphabet::Alphabet;
use prognosis_automata::mealy::MealyMachine;
use prognosis_learner::eq_oracles::RandomWordOracle;
use prognosis_learner::oracle::CacheOracle;
use prognosis_learner::stats::LearningStats;
use prognosis_learner::{DTreeLearner, Learner};
use serde::{Deserialize, Serialize};

/// Configuration of a learning run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// RNG seed for the equivalence oracle.
    pub seed: u64,
    /// Number of random test words per equivalence query.
    pub random_tests: usize,
    /// Minimum random test-word length.
    pub min_word_len: usize,
    /// Maximum random test-word length.
    pub max_word_len: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig { seed: 7, random_tests: 2_000, min_word_len: 2, max_word_len: 10 }
    }
}

/// The result of a learning run.
#[derive(Clone, Debug)]
pub struct LearnedModel {
    /// The learned Mealy machine.
    pub model: MealyMachine,
    /// Learner-side statistics (membership/equivalence queries, model size).
    pub stats: LearningStats,
    /// Cache statistics: distinct queries answered by the SUL.
    pub distinct_queries: usize,
}

/// Learns a Mealy model of `sul` over `alphabet`.
///
/// The SUL is borrowed mutably so the caller keeps access to its Oracle
/// Table (and any implementation-specific state) afterwards.
pub fn learn_model<S: Sul>(sul: &mut S, alphabet: &Alphabet, config: LearnConfig) -> LearnedModel {
    let mut learner = DTreeLearner::new(alphabet.clone());
    let mut membership = CacheOracle::new(SulMembershipOracle::new(sul));
    let mut equivalence = RandomWordOracle::new(
        config.seed,
        config.random_tests,
        config.min_word_len,
        config.max_word_len,
    );
    let result = learner.learn(&mut membership, &mut equivalence);
    LearnedModel {
        model: result.model,
        stats: result.stats,
        distinct_queries: membership.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic_adapter::{quic_data_alphabet, QuicSul};
    use crate::tcp_adapter::{tcp_alphabet, TcpSul};
    use prognosis_quic_sim::profile::ImplementationProfile;

    #[test]
    fn learns_a_tcp_model_with_a_handful_of_states() {
        let mut sul = TcpSul::with_defaults();
        let config = LearnConfig { random_tests: 300, max_word_len: 8, ..LearnConfig::default() };
        let learned = learn_model(&mut sul, &tcp_alphabet(), config);
        // The paper's TCP model has 6 states and 42 transitions; our
        // userspace stack is in the same range (and total over 7 symbols).
        assert!(
            (4..=8).contains(&learned.model.num_states()),
            "unexpected TCP model size: {} states",
            learned.model.num_states()
        );
        assert_eq!(
            learned.model.num_transitions(),
            learned.model.num_states() * 7
        );
        assert!(learned.stats.membership_queries > 0);
        assert!(learned.distinct_queries > 0);
        // The Oracle Table filled up as a side effect of learning.
        sul.reset();
        assert!(!sul.oracle_table().is_empty());
    }

    #[test]
    fn learns_a_quic_model_on_the_reduced_alphabet() {
        let mut sul = QuicSul::new(ImplementationProfile::google(), 3);
        let config = LearnConfig { random_tests: 200, max_word_len: 8, ..LearnConfig::default() };
        let learned = learn_model(&mut sul, &quic_data_alphabet(), config);
        assert!(learned.model.num_states() >= 3, "google data-path model has several states");
        // The initial state ignores everything except INITIAL[CRYPTO].
        let initial_outputs: Vec<String> = quic_data_alphabet()
            .iter()
            .map(|s| learned.model.output(learned.model.initial_state(), s).unwrap().to_string())
            .collect();
        assert!(initial_outputs.iter().filter(|o| o.as_str() == "{}").count() >= 2);
    }
}
