//! The event-driven session layer: non-blocking SULs on virtual time.
//!
//! Prognosis's learning wall-clock is dominated by membership-query round
//! trips (§4.1), and a blocking `Sul::step` pins a whole worker thread to a
//! single in-flight query for the duration of every round trip.  This
//! module replaces that execution model with *sessions*: a [`SessionSul`]
//! is a query-in-progress state machine that is **started** and then
//! **polled** against a virtual clock — it either has an output symbol
//! [`SessionPoll::Ready`] or names the deadline at which it next wants
//! attention ([`SessionPoll::Pending`]).  Nothing ever sleeps; when every
//! in-flight session is pending, the [`SessionScheduler`] advances the
//! shared [`SharedClock`] straight to the earliest deadline.  One worker
//! thread can therefore keep `max_inflight` simulated round trips in the
//! air at once, which is where throughput under latency comes from —
//! more in-flight requests, not more threads.
//!
//! Determinism is preserved by construction: membership answers are pure
//! (§3.2 property 3) and each query runs on its own session, so *when* a
//! session is polled never changes *what* it answers — only the virtual
//! timestamps move.

use crate::sul::{Sul, SulFactory, SulStats};
use prognosis_automata::alphabet::Symbol;
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_events::{Event, ScopedSink, CLOCK_SAMPLE_EVERY};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use prognosis_learner::oracle::QueryPhase;
pub use prognosis_netsim::time::{SharedClock, SimDuration, SimTime};

/// The result of polling an in-flight session step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionPoll {
    /// The step completed with this output symbol.
    Ready(Symbol),
    /// The step is still in flight; there is no point polling again before
    /// `wake_at` on the session's clock.
    Pending {
        /// The earliest virtual instant at which the step can complete.
        wake_at: SimTime,
    },
}

/// A non-blocking system under learning: a query session driven by
/// start/poll pairs on a virtual clock instead of blocking `step` calls.
///
/// The protocol is strict: `start_reset` begins a query (and returns when
/// the session is ready for its first symbol), then for each input symbol
/// `start_step` is called exactly once followed by `poll_step` until it
/// returns [`SessionPoll::Ready`].  A session serves one query at a time;
/// concurrency comes from a scheduler multiplexing *many sessions*.
pub trait SessionSul {
    /// The blocking SUL type handed back when the session is torn down
    /// (so adapter-side state such as the Oracle Table survives).
    type Sul: Sul;

    /// Begins a reset at virtual time `now`; returns the instant the
    /// session is ready for the next query's first symbol.
    fn start_reset(&mut self, now: SimTime) -> SimTime;

    /// Begins one abstract input symbol step at virtual time `now`.
    fn start_step(&mut self, input: &Symbol, now: SimTime);

    /// Polls the in-flight step at virtual time `now`.
    fn poll_step(&mut self, now: SimTime) -> SessionPoll;

    /// Interaction counters of the underlying SUL.
    fn stats(&self) -> SulStats;

    /// The underlying SUL's cross-run cache key (see [`Sul::cache_key`]).
    fn cache_key(&self) -> Option<String>;

    /// Attaches the engine's event sink.  A no-op by default; sessions
    /// that own instrumentable substrate (e.g. a simulated network)
    /// forward it so wire-level events join the same stream.
    fn attach_event_sink(&mut self, _sink: Arc<ScopedSink>) {}

    /// Announces that the query begun by the next
    /// [`SessionSul::start_reset`] stages its events under `scope`.  A
    /// no-op by default.
    fn begin_event_scope(&mut self, _scope: u64) {}

    /// Tears the session down, returning the underlying SUL.  Callers
    /// should [`SessionSul::start_reset`] first so any pending adapter-side
    /// state (e.g. the last query's Oracle-Table entry) is flushed.
    fn into_sul(self) -> Self::Sul;
}

/// A blocking SUL whose adapter also exposes a deadline-based step path on
/// the virtual clock: the step's answer is computed eagerly (answers are
/// pure) but only becomes *visible* at the returned deadline, which is what
/// an event-driven scheduler needs to overlap many round trips.
pub trait TimedSul: Sul {
    /// Performs one step as of virtual time `now`, returning the output
    /// and the instant it is available.
    fn step_at(&mut self, input: &Symbol, now: SimTime) -> (Symbol, SimTime);

    /// Performs a reset as of `now`, returning the instant the SUL is
    /// ready again.
    fn reset_at(&mut self, now: SimTime) -> SimTime;
}

/// The blanket adapter that lifts any blocking [`Sul`] into the session
/// protocol: steps compute synchronously and are ready immediately (an
/// in-process simulator answers in microseconds of real time and zero
/// virtual time).
pub struct BlockingSession<S> {
    inner: S,
    pending: Option<Symbol>,
}

impl<S: Sul> BlockingSession<S> {
    /// Wraps a blocking SUL.
    pub fn new(inner: S) -> Self {
        BlockingSession {
            inner,
            pending: None,
        }
    }
}

impl<S: Sul> SessionSul for BlockingSession<S> {
    type Sul = S;

    fn start_reset(&mut self, now: SimTime) -> SimTime {
        self.inner.reset();
        now
    }

    fn start_step(&mut self, input: &Symbol, _now: SimTime) {
        debug_assert!(self.pending.is_none(), "step started twice");
        self.pending = Some(self.inner.step(input));
    }

    fn poll_step(&mut self, _now: SimTime) -> SessionPoll {
        SessionPoll::Ready(self.pending.take().expect("poll_step without start_step"))
    }

    fn stats(&self) -> SulStats {
        self.inner.stats()
    }

    fn cache_key(&self) -> Option<String> {
        self.inner.cache_key()
    }

    fn into_sul(self) -> S {
        self.inner
    }
}

/// The session adapter for [`TimedSul`]s: a deadline-based state machine.
/// `start_step` computes the answer and records its availability deadline;
/// `poll_step` surrenders it once the clock has reached the deadline and
/// otherwise reports exactly when to come back.
pub struct TimedSession<S> {
    inner: S,
    pending: Option<(Symbol, SimTime)>,
}

impl<S: TimedSul> TimedSession<S> {
    /// Wraps a timed SUL.
    pub fn new(inner: S) -> Self {
        TimedSession {
            inner,
            pending: None,
        }
    }
}

impl<S: TimedSul> SessionSul for TimedSession<S> {
    type Sul = S;

    fn start_reset(&mut self, now: SimTime) -> SimTime {
        self.inner.reset_at(now)
    }

    fn start_step(&mut self, input: &Symbol, now: SimTime) {
        debug_assert!(self.pending.is_none(), "step started twice");
        self.pending = Some(self.inner.step_at(input, now));
    }

    fn poll_step(&mut self, now: SimTime) -> SessionPoll {
        let (_, ready_at) = *self.pending.as_ref().expect("poll_step without start_step");
        if now >= ready_at {
            let (output, _) = self.pending.take().expect("checked above");
            SessionPoll::Ready(output)
        } else {
            SessionPoll::Pending { wake_at: ready_at }
        }
    }

    fn stats(&self) -> SulStats {
        self.inner.stats()
    }

    fn cache_key(&self) -> Option<String> {
        self.inner.cache_key()
    }

    fn into_sul(self) -> S {
        self.inner
    }
}

/// Mints independent query sessions.  The session-engine analogue of
/// [`SulFactory`]: each session owns an independent SUL instance, so a
/// scheduler with `max_inflight` sessions holds `max_inflight` SULs.
pub trait SessionSulFactory {
    /// The session type this factory creates.
    type Session: SessionSul;

    /// Creates a fresh, independent session in its initial state.
    fn create_session(&self) -> Self::Session;

    /// Mints the whole session group one scheduler worker multiplexes,
    /// together with the clock that worker's [`SessionScheduler`] must
    /// drive.  The default mints `count` independent sessions on a fresh
    /// clock; transports whose sessions share per-worker substrate — one
    /// `netsim` network per worker
    /// ([`crate::net_transport::NetworkedSessionFactory`]) — override this
    /// so the group lives on one substrate attached to the returned clock.
    fn create_worker_sessions(&self, count: usize) -> (Vec<Self::Session>, SharedClock) {
        (
            (0..count).map(|_| self.create_session()).collect(),
            SharedClock::new(),
        )
    }
}

impl<F: SessionSulFactory + ?Sized> SessionSulFactory for &F {
    type Session = F::Session;

    fn create_session(&self) -> Self::Session {
        (**self).create_session()
    }

    fn create_worker_sessions(&self, count: usize) -> (Vec<Self::Session>, SharedClock) {
        (**self).create_worker_sessions(count)
    }
}

/// Lifts any [`SulFactory`] into a [`SessionSulFactory`] via the blocking
/// adapter.  Factories whose SULs have a genuinely timed step path
/// (`TcpSulFactory`, `QuicSulFactory`, `LatencySulFactory`) provide their
/// own deadline-based impls instead.
#[derive(Clone, Debug, Default)]
pub struct BlockingSessionFactory<F>(pub F);

impl<F: SulFactory> SessionSulFactory for BlockingSessionFactory<F> {
    type Session = BlockingSession<F::Sul>;

    fn create_session(&self) -> Self::Session {
        BlockingSession::new(self.0.create())
    }
}

/// Per-phase slice of one scheduler's in-flight integral.  Attribution is
/// **per query**, from the [`QueryPhase`] tag each job carries: when the
/// clock jumps by Δ, every in-flight job adds Δ to its own phase's
/// `busy_micros`, every phase with at least one job in flight adds Δ to its
/// `active_micros`, and — for those active phases — the *whole pool's*
/// in-flight count × Δ accrues to `pool_busy_micros`.  This stays correct
/// when two phases are in flight at once (speculative equivalence words
/// overlapping construction), which a single global "current phase" flag
/// cannot be.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseFlight {
    /// In-flight session-microseconds of this phase's own queries.
    pub busy_micros: u64,
    /// Virtual microseconds during which at least one query of this phase
    /// was in flight (the phase's own occupancy denominator).
    pub active_micros: u64,
    /// In-flight session-microseconds of the *whole pool* (any phase)
    /// during this phase's active windows — the numerator of
    /// [`PhaseStats::window_occupancy`], which asks "while this phase was
    /// ongoing, did the pool stay full?".
    pub pool_busy_micros: u64,
}

/// Occupancy and progress counters of one [`SessionScheduler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Queries completed by this scheduler.
    pub queries_completed: u64,
    /// Times the scheduler jumped its clock to the next deadline (one
    /// "timer fire" of the event loop).
    pub clock_advances: u64,
    /// Integral of in-flight sessions over the virtual waits, in
    /// session-microseconds: how much simulated round-trip time was kept
    /// in flight (the quantity multiplexing exists to maximize).
    pub busy_session_micros: u64,
    /// Peak number of concurrently in-flight sessions.
    pub peak_inflight: u64,
    /// Virtual time elapsed on this scheduler's clock since construction.
    pub virtual_elapsed_micros: u64,
    /// Times the adaptive in-flight limit grew (saturated pulls).
    pub limit_grows: u64,
    /// Times the adaptive in-flight limit shrank (underfilled windows).
    pub limit_shrinks: u64,
    /// Per-query-tag flight integral for hypothesis-construction queries.
    pub construction_flight: PhaseFlight,
    /// Per-query-tag flight integral for counterexample probes.
    pub counterexample_flight: PhaseFlight,
    /// Per-query-tag flight integral for equivalence-suite queries.
    pub equivalence_flight: PhaseFlight,
}

impl SchedulerStats {
    /// The flight integral of one learning phase.
    pub fn flight(&self, phase: QueryPhase) -> &PhaseFlight {
        match phase {
            QueryPhase::Construction => &self.construction_flight,
            QueryPhase::Counterexample => &self.counterexample_flight,
            QueryPhase::Equivalence => &self.equivalence_flight,
        }
    }

    fn flight_mut(&mut self, phase: QueryPhase) -> &mut PhaseFlight {
        match phase {
            QueryPhase::Construction => &mut self.construction_flight,
            QueryPhase::Counterexample => &mut self.counterexample_flight,
            QueryPhase::Equivalence => &mut self.equivalence_flight,
        }
    }
}

/// The three learning phases, in a fixed order for iteration.
pub const ALL_PHASES: [QueryPhase; 3] = [
    QueryPhase::Construction,
    QueryPhase::Counterexample,
    QueryPhase::Equivalence,
];

/// The phase's stable name in the structured event stream.
pub fn phase_name(phase: QueryPhase) -> &'static str {
    match phase {
        QueryPhase::Construction => "construction",
        QueryPhase::Counterexample => "counterexample",
        QueryPhase::Equivalence => "equivalence",
    }
}

/// Per-learning-phase slice of the engine's dispatch accounting: how many
/// batches/queries the phase issued and how much session time it kept in
/// flight.  This is what makes the sift wavefront measurable — before it,
/// the construction phase dispatched batches of 1 and its occupancy sat
/// at ~`1/max_inflight`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Membership batches dispatched during this phase.
    pub batches: u64,
    /// Queries dispatched during this phase.
    pub queries: u64,
    /// In-flight session-microseconds accrued by this phase's own queries
    /// (attributed per query from its dispatch tag).
    pub busy_micros: u64,
    /// Summed worker virtual-time advance during which this phase had at
    /// least one query in flight (the phase's occupancy denominator before
    /// multiplying by `max_inflight`; for a single-worker engine this is
    /// the phase's virtual elapsed time).
    pub worker_micros: u64,
    /// In-flight session-microseconds of the whole pool — any phase —
    /// during this phase's active windows.  See
    /// [`PhaseStats::window_occupancy`].
    pub pool_busy_micros: u64,
}

impl PhaseStats {
    /// Mean slot occupancy of **this phase's own queries** during its
    /// active windows, for the given slot cap.  Under overlapped execution
    /// the phases share the pool, so the per-phase occupancies no longer
    /// sum to the pool occupancy — see [`PhaseStats::window_occupancy`]
    /// for the "did the pool stay full while this phase ran" question.
    pub fn occupancy(&self, max_inflight: u64) -> f64 {
        let capacity = self.worker_micros.saturating_mul(max_inflight.max(1));
        if capacity == 0 {
            0.0
        } else {
            self.busy_micros as f64 / capacity as f64
        }
    }

    /// Mean slot occupancy of the **whole pool** during this phase's
    /// active windows: 1.0 means every slot was busy (with work of any
    /// phase) whenever this phase had a query in flight.  This is the
    /// dataflow learner's headline metric — overlapping phases exists
    /// precisely so the pool never drains while construction is ongoing,
    /// even when construction alone cannot fill it.
    pub fn window_occupancy(&self, max_inflight: u64) -> f64 {
        let capacity = self.worker_micros.saturating_mul(max_inflight.max(1));
        if capacity == 0 {
            0.0
        } else {
            self.pool_busy_micros as f64 / capacity as f64
        }
    }

    /// Mean dispatched batch size during this phase.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// One dispatched batch in [`EngineStats::occupancy_timeline`]: which
/// phase issued it, how large it was, and the busy/elapsed deltas it
/// produced — enough to plot occupancy over the run and see the wavefront
/// fill the pool round by round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Learning phase the batch belonged to.
    pub phase: QueryPhase,
    /// Number of queries in the dispatched batch.
    pub batch_size: u64,
    /// In-flight session-microseconds accrued while the batch ran.
    pub busy_micros: u64,
    /// Summed worker virtual-time advance while the batch ran.
    pub worker_micros: u64,
}

/// Retained-sample budget for the occupancy timeline.  When a run
/// produces more dispatches than this, the timeline is halved (every
/// second retained sample dropped) and the sampling stride doubled, so
/// long runs keep an approximately uniform **full-span** timeline instead
/// of silently truncating the tail.  Exact aggregates always continue in
/// the per-phase [`PhaseStats`].
pub const OCCUPANCY_TIMELINE_CAP: usize = 4096;

/// Aggregated engine statistics across all workers of a parallel oracle.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Worker threads (schedulers).
    pub workers: u64,
    /// Session slots per worker.
    pub max_inflight: u64,
    /// Queries completed across all workers.
    pub queries_completed: u64,
    /// Clock advances (event-loop timer fires) across all workers.
    pub clock_advances: u64,
    /// Total in-flight session-microseconds across all workers.
    pub busy_session_micros: u64,
    /// Peak concurrently in-flight sessions on any single worker.
    pub peak_inflight: u64,
    /// Virtual elapsed time of the slowest worker — the run's virtual
    /// makespan, the denominator of virtual-time throughput.
    pub virtual_elapsed_micros: u64,
    /// Sum of all workers' virtual elapsed times (occupancy denominator).
    pub worker_virtual_micros: u64,
    /// Adaptive in-flight limit growth events across all workers.
    pub limit_grows: u64,
    /// Adaptive in-flight limit shrink events across all workers.
    pub limit_shrinks: u64,
    /// Reply messages the dispatcher received from workers.  Each message
    /// carries a whole answer chunk plus a stats snapshot, so
    /// `queries_completed / reply_messages` is the answers-per-wake-up
    /// economy of the batched return path (1.0 = one learner wake-up per
    /// query, the old per-answer regime).
    pub reply_messages: u64,
    /// Histogram of dispatched batch sizes: bucket `i` counts batches of
    /// `2^i ..= 2^(i+1)-1` queries.
    pub batch_size_histogram: Vec<u64>,
    /// Occupancy samples in dispatch order, one every
    /// [`EngineStats::timeline_stride`] dispatches.  The retained count is
    /// bounded by [`OCCUPANCY_TIMELINE_CAP`] via halve-and-downsample, so
    /// the timeline always spans the whole run; aggregates in the phase
    /// stats are always exact.
    pub occupancy_timeline: Vec<OccupancySample>,
    /// Current timeline sampling stride in dispatches (1 until the cap is
    /// first hit, then doubled at each halving).
    pub timeline_stride: u64,
    /// Total dispatches seen by the timeline sampler (including ones that
    /// fell between strides).
    pub timeline_dispatches: u64,
    /// Dispatch accounting for hypothesis-construction queries.
    pub construction: PhaseStats,
    /// Dispatch accounting for counterexample-decomposition probes.
    pub counterexample: PhaseStats,
    /// Dispatch accounting for equivalence-suite queries.
    pub equivalence: PhaseStats,
}

impl EngineStats {
    /// Folds one worker's scheduler counters into the aggregate, including
    /// the per-query-tag phase flight integrals (which become the phases'
    /// busy/worker/pool aggregates — exact even when phases overlap).
    pub fn absorb(&mut self, s: &SchedulerStats) {
        self.queries_completed += s.queries_completed;
        self.clock_advances += s.clock_advances;
        self.busy_session_micros += s.busy_session_micros;
        self.peak_inflight = self.peak_inflight.max(s.peak_inflight);
        self.virtual_elapsed_micros = self.virtual_elapsed_micros.max(s.virtual_elapsed_micros);
        self.worker_virtual_micros += s.virtual_elapsed_micros;
        self.limit_grows += s.limit_grows;
        self.limit_shrinks += s.limit_shrinks;
        for phase in ALL_PHASES {
            let flight = s.flight(phase);
            let stats = self.phase_mut(phase);
            stats.busy_micros += flight.busy_micros;
            stats.worker_micros += flight.active_micros;
            stats.pool_busy_micros += flight.pool_busy_micros;
        }
    }

    /// Records one dispatched batch: histogram bucket, timeline sample and
    /// per-phase batch/query counts.  The busy/worker deltas feed only the
    /// timeline sample (a plotting aid); the exact per-phase busy/worker
    /// aggregates come from the scheduler-side [`PhaseFlight`] integrals
    /// folded in by [`EngineStats::absorb`].
    pub fn record_dispatch(
        &mut self,
        phase: QueryPhase,
        batch_size: u64,
        busy_micros: u64,
        worker_micros: u64,
    ) {
        let bucket = (u64::BITS - 1 - batch_size.max(1).leading_zeros()) as usize;
        if self.batch_size_histogram.len() <= bucket {
            self.batch_size_histogram.resize(bucket + 1, 0);
        }
        self.batch_size_histogram[bucket] += 1;
        self.timeline_dispatches += 1;
        let stride = self.timeline_stride.max(1);
        if (self.timeline_dispatches - 1).is_multiple_of(stride) {
            self.occupancy_timeline.push(OccupancySample {
                phase,
                batch_size,
                busy_micros,
                worker_micros,
            });
            if self.occupancy_timeline.len() >= OCCUPANCY_TIMELINE_CAP {
                // Halve-and-downsample: keep every second sample and double
                // the stride, preserving a full-span timeline.
                let mut keep = false;
                self.occupancy_timeline.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.timeline_stride = stride * 2;
            }
        }
        let stats = self.phase_mut(phase);
        stats.batches += 1;
        stats.queries += batch_size;
    }

    /// The dispatch accounting of one learning phase.
    pub fn phase(&self, phase: QueryPhase) -> &PhaseStats {
        match phase {
            QueryPhase::Construction => &self.construction,
            QueryPhase::Counterexample => &self.counterexample,
            QueryPhase::Equivalence => &self.equivalence,
        }
    }

    fn phase_mut(&mut self, phase: QueryPhase) -> &mut PhaseStats {
        match phase {
            QueryPhase::Construction => &mut self.construction,
            QueryPhase::Counterexample => &mut self.counterexample,
            QueryPhase::Equivalence => &mut self.equivalence,
        }
    }

    /// The virtual makespan of the run.
    pub fn virtual_elapsed(&self) -> SimDuration {
        SimDuration::from_micros(self.virtual_elapsed_micros)
    }

    /// Mean fraction of session slots that were kept in flight while the
    /// engine waited on virtual round trips (1.0 = every slot of every
    /// worker busy for the whole run).
    pub fn occupancy(&self) -> f64 {
        let capacity = self
            .worker_virtual_micros
            .saturating_mul(self.max_inflight.max(1));
        if capacity == 0 {
            0.0
        } else {
            self.busy_session_micros as f64 / capacity as f64
        }
    }
}

/// One query being executed by a session slot.  The input arrives as a
/// shared handle: the same allocation travels from the learner through the
/// work queue to the slot without a per-query word clone.
struct ActiveJob {
    index: usize,
    input: Arc<InputWord>,
    position: usize,
    output: OutputWord,
    /// Learning phase the query was dispatched under; virtual waits are
    /// attributed to this tag, not to any global phase flag.
    phase: QueryPhase,
    /// Event-staging scope (= submit index) and the query's reset instant,
    /// so `session:done` can carry a query-relative timestamp.
    scope: u64,
    begun_at: SimTime,
}

enum SlotState {
    Idle,
    /// Waiting for the reset to complete at `ready_at`.
    Resetting {
        ready_at: SimTime,
    },
    /// A step has been started and awaits `poll_step`.
    Stepping,
}

struct Slot<Sn> {
    session: Sn,
    state: SlotState,
    job: Option<ActiveJob>,
}

/// A single-threaded event loop multiplexing up to `max_inflight`
/// concurrent query sessions over one [`SharedClock`].
///
/// The scheduler never sleeps: [`SessionScheduler::drive`] polls every
/// in-flight session once and, if none can make progress at the current
/// instant, jumps the clock to the earliest `wake_at` deadline.  With pure
/// membership answers the completed outputs are bit-identical to running
/// the same queries sequentially — multiplexing moves only virtual time.
pub struct SessionScheduler<Sn> {
    slots: Vec<Slot<Sn>>,
    clock: SharedClock,
    started_at: SimTime,
    stats: SchedulerStats,
    /// Session slots currently eligible for new work.  Equal to
    /// `slots.len()` unless adaptation is enabled, in which case it grows
    /// while demand keeps every active slot occupied and shrinks when a
    /// work window cannot fill the pool.
    active_limit: usize,
    adaptive: bool,
    sink: Option<Arc<ScopedSink>>,
}

impl<Sn: SessionSul> SessionScheduler<Sn> {
    /// A scheduler over the given sessions with a fresh clock.
    pub fn new(sessions: Vec<Sn>) -> Self {
        SessionScheduler::with_clock(sessions, SharedClock::new())
    }

    /// A scheduler sharing an existing clock (e.g. with a netsim
    /// [`prognosis_netsim::Network`] via
    /// [`prognosis_netsim::Network::attach_clock`]).
    ///
    /// # Panics
    /// Panics when `sessions` is empty.
    pub fn with_clock(sessions: Vec<Sn>, clock: SharedClock) -> Self {
        assert!(
            !sessions.is_empty(),
            "a scheduler needs at least one session"
        );
        let started_at = clock.now();
        let active_limit = sessions.len();
        SessionScheduler {
            slots: sessions
                .into_iter()
                .map(|session| Slot {
                    session,
                    state: SlotState::Idle,
                    job: None,
                })
                .collect(),
            clock,
            started_at,
            stats: SchedulerStats::default(),
            active_limit,
            adaptive: false,
            sink: None,
        }
    }

    /// Attaches an event sink: session lifecycle events are staged under
    /// each query's scope (= submit index), scheduler diagnostics are
    /// emitted immediately.  The sink is also forwarded to every session
    /// so deeper layers (e.g. the simulated network) join the stream.
    pub fn with_event_sink(mut self, sink: Arc<ScopedSink>) -> Self {
        for slot in &mut self.slots {
            slot.session.attach_event_sink(sink.clone());
        }
        self.sink = Some(sink);
        self
    }

    /// Enables adaptive in-flight limiting: the scheduler starts with
    /// `initial` eligible slots and **doubles** the limit whenever a work
    /// pull fills every active slot with demand left over (instantaneous
    /// occupancy 1.0 — the pool is the bottleneck), up to the session-count
    /// cap; it shrinks the limit to the pulled size when a fresh work
    /// window cannot fill the pool (batches smaller than the limit gain
    /// nothing from extra active slots).  The total session count —
    /// `LearnConfig::max_inflight` — becomes the *cap*, not the constant.
    /// Adaptation changes which slots are polled, never what they answer.
    ///
    /// # Panics
    /// Panics when `initial` is zero.
    pub fn with_adaptive_inflight(mut self, initial: usize) -> Self {
        assert!(initial >= 1, "at least one slot must stay active");
        self.active_limit = initial.min(self.slots.len());
        self.adaptive = true;
        self
    }

    /// The current adaptive in-flight limit (= total slots when
    /// adaptation is disabled).
    pub fn inflight_limit(&self) -> usize {
        self.active_limit
    }

    /// Feedback from the work queue after a pull of `pulled` jobs
    /// (already submitted): `more_available` says the queue still held
    /// work, `was_idle` that the pull opened a fresh work window.
    pub fn note_pull(&mut self, pulled: usize, more_available: bool, was_idle: bool) {
        if !self.adaptive {
            return;
        }
        if more_available && self.capacity() == 0 {
            // Every active slot is occupied and demand remains: grow.
            let next = (self.active_limit * 2).min(self.slots.len());
            if next > self.active_limit {
                self.active_limit = next;
                self.stats.limit_grows += 1;
                if let Some(sink) = &self.sink {
                    sink.diagnostic(Event::LimitGrow {
                        time: self.clock.now().as_micros(),
                        limit: self.active_limit as u64,
                    });
                }
            }
        } else if was_idle && pulled > 0 && pulled < self.active_limit {
            // A fresh window opened with too little work to fill the
            // pool: halve toward what the window actually needs.  (Gentle
            // shrink keeps the limit warm across alternating small and
            // large windows instead of re-ramping from scratch each time.
            // With several workers this can also fire when peers drained a
            // large batch before this worker woke — indistinguishable at
            // the queue from a genuinely small window — but halving bounds
            // the damage to one lost doubling, regained on the next
            // saturated pull.)
            let next = pulled.max(self.active_limit / 2).max(1);
            if next < self.active_limit {
                self.active_limit = next;
                self.stats.limit_shrinks += 1;
                if let Some(sink) = &self.sink {
                    sink.diagnostic(Event::LimitShrink {
                        time: self.clock.now().as_micros(),
                        limit: self.active_limit as u64,
                    });
                }
            }
        }
    }

    /// The scheduler's clock handle.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Total session slots.
    pub fn num_sessions(&self) -> usize {
        self.slots.len()
    }

    /// Number of sessions currently executing a query.
    pub fn in_flight(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s.state, SlotState::Idle))
            .count()
    }

    /// Free session slots within the current in-flight limit.
    pub fn capacity(&self) -> usize {
        self.active_limit.saturating_sub(self.in_flight())
    }

    /// Whether at least one slot is free.
    pub fn has_capacity(&self) -> bool {
        self.capacity() > 0
    }

    /// Whether no query is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0
    }

    /// Progress counters.
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.stats;
        stats.virtual_elapsed_micros = self.clock.now().since(self.started_at).as_micros();
        stats
    }

    /// Aggregated SUL interaction counters across all sessions.
    pub fn sul_stats(&self) -> SulStats {
        self.slots
            .iter()
            .map(|s| s.session.stats())
            .fold(SulStats::default(), add_stats)
    }

    /// Starts executing `input` as query number `index` on a free slot,
    /// attributing its virtual waits to `phase`.  The input is accepted as
    /// a plain word or a shared `Arc` handle (the parallel engine hands the
    /// queue's `Arc` straight through, clone-free).
    ///
    /// # Panics
    /// Panics when no slot is free ([`SessionScheduler::has_capacity`]).
    pub fn submit(&mut self, index: usize, input: impl Into<Arc<InputWord>>, phase: QueryPhase) {
        let input = input.into();
        let now = self.clock.now();
        let slot = self
            .slots
            .iter_mut()
            .find(|s| matches!(s.state, SlotState::Idle))
            .expect("submit on a scheduler without capacity");
        let scope = index as u64;
        if self.sink.is_some() {
            slot.session.begin_event_scope(scope);
        }
        let ready_at = slot.session.start_reset(now);
        if let Some(sink) = &self.sink {
            sink.stage(
                scope,
                Event::SessionStart {
                    phase: phase_name(phase),
                    symbols: input.len() as u64,
                },
            );
        }
        slot.state = SlotState::Resetting { ready_at };
        slot.job = Some(ActiveJob {
            index,
            input,
            position: 0,
            output: OutputWord::empty(),
            phase,
            scope,
            begun_at: now,
        });
        self.stats.peak_inflight = self.stats.peak_inflight.max(self.in_flight() as u64);
    }

    /// Makes one pass of progress: polls every in-flight session at the
    /// current instant, returning the queries that completed (as
    /// `(submit index, output)` pairs).  If nothing could progress, jumps
    /// the clock to the earliest deadline so the next pass will.
    pub fn drive(&mut self) -> Vec<(usize, OutputWord)> {
        self.drive_gated(true)
    }

    /// [`SessionScheduler::drive`] with the clock advance made optional:
    /// with `advance` false the pass only harvests progress possible at
    /// the current instant.  The parallel engine passes false while more
    /// work could still join this virtual instant (the learner is active
    /// or the queue holds pullable jobs), so late-arriving continuations
    /// overlap the queries already in flight instead of starting one
    /// round-trip behind them.
    pub fn drive_gated(&mut self, advance: bool) -> Vec<(usize, OutputWord)> {
        let now = self.clock.now();
        let mut completed = Vec::new();
        let mut progressed = false;
        let mut min_wake: Option<SimTime> = None;
        for slot in &mut self.slots {
            loop {
                match slot.state {
                    SlotState::Idle => break,
                    SlotState::Resetting { ready_at } => {
                        if ready_at > now {
                            min_wake = Some(min_wake.map_or(ready_at, |w| w.min(ready_at)));
                            break;
                        }
                        progressed = true;
                        let job = slot.job.as_ref().expect("active slot has a job");
                        if job.input.is_empty() {
                            finish(slot, &mut completed, &mut self.stats, &self.sink, now);
                            break;
                        }
                        let symbol = job.input.as_slice()[0].clone();
                        slot.session.start_step(&symbol, now);
                        slot.state = SlotState::Stepping;
                    }
                    SlotState::Stepping => match slot.session.poll_step(now) {
                        SessionPoll::Pending { wake_at } => {
                            min_wake = Some(min_wake.map_or(wake_at, |w| w.min(wake_at)));
                            break;
                        }
                        SessionPoll::Ready(output) => {
                            progressed = true;
                            let job = slot.job.as_mut().expect("active slot has a job");
                            job.output.push(output);
                            job.position += 1;
                            if job.position == job.input.len() {
                                finish(slot, &mut completed, &mut self.stats, &self.sink, now);
                                break;
                            }
                            let symbol = job.input.as_slice()[job.position].clone();
                            slot.session.start_step(&symbol, now);
                        }
                    },
                }
            }
        }
        if !progressed && advance {
            if let Some(wake) = min_wake {
                // Event-driven wait: every in-flight session pays this
                // virtual wait concurrently — that is the multiplexing win.
                let delta = wake.since(now).as_micros();
                let mut waiting = 0u64;
                let mut by_phase = [0u64; 3];
                for slot in &self.slots {
                    if let Some(job) = &slot.job {
                        waiting += 1;
                        by_phase[match job.phase {
                            QueryPhase::Construction => 0,
                            QueryPhase::Counterexample => 1,
                            QueryPhase::Equivalence => 2,
                        }] += 1;
                    }
                }
                self.stats.busy_session_micros += waiting * delta;
                for (i, phase) in ALL_PHASES.into_iter().enumerate() {
                    if by_phase[i] > 0 {
                        let flight = self.stats.flight_mut(phase);
                        flight.busy_micros += by_phase[i] * delta;
                        flight.active_micros += delta;
                        flight.pool_busy_micros += waiting * delta;
                    }
                }
                self.stats.clock_advances += 1;
                if let Some(sink) = &self.sink {
                    if self.stats.clock_advances % CLOCK_SAMPLE_EVERY == 1 {
                        sink.diagnostic(Event::ClockAdvance {
                            time: wake.as_micros(),
                            advances: self.stats.clock_advances,
                        });
                    }
                }
                self.clock.advance_to(wake);
            }
        }
        completed
    }

    /// Drives until every submitted query has completed; convenience for
    /// tests and single-threaded batch execution.
    pub fn run_to_idle(&mut self) -> Vec<(usize, OutputWord)> {
        let mut completed = Vec::new();
        while !self.is_idle() {
            completed.extend(self.drive());
        }
        completed
    }

    /// Tears the scheduler down, returning its sessions.
    pub fn into_sessions(self) -> Vec<Sn> {
        self.slots.into_iter().map(|s| s.session).collect()
    }
}

fn finish<Sn>(
    slot: &mut Slot<Sn>,
    completed: &mut Vec<(usize, OutputWord)>,
    stats: &mut SchedulerStats,
    sink: &Option<Arc<ScopedSink>>,
    now: SimTime,
) {
    let job = slot.job.take().expect("finishing slot has a job");
    if let Some(sink) = sink {
        sink.stage(
            job.scope,
            Event::SessionDone {
                phase: phase_name(job.phase),
                symbols: job.input.len() as u64,
                rel: now.since(job.begun_at).as_micros(),
            },
        );
    }
    completed.push((job.index, job.output));
    slot.state = SlotState::Idle;
    stats.queries_completed += 1;
}

pub(crate) fn add_stats(acc: SulStats, s: SulStats) -> SulStats {
    SulStats {
        symbols_sent: acc.symbols_sent + s.symbols_sent,
        resets: acc.resets + s.resets,
        concrete_packets_sent: acc.concrete_packets_sent + s.concrete_packets_sent,
        concrete_packets_received: acc.concrete_packets_received + s.concrete_packets_received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencySul;
    use crate::sul::replay_query;
    use crate::tcp_adapter::{TcpSul, TcpSulFactory};
    use prognosis_automata::word::InputWord;

    fn words() -> Vec<InputWord> {
        vec![
            InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"]),
            InputWord::from_symbols(["ACK(?,?,0)"]),
            InputWord::from_symbols(["SYN(?,?,0)", "FIN+ACK(?,?,0)"]),
            InputWord::from_symbols(["RST(?,?,0)", "SYN(?,?,0)"]),
            InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)", "ACK(?,?,0)"]),
        ]
    }

    fn expected() -> Vec<OutputWord> {
        words()
            .iter()
            .map(|w| replay_query(&mut TcpSul::with_defaults(), w))
            .collect()
    }

    #[test]
    fn blocking_sessions_complete_in_zero_virtual_time() {
        let sessions: Vec<_> = (0..2)
            .map(|_| BlockingSession::new(TcpSul::with_defaults()))
            .collect();
        let mut scheduler = SessionScheduler::new(sessions);
        for (i, w) in words().into_iter().take(2).enumerate() {
            scheduler.submit(i, w, QueryPhase::Construction);
        }
        let mut done = scheduler.run_to_idle();
        done.sort_by_key(|(i, _)| *i);
        let exp = expected();
        assert_eq!(done[0].1, exp[0]);
        assert_eq!(done[1].1, exp[1]);
        assert_eq!(scheduler.stats().virtual_elapsed_micros, 0);
        assert_eq!(scheduler.stats().queries_completed, 2);
    }

    #[test]
    fn multiplexed_latency_sessions_overlap_their_round_trips() {
        let step = SimDuration::from_micros(50);
        let reset = SimDuration::from_micros(100);
        let make = || TimedSession::new(LatencySul::new(TcpSul::with_defaults(), step, reset));

        // Serial: one session, five queries one after another.
        let mut serial = SessionScheduler::new(vec![make()]);
        let mut serial_done = Vec::new();
        for (i, w) in words().into_iter().enumerate() {
            serial.submit(i, w, QueryPhase::Construction);
            serial_done.extend(serial.run_to_idle());
        }
        let serial_elapsed = serial.stats().virtual_elapsed_micros;

        // Multiplexed: five sessions, all queries in flight at once.
        let sessions: Vec<_> = (0..5).map(|_| make()).collect();
        let mut multi = SessionScheduler::new(sessions);
        for (i, w) in words().into_iter().enumerate() {
            multi.submit(i, w, QueryPhase::Construction);
        }
        let mut multi_done = multi.run_to_idle();

        serial_done.sort_by_key(|(i, _)| *i);
        multi_done.sort_by_key(|(i, _)| *i);
        assert_eq!(
            serial_done, multi_done,
            "scheduling must not change answers"
        );
        let exp = expected();
        for (i, (_, out)) in multi_done.iter().enumerate() {
            assert_eq!(out, &exp[i]);
        }

        // Serial pays the sum of per-query round trips; multiplexed pays
        // roughly the longest single query.
        let multi_elapsed = multi.stats().virtual_elapsed_micros;
        assert!(
            multi_elapsed * 3 < serial_elapsed,
            "five overlapped queries must be far faster than serial \
             (serial {serial_elapsed}µs, multiplexed {multi_elapsed}µs)"
        );
        assert_eq!(multi.stats().peak_inflight, 5);
        assert!(multi.stats().clock_advances > 0);
        assert!(multi.stats().busy_session_micros > multi_elapsed);
    }

    #[test]
    fn scheduler_pulls_new_work_as_sessions_free_up() {
        let step = SimDuration::from_micros(10);
        let make = || {
            TimedSession::new(LatencySul::new(
                TcpSul::with_defaults(),
                step,
                SimDuration::ZERO,
            ))
        };
        let mut scheduler = SessionScheduler::new(vec![make(), make()]);
        let batch = words();
        let mut pending: std::collections::VecDeque<(usize, InputWord)> =
            batch.iter().cloned().enumerate().collect();
        let mut done = Vec::new();
        while done.len() < batch.len() {
            while scheduler.has_capacity() {
                match pending.pop_front() {
                    Some((i, w)) => scheduler.submit(i, w, QueryPhase::Construction),
                    None => break,
                }
            }
            done.extend(scheduler.drive());
        }
        done.sort_by_key(|(i, _)| *i);
        let exp = expected();
        for (i, (_, out)) in done.iter().enumerate() {
            assert_eq!(out, &exp[i]);
        }
        assert_eq!(scheduler.stats().queries_completed, 5);
        assert_eq!(scheduler.stats().peak_inflight, 2);
    }

    #[test]
    fn engine_stats_aggregate_and_report_occupancy() {
        let mut engine = EngineStats {
            workers: 2,
            max_inflight: 4,
            ..EngineStats::default()
        };
        engine.absorb(&SchedulerStats {
            queries_completed: 10,
            clock_advances: 3,
            busy_session_micros: 4_000,
            peak_inflight: 4,
            virtual_elapsed_micros: 1_000,
            ..SchedulerStats::default()
        });
        engine.absorb(&SchedulerStats {
            queries_completed: 6,
            clock_advances: 2,
            busy_session_micros: 1_000,
            peak_inflight: 2,
            virtual_elapsed_micros: 500,
            ..SchedulerStats::default()
        });
        assert_eq!(engine.queries_completed, 16);
        assert_eq!(engine.virtual_elapsed_micros, 1_000, "makespan is the max");
        assert_eq!(engine.worker_virtual_micros, 1_500);
        assert_eq!(engine.peak_inflight, 4);
        // 5_000 busy session-µs over 1_500 worker-µs × 4 slots.
        assert!((engine.occupancy() - 5_000.0 / 6_000.0).abs() < 1e-9);
        assert_eq!(engine.virtual_elapsed().as_micros(), 1_000);
    }

    #[test]
    fn adaptive_limit_grows_on_saturation_and_shrinks_on_underfill() {
        let sessions: Vec<_> = (0..8)
            .map(|_| BlockingSession::new(TcpSul::with_defaults()))
            .collect();
        let mut scheduler = SessionScheduler::new(sessions).with_adaptive_inflight(1);
        assert_eq!(scheduler.inflight_limit(), 1);
        assert_eq!(scheduler.capacity(), 1);
        // A saturated pull (pool full, demand left) doubles the limit.
        scheduler.submit(
            0,
            InputWord::from_symbols(["SYN(?,?,0)"]),
            QueryPhase::Construction,
        );
        scheduler.note_pull(1, true, true);
        assert_eq!(scheduler.inflight_limit(), 2);
        scheduler.submit(
            1,
            InputWord::from_symbols(["SYN(?,?,0)"]),
            QueryPhase::Construction,
        );
        scheduler.note_pull(1, true, false);
        assert_eq!(scheduler.inflight_limit(), 4);
        scheduler.run_to_idle();
        // A fresh window with too little work halves toward its size.
        scheduler.submit(
            2,
            InputWord::from_symbols(["SYN(?,?,0)"]),
            QueryPhase::Construction,
        );
        scheduler.note_pull(1, false, true);
        assert_eq!(scheduler.inflight_limit(), 2);
        let done = scheduler.run_to_idle();
        assert_eq!(done.len(), 1);
        let stats = scheduler.stats();
        assert_eq!(stats.limit_grows, 2);
        assert_eq!(stats.limit_shrinks, 1);
        assert_eq!(stats.queries_completed, 3);
    }

    #[test]
    fn adaptive_limit_caps_at_the_session_count_and_respects_capacity() {
        let sessions: Vec<_> = (0..2)
            .map(|_| BlockingSession::new(TcpSul::with_defaults()))
            .collect();
        let mut scheduler = SessionScheduler::new(sessions).with_adaptive_inflight(1);
        scheduler.submit(
            0,
            InputWord::from_symbols(["SYN(?,?,0)"]),
            QueryPhase::Construction,
        );
        scheduler.note_pull(1, true, true); // 1 → 2
        scheduler.submit(
            1,
            InputWord::from_symbols(["SYN(?,?,0)"]),
            QueryPhase::Construction,
        );
        scheduler.note_pull(1, true, false); // capped at 2
        assert_eq!(scheduler.inflight_limit(), 2);
        assert_eq!(scheduler.capacity(), 0);
        assert_eq!(scheduler.stats().limit_grows, 1, "cap stops growth");
        // Non-adaptive schedulers never move their limit.
        let sessions: Vec<_> = (0..3)
            .map(|_| BlockingSession::new(TcpSul::with_defaults()))
            .collect();
        let mut fixed = SessionScheduler::new(sessions);
        fixed.note_pull(1, true, true);
        assert_eq!(fixed.inflight_limit(), 3);
        assert_eq!(fixed.stats().limit_grows, 0);
    }

    #[test]
    fn engine_stats_record_dispatch_buckets_and_phases() {
        let mut engine = EngineStats {
            max_inflight: 8,
            ..EngineStats::default()
        };
        engine.record_dispatch(QueryPhase::Construction, 1, 100, 200);
        engine.record_dispatch(QueryPhase::Construction, 42, 1_500, 200);
        engine.record_dispatch(QueryPhase::Equivalence, 512, 4_000, 500);
        // Buckets: 1 → bucket 0, 42 → bucket 5 (32..63), 512 → bucket 9.
        assert_eq!(engine.batch_size_histogram[0], 1);
        assert_eq!(engine.batch_size_histogram[5], 1);
        assert_eq!(engine.batch_size_histogram[9], 1);
        assert_eq!(engine.batch_size_histogram.len(), 10);
        assert_eq!(engine.occupancy_timeline.len(), 3);
        assert_eq!(engine.occupancy_timeline[1].batch_size, 42);
        assert_eq!(engine.occupancy_timeline[1].phase, QueryPhase::Construction);
        let construction = engine.phase(QueryPhase::Construction);
        assert_eq!(construction.batches, 2);
        assert_eq!(construction.queries, 43);
        assert!((construction.mean_batch_size() - 21.5).abs() < 1e-9);
        assert_eq!(engine.phase(QueryPhase::Equivalence).queries, 512);
        assert_eq!(engine.phase(QueryPhase::Counterexample).batches, 0);
        // Busy/worker phase aggregates come from the scheduler-side flight
        // integrals, folded in by absorb.
        engine.absorb(&SchedulerStats {
            construction_flight: PhaseFlight {
                busy_micros: 1_600,
                active_micros: 400,
                pool_busy_micros: 2_000,
            },
            ..SchedulerStats::default()
        });
        let construction = engine.phase(QueryPhase::Construction);
        // 1_600 busy µs over 400 worker-µs × 8 slots.
        assert!((construction.occupancy(8) - 0.5).abs() < 1e-9);
        // 2_000 pool-busy µs over the same windows.
        assert!((construction.window_occupancy(8) - 0.625).abs() < 1e-9);
        assert_eq!(engine.phase(QueryPhase::Equivalence).busy_micros, 0);
    }

    #[test]
    fn occupancy_timeline_downsamples_instead_of_truncating() {
        let mut engine = EngineStats::default();
        let total = (OCCUPANCY_TIMELINE_CAP * 5) as u64;
        for i in 0..total {
            engine.record_dispatch(QueryPhase::Construction, i + 1, 0, 0);
        }
        assert_eq!(engine.timeline_dispatches, total);
        assert!(engine.timeline_stride > 1, "stride doubled at least once");
        let len = engine.occupancy_timeline.len();
        assert!(
            (OCCUPANCY_TIMELINE_CAP / 2..OCCUPANCY_TIMELINE_CAP).contains(&len),
            "halving keeps the timeline within (cap/2, cap), got {len}"
        );
        // The timeline spans the whole run: the first sample is the first
        // dispatch and the last retained sample lies in the final stride
        // window instead of at the pre-fix hard cutoff of 4096.
        assert_eq!(engine.occupancy_timeline[0].batch_size, 1);
        let last = engine.occupancy_timeline[len - 1].batch_size;
        assert!(
            last > total - 2 * engine.timeline_stride,
            "tail is retained (last sample {last} of {total})"
        );
        // Exact aggregates are unaffected by downsampling.
        assert_eq!(engine.phase(QueryPhase::Construction).batches, total);
    }

    #[test]
    fn phase_flight_attributes_overlapped_waits_per_query_tag() {
        let step = SimDuration::from_micros(50);
        let make = || {
            TimedSession::new(LatencySul::new(
                TcpSul::with_defaults(),
                step,
                SimDuration::ZERO,
            ))
        };
        let mut scheduler = SessionScheduler::new(vec![make(), make(), make()]);
        // Two construction queries and one equivalence query in flight at
        // once: waits must attribute per tag, not to a global phase.
        let w = || InputWord::from_symbols(["SYN(?,?,0)"]);
        scheduler.submit(0, w(), QueryPhase::Construction);
        scheduler.submit(1, w(), QueryPhase::Construction);
        scheduler.submit(2, w(), QueryPhase::Equivalence);
        let done = scheduler.run_to_idle();
        assert_eq!(done.len(), 3);
        let stats = scheduler.stats();
        let con = stats.flight(QueryPhase::Construction);
        let eq = stats.flight(QueryPhase::Equivalence);
        assert_eq!(con.busy_micros, 2 * step.as_micros());
        assert_eq!(eq.busy_micros, step.as_micros());
        assert_eq!(con.active_micros, step.as_micros());
        assert_eq!(eq.active_micros, step.as_micros());
        // Both phases were active while all three sessions waited.
        assert_eq!(con.pool_busy_micros, 3 * step.as_micros());
        assert_eq!(eq.pool_busy_micros, 3 * step.as_micros());
        assert_eq!(
            stats.busy_session_micros,
            con.busy_micros + eq.busy_micros,
            "pool total equals the sum of per-phase busy integrals"
        );
        assert_eq!(
            stats.flight(QueryPhase::Counterexample),
            &PhaseFlight::default()
        );
    }

    #[test]
    fn blocking_session_factory_lifts_plain_factories() {
        let factory = BlockingSessionFactory(TcpSulFactory::default());
        let mut session = factory.create_session();
        assert_eq!(session.cache_key(), TcpSul::with_defaults().cache_key());
        let at = session.start_reset(SimTime::ZERO);
        assert_eq!(at, SimTime::ZERO);
        session.start_step(&Symbol::new("SYN(?,?,0)"), SimTime::ZERO);
        match session.poll_step(SimTime::ZERO) {
            SessionPoll::Ready(out) => assert_eq!(out.as_str(), "ACK+SYN(?,?,0)"),
            SessionPoll::Pending { .. } => panic!("blocking sessions are always ready"),
        }
        let sul = session.into_sul();
        assert_eq!(sul.stats().symbols_sent, 1);
    }
}
