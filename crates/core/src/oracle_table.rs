//! The Oracle Table (§3.2 property 4).
//!
//! Every learner query exchanged with the SUL is recorded twice: once at the
//! abstract level (what the learner saw) and once at the concrete level (the
//! numeric fields of the packets that actually crossed the wire).  The
//! synthesis module of §4.3 later mines these pairs to recover register
//! behaviour such as sequence-number arithmetic or the Issue-4 constant-0
//! flow-control field.

use prognosis_automata::word::{InputWord, IoTrace, OutputWord};
use prognosis_synth::trace::{ConcreteStep, ConcreteTrace};
use serde::{Deserialize, Serialize};

/// One recorded query: the abstract trace plus per-step concrete fields.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleEntry {
    /// The abstract I/O trace.
    pub abstract_trace: IoTrace,
    /// Concrete numeric fields per step.
    pub steps: Vec<ConcreteStep>,
}

/// The Oracle Table: an append-only record of (abstract, concrete) trace pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleTable {
    entries: Vec<OracleEntry>,
}

impl OracleTable {
    /// An empty table.
    pub fn new() -> Self {
        OracleTable::default()
    }

    /// Records a completed query.
    ///
    /// # Panics
    /// Panics when the abstract trace and concrete steps disagree in length.
    pub fn record(&mut self, abstract_trace: IoTrace, steps: Vec<ConcreteStep>) {
        assert_eq!(
            abstract_trace.len(),
            steps.len(),
            "one concrete step per abstract step"
        );
        self.entries.push(OracleEntry {
            abstract_trace,
            steps,
        });
    }

    /// Convenience: records a query given parallel symbol and field vectors.
    pub fn record_steps(
        &mut self,
        inputs: Vec<(String, Vec<i64>)>,
        outputs: Vec<(String, Vec<i64>)>,
    ) {
        assert_eq!(inputs.len(), outputs.len());
        let input_word: InputWord = inputs.iter().map(|(s, _)| s.as_str()).collect();
        let output_word: OutputWord = outputs.iter().map(|(s, _)| s.as_str()).collect();
        let steps = inputs
            .into_iter()
            .zip(outputs)
            .map(|((_, i), (_, o))| ConcreteStep::new(i, o))
            .collect();
        self.record(IoTrace::new(input_word, output_word), steps);
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in recording order.
    pub fn entries(&self) -> impl Iterator<Item = &OracleEntry> {
        self.entries.iter()
    }

    /// Converts the table into synthesis input ([`ConcreteTrace`]s), keeping
    /// only traces whose abstract outputs the given predicate accepts
    /// (usually "traces consistent with the learned skeleton").
    pub fn to_concrete_traces(&self, mut keep: impl FnMut(&IoTrace) -> bool) -> Vec<ConcreteTrace> {
        self.entries
            .iter()
            .filter(|e| keep(&e.abstract_trace))
            .map(|e| ConcreteTrace::new(e.abstract_trace.clone(), e.steps.clone()))
            .collect()
    }

    /// All concrete traces, unfiltered.
    pub fn all_concrete_traces(&self) -> Vec<ConcreteTrace> {
        self.to_concrete_traces(|_| true)
    }

    /// Clears the table.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends all of `other`'s entries, preserving their order — used to
    /// combine the tables accumulated by parallel SUL workers into one
    /// synthesis input.
    pub fn merge_from(&mut self, other: OracleTable) {
        self.entries.extend(other.entries);
    }
}

/// Implemented by SULs whose adapter accumulates an [`OracleTable`] (§3.2
/// property 4).  Lets generic pipeline code — notably
/// [`crate::pipeline::ParallelLearnOutcome::merged_oracle_table`] — collect
/// the synthesis input without knowing the concrete adapter type.
pub trait HasOracleTable {
    /// The Oracle Table accumulated so far.
    fn oracle_table(&self) -> &OracleTable;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_convert() {
        let mut table = OracleTable::new();
        assert!(table.is_empty());
        table.record_steps(
            vec![
                ("SYN(?,?,0)".to_string(), vec![100, 0]),
                ("ACK(?,?,0)".to_string(), vec![101, 10_001]),
            ],
            vec![
                ("ACK+SYN(?,?,0)".to_string(), vec![10_000, 101]),
                ("NIL".to_string(), vec![]),
            ],
        );
        assert_eq!(table.len(), 1);
        let traces = table.all_concrete_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].steps[0].output_fields, vec![10_000, 101]);
        let filtered = table.to_concrete_traces(|t| t.input[0].as_str() == "FIN(?,?,0)");
        assert!(filtered.is_empty());
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    #[should_panic(expected = "one concrete step per abstract step")]
    fn rejects_mismatched_lengths() {
        let mut table = OracleTable::new();
        table.record(
            IoTrace::new(
                InputWord::from_symbols(["a"]),
                OutputWord::from_symbols(["b"]),
            ),
            vec![],
        );
    }

    #[test]
    fn entries_iterate_in_order() {
        let mut table = OracleTable::new();
        for i in 0..3 {
            table.record_steps(
                vec![(format!("in{i}"), vec![i])],
                vec![(format!("out{i}"), vec![i * 10])],
            );
        }
        let firsts: Vec<String> = table
            .entries()
            .map(|e| e.abstract_trace.input[0].to_string())
            .collect();
        assert_eq!(firsts, vec!["in0", "in1", "in2"]);
    }
}
