//! Parallel, multiplexed membership-query execution across session workers.
//!
//! Learning wall-clock time is dominated by membership queries replayed
//! symbol-by-symbol against the SUL (§4.1).  Queries within a batch are
//! independent — each starts from a reset — so they can run concurrently on
//! *separate* SUL instances.  [`ParallelSulOracle`] owns `N` worker
//! threads, each running a [`SessionScheduler`] that multiplexes up to
//! `max_inflight` concurrent query sessions on a virtual clock; a batch is
//! published to a shared work queue and workers **pull** queries
//! dynamically as their sessions free up (replacing the old static
//! `index % N` sharding), so a slow query never idles the rest of the
//! fleet.  Answers are merged back in query order.  Because every session's
//! SUL is deterministic per query (§3.2 property 3) and answers are pure,
//! the merged answers — and therefore the learned model and all query-cost
//! statistics — are bit-identical to a sequential run, regardless of
//! `(workers, max_inflight)` or which worker happens to grab which query.

use crate::pipeline::{panic_message, LearnError};
use crate::session::{
    add_stats, EngineStats, QueryPhase, SchedulerStats, SessionScheduler, SessionSul,
    SessionSulFactory, SimTime,
};
use crate::sul::SulStats;
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_learner::oracle::MembershipOracle;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued query: `(original batch index, input word)`.
type Job = (usize, InputWord);

enum Reply {
    Answer {
        index: usize,
        output: OutputWord,
    },
    /// A worker's session panicked; the message is the panic payload.
    Dead {
        worker: usize,
        message: String,
    },
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The shared dispatcher ⇄ worker state: a work queue plus its condvar.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

impl Shared {
    /// What a worker should do next given its free capacity and whether it
    /// still has queries in flight.  Blocks only when the worker is
    /// completely idle (an in-flight scheduler must keep driving its
    /// virtual clock instead of sleeping on the queue).  The returned
    /// `more` flag reports whether the queue still held work after the
    /// pull — the adaptive scheduler's growth signal.
    fn next_jobs(&self, capacity: usize, idle: bool) -> WorkerCommand {
        let mut q = self.queue.lock().expect("work queue poisoned");
        loop {
            if capacity > 0 && !q.jobs.is_empty() {
                let take = capacity.min(q.jobs.len());
                let jobs = q.jobs.drain(..take).collect();
                return WorkerCommand::Jobs {
                    jobs,
                    more: !q.jobs.is_empty(),
                };
            }
            if !idle {
                return WorkerCommand::Jobs {
                    jobs: Vec::new(),
                    more: !q.jobs.is_empty(),
                };
            }
            if q.shutdown {
                return WorkerCommand::Exit;
            }
            q = self.available.wait(q).expect("work queue poisoned");
        }
    }
}

enum WorkerCommand {
    Jobs { jobs: Vec<Job>, more: bool },
    Exit,
}

/// Live counters one worker publishes while running.
#[derive(Clone, Copy, Default)]
struct WorkerSnapshot {
    sul: SulStats,
    scheduler: SchedulerStats,
}

struct Worker<Sn> {
    handle: JoinHandle<(Vec<Sn>, SchedulerStats)>,
    snapshot: Arc<Mutex<WorkerSnapshot>>,
}

/// A membership oracle that fans query batches out to worker threads, each
/// multiplexing `max_inflight` concurrent SUL sessions on virtual time.
pub struct ParallelSulOracle<Sn: SessionSul> {
    shared: Arc<Shared>,
    reply_rx: Receiver<Reply>,
    workers: Vec<Worker<Sn>>,
    max_inflight: usize,
    queries: u64,
    batches: u64,
    /// Phase the learner last announced via
    /// [`MembershipOracle::note_phase`]; dispatches are attributed to it.
    current_phase: QueryPhase,
    /// Dispatcher-side accumulators (batch-size histogram, occupancy
    /// timeline, per-phase stats) that [`ParallelSulOracle::engine_stats`]
    /// folds into the reported [`EngineStats`].
    telemetry: EngineStats,
}

/// The result of shutting the engine down: the session SULs (adapter-side
/// state flushed) plus the aggregated engine statistics.
pub struct EngineShutdown<S> {
    /// All session SULs, worker-major (worker 0's sessions first).  With
    /// `max_inflight` = 1 this is exactly one SUL per worker.
    pub suls: Vec<S>,
    /// Aggregated scheduler statistics across all workers.
    pub engine: EngineStats,
}

impl<Sn: SessionSul + Send + 'static> ParallelSulOracle<Sn> {
    /// Spawns `workers` threads with one session each (the blocking
    /// configuration: parallelism without multiplexing).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn spawn<F>(factory: &F, workers: usize) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        Self::spawn_with(factory, workers, 1)
    }

    /// Spawns `workers` threads, each multiplexing `max_inflight` sessions
    /// minted by `factory` over one shared virtual clock.
    ///
    /// # Panics
    /// Panics when `workers` or `max_inflight` is zero.
    pub fn spawn_with<F>(factory: &F, workers: usize, max_inflight: usize) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        assert!(workers >= 1, "a parallel oracle needs at least one worker");
        assert!(max_inflight >= 1, "each worker needs at least one session");
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let (reply_tx, reply_rx) = channel::<Reply>();
        let workers = (0..workers)
            .map(|worker_id| {
                // One session group (and, for networked transports, one
                // shared netsim network attached to this clock) per worker.
                let (sessions, clock) = factory.create_worker_sessions(max_inflight);
                let shared = Arc::clone(&shared);
                let reply_tx = reply_tx.clone();
                let snapshot = Arc::new(Mutex::new(WorkerSnapshot::default()));
                let published = Arc::clone(&snapshot);
                let handle = std::thread::spawn(move || {
                    // Adaptive pool: start with one active slot, grow while
                    // demand saturates the pool, shrink when a work window
                    // cannot fill it.  `max_inflight` is the cap.
                    let mut scheduler =
                        SessionScheduler::with_clock(sessions, clock).with_adaptive_inflight(1);
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        worker_loop(&shared, &mut scheduler, &reply_tx, &published);
                    }));
                    if let Err(payload) = outcome {
                        let _ = reply_tx.send(Reply::Dead {
                            worker: worker_id,
                            message: panic_message(payload.as_ref()),
                        });
                        std::panic::resume_unwind(payload);
                    }
                    let stats = scheduler.stats();
                    (scheduler.into_sessions(), stats)
                });
                Worker { handle, snapshot }
            })
            .collect();
        ParallelSulOracle {
            shared,
            reply_rx,
            workers,
            max_inflight,
            queries: 0,
            batches: 0,
            current_phase: QueryPhase::default(),
            telemetry: EngineStats::default(),
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Session slots per worker.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Number of batches dispatched so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches
    }

    /// Aggregated interaction counters across all worker sessions, as of
    /// the most recently answered batch.
    pub fn stats(&self) -> SulStats {
        self.workers
            .iter()
            .map(|w| w.snapshot.lock().expect("snapshot poisoned").sul)
            .fold(SulStats::default(), add_stats)
    }

    /// Aggregated engine statistics, as of the most recently answered
    /// batch (final numbers come from [`ParallelSulOracle::shutdown`]).
    pub fn engine_stats(&self) -> EngineStats {
        let mut engine = self.telemetry.clone();
        engine.workers = self.workers.len() as u64;
        engine.max_inflight = self.max_inflight as u64;
        for w in &self.workers {
            engine.absorb(&w.snapshot.lock().expect("snapshot poisoned").scheduler);
        }
        engine
    }

    /// Summed (busy session-µs, worker virtual-µs) across the workers'
    /// published snapshots — the delta basis for per-dispatch attribution.
    fn busy_virtual_snapshot(&self) -> (u64, u64) {
        self.workers
            .iter()
            .map(|w| {
                let snap = w.snapshot.lock().expect("snapshot poisoned").scheduler;
                (snap.busy_session_micros, snap.virtual_elapsed_micros)
            })
            .fold((0, 0), |(b, v), (sb, sv)| (b + sb, v + sv))
    }

    /// Shuts the workers down, flushes every session (a final reset pushes
    /// the last query into adapter-side state such as the Oracle Table) and
    /// returns the session SULs plus final engine statistics.  A worker
    /// that panicked surfaces as [`LearnError::WorkerPanicked`] instead of
    /// poisoning the caller.
    pub fn shutdown(mut self) -> Result<EngineShutdown<Sn::Sul>, LearnError> {
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        let mut engine = self.telemetry.clone();
        engine.workers = self.workers.len() as u64;
        engine.max_inflight = self.max_inflight as u64;
        let mut suls = Vec::with_capacity(self.workers.len() * self.max_inflight);
        for (worker_id, worker) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            let (sessions, stats) =
                worker
                    .handle
                    .join()
                    .map_err(|payload| LearnError::WorkerPanicked {
                        worker: worker_id,
                        message: panic_message(payload.as_ref()),
                    })?;
            engine.absorb(&stats);
            for mut session in sessions {
                session.start_reset(SimTime::ZERO);
                suls.push(session.into_sul());
            }
        }
        Ok(EngineShutdown { suls, engine })
    }

    /// Shuts down and returns just the session SULs (see
    /// [`ParallelSulOracle::shutdown`]).
    pub fn into_suls(self) -> Result<Vec<Sn::Sul>, LearnError> {
        self.shutdown().map(|s| s.suls)
    }

    fn dispatch(&mut self, inputs: &[InputWord]) -> Vec<OutputWord> {
        self.batches += 1;
        self.queries += inputs.len() as u64;
        let (busy_before, virtual_before) = self.busy_virtual_snapshot();
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.jobs.extend(inputs.iter().cloned().enumerate());
        }
        self.shared.available.notify_all();
        let mut results: Vec<Option<OutputWord>> = vec![None; inputs.len()];
        let mut received = 0;
        while received < inputs.len() {
            match self.reply_rx.recv() {
                Ok(Reply::Answer { index, output }) => {
                    debug_assert!(results[index].is_none(), "query answered twice");
                    results[index] = Some(output);
                    received += 1;
                }
                Ok(Reply::Dead { worker, message }) => {
                    // Relay the worker's death up through the learning loop;
                    // `learn_model_parallel` converts it into a `LearnError`.
                    std::panic::panic_any(LearnError::WorkerPanicked { worker, message });
                }
                Err(_) => {
                    std::panic::panic_any(LearnError::EnginePanicked {
                        message: "all session workers exited mid-batch".to_string(),
                    });
                }
            }
        }
        let (busy_after, virtual_after) = self.busy_virtual_snapshot();
        self.telemetry.record_dispatch(
            self.current_phase,
            inputs.len() as u64,
            busy_after.saturating_sub(busy_before),
            virtual_after.saturating_sub(virtual_before),
        );
        results
            .into_iter()
            .map(|out| out.expect("every query index answered"))
            .collect()
    }
}

impl<Sn: SessionSul> Drop for ParallelSulOracle<Sn> {
    fn drop(&mut self) {
        // A dropped oracle (e.g. during a panic unwind) must not leak
        // blocked worker threads.
        if self.workers.is_empty() {
            return;
        }
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shutdown = true;
            q.jobs.clear();
        }
        self.shared.available.notify_all();
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.handle.join();
        }
    }
}

fn worker_loop<Sn: SessionSul>(
    shared: &Shared,
    scheduler: &mut SessionScheduler<Sn>,
    reply_tx: &Sender<Reply>,
    snapshot: &Arc<Mutex<WorkerSnapshot>>,
) {
    loop {
        let was_idle = scheduler.is_idle();
        match shared.next_jobs(scheduler.capacity(), was_idle) {
            WorkerCommand::Exit => return,
            WorkerCommand::Jobs { jobs, more } => {
                let pulled = jobs.len();
                for (index, input) in jobs {
                    scheduler.submit(index, input);
                }
                scheduler.note_pull(pulled, more, was_idle);
            }
        }
        if scheduler.is_idle() {
            continue; // Woken without work; re-check the queue.
        }
        let completed = scheduler.drive();
        if completed.is_empty() {
            continue;
        }
        // Publish counters *before* the answers so `stats()` reads taken
        // after a batch returns always cover that batch.
        {
            let mut snap = snapshot.lock().expect("snapshot poisoned");
            snap.sul = scheduler.sul_stats();
            snap.scheduler = scheduler.stats();
        }
        for (index, output) in completed {
            if reply_tx.send(Reply::Answer { index, output }).is_err() {
                return; // Dispatcher is gone; shut down quietly.
            }
        }
    }
}

impl<Sn: SessionSul + Send + 'static> MembershipOracle for ParallelSulOracle<Sn> {
    fn query(&mut self, input: &InputWord) -> OutputWord {
        self.dispatch(std::slice::from_ref(input))
            .pop()
            .expect("single-query dispatch yields one answer")
    }

    fn query_batch(&mut self, inputs: &[InputWord]) -> Vec<OutputWord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        self.dispatch(inputs)
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }

    fn note_phase(&mut self, phase: QueryPhase) {
        self.current_phase = phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::BlockingSessionFactory;
    use crate::sul::{Sul, SulFactory, SulMembershipOracle};
    use prognosis_automata::alphabet::Symbol;
    use prognosis_automata::known;
    use prognosis_automata::mealy::{MealyMachine, StateId};

    /// A factory-friendly SUL backed by a Mealy machine.
    #[derive(Clone)]
    struct MachineSul {
        machine: MealyMachine,
        state: StateId,
        stats: SulStats,
    }

    impl Sul for MachineSul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            self.stats.symbols_sent += 1;
            let (next, out) = self
                .machine
                .step(self.state, input)
                .expect("symbol in alphabet");
            self.state = next;
            out
        }

        fn reset(&mut self) {
            self.stats.resets += 1;
            self.state = self.machine.initial_state();
        }

        fn stats(&self) -> SulStats {
            self.stats
        }
    }

    struct MachineSulFactory(MealyMachine);

    impl SulFactory for MachineSulFactory {
        type Sul = MachineSul;

        fn create(&self) -> MachineSul {
            MachineSul {
                machine: self.0.clone(),
                state: self.0.initial_state(),
                stats: SulStats::default(),
            }
        }
    }

    fn session_factory(machine: MealyMachine) -> BlockingSessionFactory<MachineSulFactory> {
        BlockingSessionFactory(MachineSulFactory(machine))
    }

    fn words(machine: &MealyMachine, count: usize) -> Vec<InputWord> {
        let alphabet = machine.input_alphabet().clone();
        (0..count)
            .map(|i| {
                (0..=(i % 5))
                    .map(|j| alphabet.get((i + j) % alphabet.len()).unwrap().clone())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_answers_match_sequential_for_any_worker_and_inflight_count() {
        let machine = known::counter(5);
        let factory = session_factory(machine.clone());
        let batch = words(&machine, 23);
        let mut sequential = SulMembershipOracle::new(MachineSulFactory(machine.clone()).create());
        let expected = sequential.query_batch(&batch);
        for (workers, inflight) in [(1, 1), (2, 1), (4, 3), (7, 1), (1, 8)] {
            let mut parallel = ParallelSulOracle::spawn_with(&factory, workers, inflight);
            assert_eq!(parallel.num_workers(), workers);
            assert_eq!(parallel.max_inflight(), inflight);
            let got = parallel.query_batch(&batch);
            assert_eq!(
                got, expected,
                "(workers, inflight) = ({workers}, {inflight}) changed batch answers"
            );
            assert_eq!(parallel.queries_answered(), batch.len() as u64);
        }
    }

    #[test]
    fn single_queries_and_stats_flow_through() {
        let factory = session_factory(known::toggle());
        let mut parallel = ParallelSulOracle::spawn(&factory, 2);
        let word = InputWord::from_symbols(["press", "press", "press"]);
        let out = parallel.query(&word);
        assert_eq!(out, known::toggle().run(&word).unwrap());
        assert_eq!(parallel.stats().symbols_sent, 3);
        assert_eq!(parallel.stats().resets, 1);
        assert_eq!(parallel.batches_dispatched(), 1);
        let suls = parallel.into_suls().expect("clean shutdown");
        assert_eq!(suls.len(), 2);
        assert_eq!(suls.iter().map(|s| s.stats().symbols_sent).sum::<u64>(), 3);
    }

    #[test]
    fn empty_batches_are_answered_without_dispatch() {
        let factory = session_factory(known::toggle());
        let mut parallel = ParallelSulOracle::spawn(&factory, 3);
        assert!(parallel.query_batch(&[]).is_empty());
        assert_eq!(parallel.batches_dispatched(), 0);
    }

    #[test]
    fn dispatches_are_attributed_to_the_announced_phase() {
        let machine = known::counter(4);
        let factory = session_factory(machine.clone());
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 1, 4);
        let batch = words(&machine, 8);
        parallel.note_phase(QueryPhase::Construction);
        parallel.query_batch(&batch[..5]);
        parallel.note_phase(QueryPhase::Equivalence);
        parallel.query_batch(&batch[5..]);
        let engine = parallel.engine_stats();
        assert_eq!(engine.construction.batches, 1);
        assert_eq!(engine.construction.queries, 5);
        assert_eq!(engine.equivalence.batches, 1);
        assert_eq!(engine.equivalence.queries, 3);
        assert_eq!(engine.counterexample.batches, 0);
        // Bucket 2 holds sizes 4..=7, bucket 1 sizes 2..=3.
        assert_eq!(engine.batch_size_histogram[2], 1);
        assert_eq!(engine.batch_size_histogram[1], 1);
        assert_eq!(engine.occupancy_timeline.len(), 2);
        assert_eq!(engine.occupancy_timeline[0].phase, QueryPhase::Construction);
        assert_eq!(engine.occupancy_timeline[1].batch_size, 3);
        // The 5-word batch saturated the 1-slot initial pool, so the
        // adaptive limit grew toward the 4-session cap.
        assert!(
            engine.limit_grows >= 1,
            "a batch larger than the initial limit must grow the pool"
        );
        let shutdown = parallel.shutdown().expect("clean shutdown");
        assert_eq!(shutdown.engine.construction.queries, 5);
        assert_eq!(shutdown.engine.queries_completed, 8);
    }

    #[test]
    fn shutdown_reports_engine_statistics() {
        let machine = known::counter(4);
        let factory = session_factory(machine.clone());
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 2, 3);
        parallel.query_batch(&words(&machine, 12));
        let shutdown = parallel.shutdown().expect("clean shutdown");
        assert_eq!(shutdown.suls.len(), 6, "2 workers × 3 sessions");
        assert_eq!(shutdown.engine.workers, 2);
        assert_eq!(shutdown.engine.max_inflight, 3);
        assert_eq!(shutdown.engine.queries_completed, 12);
    }

    /// A SUL that panics on a poisoned symbol, for the error-path test.
    struct PanickySul;

    impl Sul for PanickySul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            assert!(input.as_str() != "poison", "poisoned symbol");
            Symbol::new("ok")
        }

        fn reset(&mut self) {}
    }

    struct PanickySulFactory;

    impl SulFactory for PanickySulFactory {
        type Sul = PanickySul;

        fn create(&self) -> PanickySul {
            PanickySul
        }
    }

    #[test]
    fn panicking_workers_surface_as_learn_errors_not_hangs() {
        let factory = BlockingSessionFactory(PanickySulFactory);
        let mut parallel = ParallelSulOracle::spawn(&factory, 2);
        let poisoned = vec![InputWord::from_symbols(["poison"])];
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel.query_batch(&poisoned);
        }));
        let payload = outcome.expect_err("the dispatcher must observe the worker death");
        let error = payload
            .downcast_ref::<LearnError>()
            .expect("worker death is relayed as a LearnError");
        assert!(matches!(error, LearnError::WorkerPanicked { .. }));
        assert!(error.to_string().contains("poisoned symbol"));
        drop(parallel); // must not hang or double-panic
    }
}
