//! Parallel membership-query execution across independent SUL instances.
//!
//! Learning wall-clock time is dominated by membership queries replayed
//! symbol-by-symbol against the SUL (§4.1).  Queries within a batch are
//! independent — each starts from a reset — so they can run concurrently on
//! *separate* SUL instances.  [`ParallelSulOracle`] owns `N` worker
//! threads, each holding one SUL minted by a [`SulFactory`]; a batch is
//! sharded over the workers by a fixed `index % N` assignment and the
//! answers are merged back in query order.  Because every SUL instance is
//! deterministic per query (§3.2 property 3), the merged answers — and
//! therefore the learned model — are bit-identical to a sequential run,
//! regardless of the worker count.

use crate::sul::{replay_query, Sul, SulFactory, SulStats};
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_learner::oracle::MembershipOracle;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// One batch shard sent to a worker: `(original index, query)` pairs.
type Job = Vec<(usize, InputWord)>;

/// A worker's answer: the answered shard plus a stats snapshot of its SUL.
type Reply = (Vec<(usize, OutputWord)>, SulStats);

struct Worker<S> {
    job_tx: Sender<Job>,
    reply_rx: Receiver<Reply>,
    handle: JoinHandle<S>,
    /// Stats snapshot from the worker's most recent reply.
    last_stats: SulStats,
}

/// A membership oracle that shards query batches across worker threads,
/// each owning an independent SUL instance.
pub struct ParallelSulOracle<S> {
    workers: Vec<Worker<S>>,
    queries: u64,
    batches: u64,
}

impl<S: Sul + Send + 'static> ParallelSulOracle<S> {
    /// Spawns `workers` threads, each with a fresh SUL from `factory`.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn spawn<F>(factory: &F, workers: usize) -> Self
    where
        F: SulFactory<Sul = S>,
    {
        assert!(workers >= 1, "a parallel oracle needs at least one worker");
        let workers = (0..workers)
            .map(|_| {
                let mut sul = factory.create();
                let (job_tx, job_rx) = channel::<Job>();
                let (reply_tx, reply_rx) = channel::<Reply>();
                let handle = std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let answers: Vec<(usize, OutputWord)> = job
                            .iter()
                            .map(|(index, input)| (*index, replay_query(&mut sul, input)))
                            .collect();
                        if reply_tx.send((answers, sul.stats())).is_err() {
                            break;
                        }
                    }
                    // A final reset flushes the last query into adapter-side
                    // state (e.g. the Oracle Table) before the SUL is
                    // handed back.
                    sul.reset();
                    sul
                });
                Worker {
                    job_tx,
                    reply_rx,
                    handle,
                    last_stats: SulStats::default(),
                }
            })
            .collect();
        ParallelSulOracle {
            workers,
            queries: 0,
            batches: 0,
        }
    }

    /// Number of worker threads (and SUL instances).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of batches dispatched so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches
    }

    /// Aggregated interaction counters across all worker SULs.
    pub fn stats(&self) -> SulStats {
        self.workers
            .iter()
            .fold(SulStats::default(), |acc, w| SulStats {
                symbols_sent: acc.symbols_sent + w.last_stats.symbols_sent,
                resets: acc.resets + w.last_stats.resets,
                concrete_packets_sent: acc.concrete_packets_sent
                    + w.last_stats.concrete_packets_sent,
                concrete_packets_received: acc.concrete_packets_received
                    + w.last_stats.concrete_packets_received,
            })
    }

    /// Shuts the workers down and returns their SULs (e.g. to merge Oracle
    /// Tables for the synthesis stage).  Worker `i`'s SUL is at index `i`;
    /// each has been reset so any pending query is flushed into its
    /// adapter-side state.
    pub fn into_suls(self) -> Vec<S> {
        self.workers
            .into_iter()
            .map(|worker| {
                drop(worker.job_tx);
                drop(worker.reply_rx);
                worker.handle.join().expect("SUL worker thread panicked")
            })
            .collect()
    }

    fn dispatch(&mut self, inputs: &[InputWord]) -> Vec<OutputWord> {
        self.batches += 1;
        self.queries += inputs.len() as u64;
        let n = self.workers.len();
        // Fixed shard→worker assignment: query i goes to worker i % n.  The
        // assignment is part of the oracle's deterministic contract — every
        // worker sees the same query stream on every run with this config.
        let mut shards: Vec<Job> = vec![Vec::new(); n];
        for (index, input) in inputs.iter().enumerate() {
            shards[index % n].push((index, input.clone()));
        }
        let active: Vec<bool> = shards.iter().map(|shard| !shard.is_empty()).collect();
        for (worker, shard) in self.workers.iter().zip(shards) {
            if !shard.is_empty() {
                worker.job_tx.send(shard).expect("SUL worker hung up");
            }
        }
        let mut results: Vec<Option<OutputWord>> = vec![None; inputs.len()];
        for (worker, is_active) in self.workers.iter_mut().zip(active) {
            if !is_active {
                continue;
            }
            let (answers, stats) = worker.reply_rx.recv().expect("SUL worker hung up");
            worker.last_stats = stats;
            for (index, output) in answers {
                results[index] = Some(output);
            }
        }
        results
            .into_iter()
            .map(|out| out.expect("every query index answered by its worker"))
            .collect()
    }
}

impl<S: Sul + Send + 'static> MembershipOracle for ParallelSulOracle<S> {
    fn query(&mut self, input: &InputWord) -> OutputWord {
        self.dispatch(std::slice::from_ref(input))
            .pop()
            .expect("single-query dispatch yields one answer")
    }

    fn query_batch(&mut self, inputs: &[InputWord]) -> Vec<OutputWord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        self.dispatch(inputs)
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sul::SulMembershipOracle;
    use prognosis_automata::alphabet::Symbol;
    use prognosis_automata::known;
    use prognosis_automata::mealy::{MealyMachine, StateId};

    /// A factory-friendly SUL backed by a Mealy machine.
    #[derive(Clone)]
    struct MachineSul {
        machine: MealyMachine,
        state: StateId,
        stats: SulStats,
    }

    impl Sul for MachineSul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            self.stats.symbols_sent += 1;
            let (next, out) = self
                .machine
                .step(self.state, input)
                .expect("symbol in alphabet");
            self.state = next;
            out
        }

        fn reset(&mut self) {
            self.stats.resets += 1;
            self.state = self.machine.initial_state();
        }

        fn stats(&self) -> SulStats {
            self.stats
        }
    }

    struct MachineSulFactory(MealyMachine);

    impl SulFactory for MachineSulFactory {
        type Sul = MachineSul;

        fn create(&self) -> MachineSul {
            MachineSul {
                machine: self.0.clone(),
                state: self.0.initial_state(),
                stats: SulStats::default(),
            }
        }
    }

    fn words(machine: &MealyMachine, count: usize) -> Vec<InputWord> {
        let alphabet = machine.input_alphabet().clone();
        (0..count)
            .map(|i| {
                (0..=(i % 5))
                    .map(|j| alphabet.get((i + j) % alphabet.len()).unwrap().clone())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_answers_match_sequential_for_any_worker_count() {
        let machine = known::counter(5);
        let factory = MachineSulFactory(machine.clone());
        let batch = words(&machine, 23);
        let mut sequential = SulMembershipOracle::new(factory.create());
        let expected = sequential.query_batch(&batch);
        for workers in [1, 2, 4, 7] {
            let mut parallel = ParallelSulOracle::spawn(&factory, workers);
            assert_eq!(parallel.num_workers(), workers);
            let got = parallel.query_batch(&batch);
            assert_eq!(
                got, expected,
                "worker count {workers} changed batch answers"
            );
            assert_eq!(parallel.queries_answered(), batch.len() as u64);
        }
    }

    #[test]
    fn single_queries_and_stats_flow_through() {
        let machine = known::toggle();
        let factory = MachineSulFactory(machine.clone());
        let mut parallel = ParallelSulOracle::spawn(&factory, 2);
        let word = InputWord::from_symbols(["press", "press", "press"]);
        let out = parallel.query(&word);
        assert_eq!(out, machine.run(&word).unwrap());
        assert_eq!(parallel.stats().symbols_sent, 3);
        assert_eq!(parallel.stats().resets, 1);
        assert_eq!(parallel.batches_dispatched(), 1);
        let suls = parallel.into_suls();
        assert_eq!(suls.len(), 2);
        assert_eq!(suls.iter().map(|s| s.stats().symbols_sent).sum::<u64>(), 3);
    }

    #[test]
    fn empty_batches_are_answered_without_dispatch() {
        let factory = MachineSulFactory(known::toggle());
        let mut parallel = ParallelSulOracle::spawn(&factory, 3);
        assert!(parallel.query_batch(&[]).is_empty());
        assert_eq!(parallel.batches_dispatched(), 0);
    }
}
