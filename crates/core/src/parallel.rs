//! Parallel, multiplexed membership-query execution across session workers.
//!
//! Learning wall-clock time is dominated by membership queries replayed
//! symbol-by-symbol against the SUL (§4.1).  Queries within a batch are
//! independent — each starts from a reset — so they can run concurrently on
//! *separate* SUL instances.  [`ParallelSulOracle`] owns `N` worker
//! threads, each running a [`SessionScheduler`] that multiplexes up to
//! `max_inflight` concurrent query sessions on a virtual clock; a batch is
//! published to a shared work queue and workers **pull** queries
//! dynamically as their sessions free up (replacing the old static
//! `index % N` sharding), so a slow query never idles the rest of the
//! fleet.  Answers are merged back in query order.  Because every session's
//! SUL is deterministic per query (§3.2 property 3) and answers are pure,
//! the merged answers — and therefore the learned model and all query-cost
//! statistics — are bit-identical to a sequential run, regardless of
//! `(workers, max_inflight)` or which worker happens to grab which query.

use crate::engine::EnginePool;
use crate::pipeline::{panic_message, LearnError};
use crate::session::{
    add_stats, phase_name, EngineStats, QueryPhase, SchedulerStats, SessionScheduler, SessionSul,
    SessionSulFactory, SimTime,
};
use crate::sul::SulStats;
use prognosis_automata::word::{InputWord, OutputWord};
use prognosis_events::{Event, EventSink, ScopedSink};
use prognosis_learner::oracle::{AsyncAnswer, AsyncQuery, CancelOutcome, MembershipOracle};
use std::collections::{BTreeSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};

/// One queued query.  Blocking batch dispatches and asynchronous
/// continuation submissions share one id space: batch jobs carry ids at or
/// above [`BATCH_ID_BASE`], async tickets stay below it.
struct Job {
    id: u64,
    /// Shared handle to the input word: the learner's allocation travels
    /// through the queue to a session slot without a per-query deep clone.
    input: Arc<InputWord>,
    /// Learning phase the query belongs to; carried with the dispatch so
    /// virtual waits attribute correctly even when phases overlap.
    phase: QueryPhase,
}

/// Ids at or above this value are blocking-batch jobs (`id - BATCH_ID_BASE`
/// is the batch index); below it they are caller-assigned async tickets.
const BATCH_ID_BASE: u64 = 1 << 62;

enum Reply {
    /// One worker harvest: every query that completed in one drive cycle,
    /// plus the worker's cumulative counters as of that harvest.  Batching
    /// the returns means one channel send — and one snapshot publication —
    /// per drive cycle instead of per answer, and the dispatcher never
    /// locks a worker-side mutex to read stats.
    Answers {
        worker: usize,
        answers: Vec<(u64, OutputWord)>,
        snapshot: WorkerSnapshot,
    },
    /// A worker's session panicked; the message is the panic payload.
    Dead { worker: usize, message: String },
}

struct QueueState {
    /// Committed work: blocking batches and non-speculative continuations.
    jobs: VecDeque<Job>,
    /// Speculative work (equivalence words streamed ahead of their
    /// hypothesis).  Drained only after `jobs`, so speculation fills idle
    /// slots without ever queueing ahead of the construction critical path.
    speculative: VecDeque<Job>,
    /// Whether the learner thread is blocked waiting for an answer.  The
    /// quiescence gate: while the learner is *active* it may be about to
    /// submit more work, so a worker with free capacity must not advance
    /// its virtual clock — a late-arriving continuation has to join the
    /// current virtual instant, not one the pool already raced past.
    /// Workers clear this before publishing answers (the learner is about
    /// to react); the learner re-sets it before every blocking receive.
    learner_waiting: bool,
    shutdown: bool,
}

impl QueueState {
    fn is_empty(&self) -> bool {
        self.jobs.is_empty() && self.speculative.is_empty()
    }
}

impl Shared {
    /// Wakes enough workers for `jobs` newly queued queries.  Construction
    /// phases enqueue mostly single queries; waking the whole pool for one
    /// job costs `workers - 1` futile wake-ups per query (painful on small
    /// hosts, where every wake-up is a context switch off the one busy
    /// core), so the wake fans out no wider than the work.
    fn notify_work(&self, jobs: usize) {
        if jobs >= self.workers {
            self.available.notify_all();
        } else {
            for _ in 0..jobs {
                self.available.notify_one();
            }
        }
    }
}

/// Upper bound on the jobs a worker prefetches beyond its free session
/// capacity in one queue lock, and the flush threshold for answers banked
/// between queue visits.  The prefetched tail lands in a worker-local
/// backlog that feeds slots as they free up, so a chunk of queries costs
/// one lock acquisition and one learner wake-up instead of one of each per
/// query.  Fair-share bounded in [`Shared::next_jobs`] so a chunk never
/// starves peer workers of queued work.
const PULL_AHEAD: usize = 64;

/// The shared dispatcher ⇄ worker state: a work queue plus its condvar.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Worker count, fixed at spawn: the fair-share divisor for chunked
    /// pulls (see [`Shared::next_jobs`]).
    workers: usize,
}

impl Shared {
    /// What a worker should do next given its free capacity and whether it
    /// still has queries in flight.  An empty job list tells the worker to
    /// drive its virtual clock instead; that is only allowed once nothing
    /// more could join the current virtual instant — the pool is full, the
    /// learner is blocked waiting for answers, or the engine is shutting
    /// down.  Otherwise the worker sleeps on the queue (in real time; the
    /// virtual clock holds still) so late-arriving continuations and
    /// speculative words overlap the queries already in flight.  The
    /// returned `more` flag reports whether the queue still held work
    /// after the pull — the adaptive scheduler's growth signal.
    fn next_jobs(&self, capacity: usize, idle: bool) -> Option<WorkerCommand> {
        let mut q = self.queue.lock().expect("work queue poisoned");
        if capacity > 0 && !q.is_empty() {
            // Chunked pull: take the free-capacity fill plus a
            // fair-share prefetch for the worker-local backlog.  One
            // lock acquisition moves a whole chunk of queries; the
            // fair-share bound (an equal split of what is queued right
            // now) keeps one worker from walking off with work its
            // peers could be running.
            let queued = q.jobs.len() + q.speculative.len();
            let fair_share = queued.div_ceil(self.workers.max(1));
            let want = capacity + fair_share.min(PULL_AHEAD);
            let mut jobs: Vec<Job> = Vec::with_capacity(want.min(queued));
            while jobs.len() < want {
                if let Some(job) = q.jobs.pop_front() {
                    jobs.push(job);
                } else if let Some(job) = q.speculative.pop_front() {
                    jobs.push(job);
                } else {
                    break;
                }
            }
            return Some(WorkerCommand::Jobs {
                jobs,
                more: !q.is_empty(),
            });
        }
        if q.shutdown {
            if idle {
                return Some(WorkerCommand::Exit);
            }
            return Some(WorkerCommand::Jobs {
                jobs: Vec::new(),
                more: !q.is_empty(),
            });
        }
        if !idle && q.learner_waiting {
            // The learner has quiesced (blocked on an answer), so no
            // further work can join this virtual instant: advancing the
            // clock is the only way forward.  A full pool with work
            // still queued does NOT license an advance by itself — the
            // learner may be mid-computation, about to add this
            // instant's construction continuations behind the backlog.
            return Some(WorkerCommand::Jobs {
                jobs: Vec::new(),
                more: !q.is_empty(),
            });
        }
        None
    }

    /// Parks the worker on the queue condvar until something that could
    /// change [`Shared::next_jobs`]'s answer arrives.  Re-checks the
    /// predicate under the lock (the wake condition may have landed between
    /// an unlocked poll and this call), waits at most one condvar round,
    /// and lets the caller re-poll — spurious wake-ups are handled by the
    /// poll loop, not here.
    fn wait_for_work(&self, capacity: usize, idle: bool) {
        let q = self.queue.lock().expect("work queue poisoned");
        let ready = |q: &QueueState| {
            (capacity > 0 && !q.is_empty()) || q.shutdown || (!idle && q.learner_waiting)
        };
        if !ready(&q) {
            let _unused = self.available.wait(q).expect("work queue poisoned");
        }
    }
}

enum WorkerCommand {
    Jobs { jobs: Vec<Job>, more: bool },
    Exit,
}

/// Cumulative counters one worker ships with each answer harvest.
#[derive(Clone, Copy, Default)]
struct WorkerSnapshot {
    sul: SulStats,
    scheduler: SchedulerStats,
}

/// What a finished worker loop reports back: its sessions and final stats,
/// or the panic payload that killed it.
type WorkerResult<Sn> = std::thread::Result<(Vec<Sn>, SchedulerStats)>;

struct Worker<Sn> {
    result_rx: Receiver<WorkerResult<Sn>>,
}

/// A membership oracle that fans query batches out to worker threads, each
/// multiplexing `max_inflight` concurrent SUL sessions on virtual time.
///
/// The workers run on an [`EnginePool`]: either a private pool this oracle
/// constructed for itself ([`ParallelSulOracle::spawn_with`], the classic
/// one-oracle-per-pool shape) or a shared pool several concurrent learn
/// tasks lease slots from ([`ParallelSulOracle::spawn_on_pool`], the
/// campaign shape).  Which pool hosts the workers never affects answers or
/// statistics — everything observable runs on virtual time.
pub struct ParallelSulOracle<Sn: SessionSul> {
    shared: Arc<Shared>,
    reply_rx: Receiver<Reply>,
    workers: Vec<Worker<Sn>>,
    /// Most recent counters shipped by each worker (with its last answer
    /// harvest).  Reading stats is a plain field access on the dispatcher
    /// thread — no cross-thread lock on any stats path.
    snapshots: Vec<WorkerSnapshot>,
    /// The pool backing `spawn_with`-style oracles; `None` when the workers
    /// are leased from a caller-owned shared pool.  Dropped (joining its
    /// threads) after the workers have been drained.
    owned_pool: Option<EnginePool>,
    max_inflight: usize,
    queries: u64,
    batches: u64,
    /// Phase the learner last announced via
    /// [`MembershipOracle::note_phase`]; blocking dispatches are attributed
    /// to it (async submissions carry their own per-query tag instead).
    current_phase: QueryPhase,
    /// Dispatcher-side accumulators (batch-size histogram, occupancy
    /// timeline, per-phase stats) that [`ParallelSulOracle::engine_stats`]
    /// folds into the reported [`EngineStats`].
    telemetry: EngineStats,
    /// Async tickets submitted but not yet answered (or cancelled), with
    /// their speculative flag.
    outstanding: std::collections::HashMap<u64, bool>,
    /// Cancelled tickets whose query was already executing; their answers
    /// are dropped on arrival.
    discard: BTreeSet<u64>,
    /// Async answers received (e.g. while a blocking batch was draining)
    /// but not yet handed to the caller.
    async_ready: Vec<AsyncAnswer>,
    /// Answered non-speculative tickets not yet handed to the learner.
    /// Delivery is strictly in submission order
    /// ([`ParallelSulOracle::delivery_queue`]) and at most one
    /// non-speculative answer per poll — always, not just while a sink is
    /// attached — so the learner's continuation submissions (and with them
    /// the deterministic event stream) are independent of wall-clock
    /// completion order, and attaching a sink never perturbs the query
    /// schedule it observes.
    ready_answers: std::collections::HashMap<u64, OutputWord>,
    /// Non-speculative async tickets in submission order, awaiting their
    /// delivery turn.
    delivery_queue: VecDeque<u64>,
    /// (busy, virtual) totals at the previous telemetry sample — the delta
    /// basis for async timeline samples.
    last_busy_virtual: (u64, u64),
    /// Query scopes flushed to the event stream so far (batch commits plus
    /// frontier flushes) — the logical clock [`PhaseEnter`] stamps.  Issued
    /// counts would leak the engine shape through rolled-back speculation;
    /// flushed counts are a pure function of the stream itself.
    ///
    /// [`PhaseEnter`]: Event::PhaseEnter
    flushed_queries: u64,
    /// The staging event sink: workers stage each query's events under its
    /// job id, and this dispatcher thread commits scopes in learner order
    /// (batch-index order for blocking dispatch, submission order through
    /// the [`ParallelSulOracle::pump_scopes`] frontier for async tickets)
    /// — which is what makes the deterministic stream byte-identical
    /// across engine shapes.
    events: Option<Arc<ScopedSink>>,
    /// The deterministic-stream frontier: every deterministic emission —
    /// async query scopes, blocking-batch scopes, phase transitions,
    /// speculation-commit markers — queues here in learner order and
    /// reaches the inner sink strictly front-to-back (maintained only
    /// while an event sink is attached).
    scope_queue: VecDeque<FrontierItem>,
    /// Flush state per queued async ticket.
    scope_state: std::collections::HashMap<u64, ScopeState>,
    /// Next unused blocking-batch scope id offset; every dispatch claims a
    /// fresh id range so an earlier batch's scope can still sit unflushed
    /// in the frontier when the next batch starts staging.
    batch_cursor: u64,
}

/// One slot in the ordered deterministic-stream frontier.  Everything the
/// deterministic stream carries flows through this queue in learner
/// order, so the serialized log is a pure function of the learner's call
/// sequence — never of wall-clock completion order.
enum FrontierItem {
    /// An async ticket's staged scope; flushes per its [`ScopeState`].
    Scope(u64),
    /// A blocking-batch query scope; fully staged when enqueued (the
    /// dispatch that created it drained every answer first).
    Batch(u64),
    /// A phase-transition marker; emits [`Event::PhaseEnter`] stamped with
    /// the flushed-scope count at its queue position.
    Phase(QueryPhase),
    /// A speculation-commit marker, enqueued behind the scopes it commits.
    Commit(u64),
}

/// Where one async ticket's staged event scope stands in the ordered
/// flush.  A non-speculative ticket's answer is final the moment the
/// learner consumes it (the dataflow learner never rolls sift
/// continuations back), so its scope queues at submission and flushes on
/// arrival.  A speculative ticket's scope stays *out* of the frontier
/// until the learner's explicit `commit_queries`: how far speculation has
/// been submitted when construction work interleaves follows the engine
/// shape, so a submission-time slot would leak it — the commit is the
/// first point where the scope's place in the stream is learner-determined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScopeState {
    /// Non-speculative: queued at submission, flushes when its answer
    /// arrives.
    Auto,
    /// Speculative: not yet queued; waits for an explicit commit.
    Spec,
    /// Answered (non-speculative) or committed (speculative): flushes as
    /// soon as every earlier-queued slot has flushed or died.
    Ready,
    /// Cancelled; the scope was discarded and the slot pops silently.
    Dead,
}

/// The result of shutting the engine down: the session SULs (adapter-side
/// state flushed) plus the aggregated engine statistics.
pub struct EngineShutdown<S> {
    /// All session SULs, worker-major (worker 0's sessions first).  With
    /// `max_inflight` = 1 this is exactly one SUL per worker.
    pub suls: Vec<S>,
    /// Aggregated scheduler statistics across all workers.
    pub engine: EngineStats,
}

impl<Sn: SessionSul + Send + 'static> ParallelSulOracle<Sn> {
    /// Spawns `workers` threads with one session each (the blocking
    /// configuration: parallelism without multiplexing).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn spawn<F>(factory: &F, workers: usize) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        Self::spawn_with(factory, workers, 1)
    }

    /// Spawns `workers` threads, each multiplexing `max_inflight` sessions
    /// minted by `factory` over one shared virtual clock.  The oracle owns
    /// a private [`EnginePool`] sized to exactly these workers; use
    /// [`ParallelSulOracle::spawn_on_pool`] to lease slots from a shared
    /// pool instead.
    ///
    /// # Panics
    /// Panics when `workers` or `max_inflight` is zero.
    pub fn spawn_with<F>(factory: &F, workers: usize, max_inflight: usize) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        Self::spawn_with_events(factory, workers, max_inflight, None, false)
    }

    /// [`ParallelSulOracle::spawn_with`] plus an event sink: the engine's
    /// telemetry flows into `sink` ([`prognosis_events`]), with diagnostic
    /// events gated by `diagnostics`.
    ///
    /// # Panics
    /// Panics when `workers` or `max_inflight` is zero.
    pub fn spawn_with_events<F>(
        factory: &F,
        workers: usize,
        max_inflight: usize,
        sink: Option<Arc<dyn EventSink>>,
        diagnostics: bool,
    ) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        assert!(workers >= 1, "a parallel oracle needs at least one worker");
        let pool = EnginePool::new(workers);
        let mut oracle = Self::spawn_on_pool_with_events(
            &pool,
            factory,
            workers,
            max_inflight,
            sink,
            diagnostics,
        );
        oracle.owned_pool = Some(pool);
        oracle
    }

    /// Spawns the oracle's `workers` worker loops on slots leased from
    /// `pool`, blocking until that many slots are free.  This is how
    /// several concurrent learn tasks — possibly with different SUL types —
    /// share one engine: each task's oracle holds its lease for the
    /// oracle's lifetime and the slots return to the pool on shutdown (or
    /// drop).
    ///
    /// # Panics
    /// Panics when `workers` or `max_inflight` is zero, or when `workers`
    /// exceeds the pool size.
    pub fn spawn_on_pool<F>(
        pool: &EnginePool,
        factory: &F,
        workers: usize,
        max_inflight: usize,
    ) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        Self::spawn_on_pool_with_events(pool, factory, workers, max_inflight, None, false)
    }

    /// [`ParallelSulOracle::spawn_on_pool`] plus an event sink (see
    /// [`ParallelSulOracle::spawn_with_events`]).
    ///
    /// # Panics
    /// Panics when `workers` or `max_inflight` is zero, or when `workers`
    /// exceeds the pool size.
    pub fn spawn_on_pool_with_events<F>(
        pool: &EnginePool,
        factory: &F,
        workers: usize,
        max_inflight: usize,
        sink: Option<Arc<dyn EventSink>>,
        diagnostics: bool,
    ) -> Self
    where
        F: SessionSulFactory<Session = Sn>,
    {
        assert!(workers >= 1, "a parallel oracle needs at least one worker");
        assert!(max_inflight >= 1, "each worker needs at least one session");
        let events = sink.map(|sink| ScopedSink::new(sink, diagnostics));
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                speculative: VecDeque::new(),
                learner_waiting: false,
                shutdown: false,
            }),
            available: Condvar::new(),
            workers,
        });
        let (reply_tx, reply_rx) = channel::<Reply>();
        let mut lease = pool.lease(workers);
        let num_workers = workers;
        let workers = (0..workers)
            .map(|worker_id| {
                // One session group (and, for networked transports, one
                // shared netsim network attached to this clock) per worker.
                let (sessions, clock) = factory.create_worker_sessions(max_inflight);
                let shared = Arc::clone(&shared);
                let reply_tx = reply_tx.clone();
                let worker_events = events.clone();
                let (result_tx, result_rx) = channel::<WorkerResult<Sn>>();
                lease.submit_worker_releasing(move |slot| {
                    // Adaptive pool: start with one active slot, grow while
                    // demand saturates the pool, shrink when a work window
                    // cannot fill it.  `max_inflight` is the cap.
                    let mut scheduler =
                        SessionScheduler::with_clock(sessions, clock).with_adaptive_inflight(1);
                    if let Some(sink) = worker_events {
                        scheduler = scheduler.with_event_sink(sink);
                    }
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        worker_loop(&shared, &mut scheduler, &reply_tx, worker_id);
                    }));
                    let result = match outcome {
                        Ok(()) => {
                            let stats = scheduler.stats();
                            Ok((scheduler.into_sessions(), stats))
                        }
                        Err(payload) => {
                            // Report the death both on the reply path (so a
                            // dispatcher blocked mid-batch wakes up) and as
                            // this worker's final result.  The panic is NOT
                            // re-raised: the hosting pool thread survives to
                            // serve later leases.
                            let _ = reply_tx.send(Reply::Dead {
                                worker: worker_id,
                                message: panic_message(payload.as_ref()),
                            });
                            Err(payload)
                        }
                    };
                    // Slot back first, report second: `shutdown()` returns
                    // only after receiving every report, so callers that
                    // joined a run observe its slots as already free.
                    drop(slot);
                    let _ = result_tx.send(result);
                });
                Worker { result_rx }
            })
            .collect();
        ParallelSulOracle {
            shared,
            reply_rx,
            workers,
            snapshots: vec![WorkerSnapshot::default(); num_workers],
            owned_pool: None,
            max_inflight,
            queries: 0,
            batches: 0,
            current_phase: QueryPhase::default(),
            telemetry: EngineStats::default(),
            outstanding: std::collections::HashMap::new(),
            discard: BTreeSet::new(),
            async_ready: Vec::new(),
            ready_answers: std::collections::HashMap::new(),
            delivery_queue: VecDeque::new(),
            last_busy_virtual: (0, 0),
            flushed_queries: 0,
            events,
            scope_queue: VecDeque::new(),
            scope_state: std::collections::HashMap::new(),
            batch_cursor: 0,
        }
    }

    /// The oracle's staging event sink, when one was attached at spawn.
    pub fn event_sink(&self) -> Option<Arc<ScopedSink>> {
        self.events.clone()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Session slots per worker.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Number of batches dispatched so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches
    }

    /// Aggregated interaction counters across all worker sessions, as of
    /// the most recently answered batch.
    pub fn stats(&self) -> SulStats {
        self.snapshots
            .iter()
            .map(|s| s.sul)
            .fold(SulStats::default(), add_stats)
    }

    /// Aggregated engine statistics, as of the most recently answered
    /// batch (final numbers come from [`ParallelSulOracle::shutdown`]).
    pub fn engine_stats(&self) -> EngineStats {
        let mut engine = self.telemetry.clone();
        engine.workers = self.workers.len() as u64;
        engine.max_inflight = self.max_inflight as u64;
        for snapshot in &self.snapshots {
            engine.absorb(&snapshot.scheduler);
        }
        engine
    }

    /// Summed (busy session-µs, worker virtual-µs) across the workers'
    /// shipped snapshots — the delta basis for per-dispatch attribution.
    fn busy_virtual_snapshot(&self) -> (u64, u64) {
        self.snapshots
            .iter()
            .map(|s| {
                (
                    s.scheduler.busy_session_micros,
                    s.scheduler.virtual_elapsed_micros,
                )
            })
            .fold((0, 0), |(b, v), (sb, sv)| (b + sb, v + sv))
    }

    /// Shuts the workers down, flushes every session (a final reset pushes
    /// the last query into adapter-side state such as the Oracle Table) and
    /// returns the session SULs plus final engine statistics.  A worker
    /// that panicked surfaces as [`LearnError::WorkerPanicked`] instead of
    /// poisoning the caller.
    pub fn shutdown(mut self) -> Result<EngineShutdown<Sn::Sul>, LearnError> {
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        let mut engine = self.telemetry.clone();
        engine.workers = self.workers.len() as u64;
        engine.max_inflight = self.max_inflight as u64;
        let mut suls = Vec::with_capacity(self.workers.len() * self.max_inflight);
        for (worker_id, worker) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            let (sessions, stats) = worker
                .result_rx
                .recv()
                .map_err(|_| LearnError::EnginePanicked {
                    message: format!("session worker {worker_id} vanished without reporting"),
                })?
                .map_err(|payload| LearnError::WorkerPanicked {
                    worker: worker_id,
                    message: panic_message(payload.as_ref()),
                })?;
            engine.absorb(&stats);
            for mut session in sessions {
                session.start_reset(SimTime::ZERO);
                suls.push(session.into_sul());
            }
        }
        if let Some(events) = &self.events {
            // Never-committed scopes (uncommitted continuations, torn-off
            // speculation) die with the engine; flush what was committed.
            events.clear();
            events.flush();
        }
        Ok(EngineShutdown { suls, engine })
    }

    /// Shuts down and returns just the session SULs (see
    /// [`ParallelSulOracle::shutdown`]).
    pub fn into_suls(self) -> Result<Vec<Sn::Sul>, LearnError> {
        self.shutdown().map(|s| s.suls)
    }

    fn dispatch(&mut self, inputs: &[Arc<InputWord>]) -> Vec<OutputWord> {
        self.batches += 1;
        self.queries += inputs.len() as u64;
        let (busy_before, virtual_before) = self.busy_virtual_snapshot();
        let phase = self.current_phase;
        // A fresh id range per dispatch: the previous batch's scopes may
        // still be queued behind an unanswered async scope in the frontier,
        // so their staging ids must not be reused.
        let base = BATCH_ID_BASE + self.batch_cursor;
        self.batch_cursor += inputs.len() as u64;
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.jobs
                .extend(inputs.iter().cloned().enumerate().map(|(i, input)| Job {
                    id: base + i as u64,
                    input,
                    phase,
                }));
        }
        self.shared.notify_work(inputs.len());
        let mut results: Vec<Option<OutputWord>> = vec![None; inputs.len()];
        let mut received = 0;
        while received < inputs.len() {
            match self.recv_reply() {
                Ok(Reply::Answers {
                    worker,
                    answers,
                    snapshot,
                }) => {
                    self.telemetry.reply_messages += 1;
                    self.snapshots[worker] = snapshot;
                    for (id, output) in answers {
                        if id >= BATCH_ID_BASE {
                            let index = (id - base) as usize;
                            debug_assert!(results[index].is_none(), "query answered twice");
                            results[index] = Some(output);
                            received += 1;
                        } else {
                            // An async continuation's answer landing
                            // mid-batch: buffer it for the next poll.
                            self.route_async_answer(id, output);
                        }
                    }
                }
                Ok(Reply::Dead { worker, message }) => {
                    // Relay the worker's death up through the learning loop;
                    // `learn_model_parallel` converts it into a `LearnError`.
                    std::panic::panic_any(LearnError::WorkerPanicked { worker, message });
                }
                Err(_) => {
                    std::panic::panic_any(LearnError::EnginePanicked {
                        message: "all session workers exited mid-batch".to_string(),
                    });
                }
            }
        }
        if self.events.is_some() {
            // The whole batch has answered, so every scope is fully
            // staged — but earlier-submitted async scopes may still be
            // pending, so the batch queues behind them in the frontier
            // instead of jumping the stream.
            for i in 0..inputs.len() as u64 {
                self.scope_queue.push_back(FrontierItem::Batch(base + i));
            }
            self.pump_scopes();
        }
        let (busy_after, virtual_after) = self.busy_virtual_snapshot();
        self.last_busy_virtual = (busy_after, virtual_after);
        self.telemetry.record_dispatch(
            self.current_phase,
            inputs.len() as u64,
            busy_after.saturating_sub(busy_before),
            virtual_after.saturating_sub(virtual_before),
        );
        if let Some(events) = &self.events {
            events.diagnostic(Event::Occupancy {
                time: virtual_after,
                phase: phase_name(self.current_phase),
                batch: inputs.len() as u64,
                busy: busy_after.saturating_sub(busy_before),
                worker: virtual_after.saturating_sub(virtual_before),
            });
        }
        results
            .into_iter()
            .map(|out| out.expect("every query index answered"))
            .collect()
    }

    /// Blocks for the next worker reply, with the quiescence gate raised:
    /// the learner announces it is out of work to submit *before* parking,
    /// which is what licenses the workers to advance their virtual clocks.
    /// The flag is lowered again on wake (the worker also lowers it before
    /// sending, but this learner-side clear closes the race where the
    /// answer is consumed before the worker's clear lands).
    fn recv_reply(&mut self) -> Result<Reply, std::sync::mpsc::RecvError> {
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.learner_waiting = true;
        }
        self.shared.available.notify_all();
        let reply = self.reply_rx.recv();
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            q.learner_waiting = false;
        }
        reply
    }

    /// Buffers or discards one async answer.
    fn route_async_answer(&mut self, id: u64, output: OutputWord) {
        if self.discard.remove(&id) {
            // Cancelled while executing; the answer is waste, and so is
            // anything the in-flight query staged after the cancel-time
            // discard.
            if let Some(events) = &self.events {
                events.discard(id);
            }
            return;
        }
        match self.outstanding.remove(&id) {
            Some(false) => {
                // Non-speculative: held back for in-submission-order
                // delivery, and its event scope (if a sink is attached)
                // becomes flushable now.
                self.ready_answers.insert(id, output);
                if self.events.is_some() {
                    if let Some(state @ &mut ScopeState::Auto) = self.scope_state.get_mut(&id) {
                        *state = ScopeState::Ready;
                        self.pump_scopes();
                    }
                }
            }
            Some(true) => {
                // Speculative answers surface in arrival order: the
                // learner stores them by suite index, so delivery order
                // cannot reach the stream, and holding them back would
                // stall resolve walks behind unrelated construction work.
                self.async_ready.push(AsyncAnswer { ticket: id, output });
            }
            None => {}
        }
    }

    /// Flushes frontier slots whose turn has come: strictly front to back,
    /// stopping at the first scope still awaiting its answer or commit.
    /// The flush *order* is therefore learner-determined even though the
    /// flush *times* follow wall-clock completions, which is what keeps
    /// the deterministic stream byte-identical across engine shapes.
    fn pump_scopes(&mut self) {
        let Some(events) = &self.events else {
            return;
        };
        while let Some(front) = self.scope_queue.front() {
            match front {
                FrontierItem::Scope(id) => match self.scope_state.get(id) {
                    Some(ScopeState::Ready) => {
                        events.commit(*id);
                        self.flushed_queries += 1;
                        self.scope_state.remove(id);
                    }
                    Some(ScopeState::Dead) => {
                        self.scope_state.remove(id);
                    }
                    _ => break,
                },
                FrontierItem::Batch(id) => {
                    events.commit(*id);
                    self.flushed_queries += 1;
                }
                FrontierItem::Phase(phase) => {
                    // `seq` is the flushed-scope count at this queue
                    // position — a logical clock recomputable from the
                    // stream itself, immune to how far speculation
                    // happened to run ahead.
                    events.deterministic(Event::PhaseEnter {
                        phase: phase_name(*phase),
                        seq: self.flushed_queries,
                    });
                }
                FrontierItem::Commit(words) => {
                    events.deterministic(Event::SpeculationCommit { words: *words });
                }
            }
            self.scope_queue.pop_front();
        }
    }

    /// Drains every reply currently available; with `wait` set and no
    /// answer buffered yet, blocks for the first one (only while tickets
    /// are actually outstanding).
    fn drain_ready(&mut self, wait: bool) -> Vec<AsyncAnswer> {
        loop {
            loop {
                match self.reply_rx.try_recv() {
                    Ok(Reply::Answers {
                        worker,
                        answers,
                        snapshot,
                    }) => {
                        self.telemetry.reply_messages += 1;
                        self.snapshots[worker] = snapshot;
                        for (id, output) in answers {
                            debug_assert!(id < BATCH_ID_BASE, "batch reply outside dispatch");
                            self.route_async_answer(id, output);
                        }
                    }
                    Ok(Reply::Dead { worker, message }) => {
                        std::panic::panic_any(LearnError::WorkerPanicked { worker, message });
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if self.outstanding.is_empty() {
                            break;
                        }
                        std::panic::panic_any(LearnError::EnginePanicked {
                            message: "all session workers exited with queries outstanding"
                                .to_string(),
                        });
                    }
                }
            }
            self.promote_ready();
            if !wait
                || !self.async_ready.is_empty()
                || (self.outstanding.is_empty() && self.ready_answers.is_empty())
            {
                break;
            }
            match self.recv_reply() {
                Ok(Reply::Answers {
                    worker,
                    answers,
                    snapshot,
                }) => {
                    self.telemetry.reply_messages += 1;
                    self.snapshots[worker] = snapshot;
                    for (id, output) in answers {
                        self.route_async_answer(id, output);
                    }
                }
                Ok(Reply::Dead { worker, message }) => {
                    std::panic::panic_any(LearnError::WorkerPanicked { worker, message });
                }
                Err(_) => {
                    std::panic::panic_any(LearnError::EnginePanicked {
                        message: "all session workers exited with queries outstanding".to_string(),
                    });
                }
            }
        }
        std::mem::take(&mut self.async_ready)
    }

    /// Moves at most one held-back non-speculative answer into the
    /// surfacing buffer — the one whose submission-order turn it is.
    /// Delivering one at a time keeps the learner's reaction windows (and
    /// so the batches it submits next, and the cache's prefix-subsumption
    /// groups inside them) identical across engine shapes.
    fn promote_ready(&mut self) {
        while let Some(&front) = self.delivery_queue.front() {
            if let Some(output) = self.ready_answers.remove(&front) {
                self.delivery_queue.pop_front();
                self.async_ready.push(AsyncAnswer {
                    ticket: front,
                    output,
                });
                break;
            }
            if self.outstanding.contains_key(&front) {
                break; // Still executing; later answers wait their turn.
            }
            self.delivery_queue.pop_front(); // Cancelled; slot pops silently.
        }
    }
}

impl<Sn: SessionSul> Drop for ParallelSulOracle<Sn> {
    fn drop(&mut self) {
        // A dropped oracle (e.g. during a panic unwind) must not leak
        // blocked — or still-running — worker loops: their leased slots
        // only return to the pool once the loops finish, so wait for each
        // worker's final report before releasing the lease (and, for owned
        // pools, before the pool's own Drop joins its threads).
        if self.workers.is_empty() {
            return;
        }
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shutdown = true;
            q.jobs.clear();
            q.speculative.clear();
        }
        self.shared.available.notify_all();
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.result_rx.recv();
        }
        if let Some(events) = &self.events {
            events.clear();
            events.flush();
        }
    }
}

/// Delivers every banked answer in one [`Reply::Answers`] message together
/// with the worker's current counters.  The learner is about to receive
/// them and react — from here on it counts as active again, so the
/// quiescence gate is cleared *before* the send (clearing after could race
/// a learner that already consumed an answer and re-entered its wait).
/// Returns `false` when the dispatcher is gone.
fn flush_answers<Sn: SessionSul>(
    shared: &Shared,
    scheduler: &SessionScheduler<Sn>,
    reply_tx: &Sender<Reply>,
    worker_id: usize,
    banked: &mut Vec<(u64, OutputWord)>,
) -> bool {
    {
        let mut q = shared.queue.lock().expect("work queue poisoned");
        q.learner_waiting = false;
    }
    let reply = Reply::Answers {
        worker: worker_id,
        answers: std::mem::take(banked),
        snapshot: WorkerSnapshot {
            sul: scheduler.sul_stats(),
            scheduler: scheduler.stats(),
        },
    };
    reply_tx.send(reply).is_ok()
}

fn worker_loop<Sn: SessionSul>(
    shared: &Shared,
    scheduler: &mut SessionScheduler<Sn>,
    reply_tx: &Sender<Reply>,
    worker_id: usize,
) {
    // Jobs pulled ahead of free session slots, and answers banked between
    // queue visits: both amortise the shared-queue lock and the learner
    // wake-up over whole chunks instead of paying one of each per query —
    // with `max_inflight = 1` that is the difference between a lock convoy
    // and a tight local loop.
    let mut backlog: VecDeque<Job> = VecDeque::new();
    let mut banked: Vec<(u64, OutputWord)> = Vec::new();
    loop {
        let was_idle = scheduler.is_idle();
        let pulled;
        if !backlog.is_empty() && scheduler.has_capacity() {
            // Hot path: feed free slots straight from the local backlog —
            // no shared-queue lock, and no advance license wanted (having
            // submittable work at this virtual instant means the clock
            // must hold still anyway).
            let mut submitted = 0;
            while scheduler.has_capacity() {
                let Some(job) = backlog.pop_front() else {
                    break;
                };
                scheduler.submit(job.id as usize, job.input, job.phase);
                submitted += 1;
            }
            pulled = submitted;
        } else {
            // Consult the shared queue without flushing eagerly: with a
            // chunk still in the backlog this path runs once per clock
            // advance, and flushing here would deliver every answer
            // individually — the exact per-query wake-up convoy the bank
            // exists to avoid.  Only an actual condvar park demands a
            // flush first (the learner must never sleep on answers a
            // sleeping worker is sitting on); `next_jobs` returning `None`
            // is that signal, and re-polling after the wait keeps the
            // wake-condition check under the queue lock.
            let command = loop {
                match shared.next_jobs(scheduler.capacity(), was_idle) {
                    Some(command) => break command,
                    None => {
                        if !banked.is_empty()
                            && !flush_answers(shared, scheduler, reply_tx, worker_id, &mut banked)
                        {
                            return;
                        }
                        shared.wait_for_work(scheduler.capacity(), was_idle);
                    }
                }
            };
            match command {
                WorkerCommand::Exit => {
                    if !banked.is_empty() {
                        flush_answers(shared, scheduler, reply_tx, worker_id, &mut banked);
                    }
                    return;
                }
                WorkerCommand::Jobs { jobs, more } => {
                    pulled = jobs.len();
                    backlog.extend(jobs);
                    let mut submitted = 0;
                    while scheduler.has_capacity() {
                        let Some(job) = backlog.pop_front() else {
                            break;
                        };
                        scheduler.submit(job.id as usize, job.input, job.phase);
                        submitted += 1;
                    }
                    // The local backlog counts as remaining demand: it
                    // should grow the adaptive limit exactly like work
                    // left on the shared queue.
                    let demand = more || !backlog.is_empty();
                    scheduler.note_pull(submitted, demand, was_idle);
                    if demand && scheduler.has_capacity() {
                        // The adaptive limit just grew (or peers refilled
                        // the queue): keep feeding at this virtual instant
                        // instead of advancing under a half-filled pool.
                        continue;
                    }
                }
            }
        }
        if scheduler.is_idle() {
            continue; // Woken without work; re-check the queue.
        }
        // Only an *empty* pull licenses a clock advance: `next_jobs`
        // returns no jobs exactly when advancing is the only way forward
        // (pool full with work queued, or the learner has quiesced).  A
        // non-empty pull means more continuations may still join this
        // virtual instant, so harvest instant progress and loop back to
        // the gate instead of stepping time under a part-filled pool.
        let completed = scheduler.drive_gated(pulled == 0);
        if completed.is_empty() {
            continue;
        }
        banked.extend(
            completed
                .into_iter()
                .map(|(index, output)| (index as u64, output)),
        );
        // Deliver once the local chunk is exhausted (the learner gets the
        // whole chunk in one wake-up); long backlogs also flush at the
        // chunk size so the learner is never starved behind a full
        // prefetch window.
        if (backlog.is_empty() || banked.len() >= PULL_AHEAD)
            && !flush_answers(shared, scheduler, reply_tx, worker_id, &mut banked)
        {
            return;
        }
    }
}

impl<Sn: SessionSul + Send + 'static> MembershipOracle for ParallelSulOracle<Sn> {
    fn query(&mut self, input: &InputWord) -> OutputWord {
        self.dispatch(&[Arc::new(input.clone())])
            .pop()
            .expect("single-query dispatch yields one answer")
    }

    fn query_batch(&mut self, inputs: &[InputWord]) -> Vec<OutputWord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let shared: Vec<Arc<InputWord>> = inputs.iter().map(|w| Arc::new(w.clone())).collect();
        self.dispatch(&shared)
    }

    fn query_batch_shared(&mut self, inputs: &[Arc<InputWord>]) -> Vec<OutputWord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        self.dispatch(inputs)
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }

    fn note_phase(&mut self, phase: QueryPhase) {
        if phase != self.current_phase && self.events.is_some() {
            // Queued, not emitted: the marker takes the stream position of
            // this call relative to every scope submitted before it, even
            // when some of those scopes are still awaiting answers.
            self.scope_queue.push_back(FrontierItem::Phase(phase));
            self.pump_scopes();
        }
        self.current_phase = phase;
    }

    fn submit_queries(&mut self, queries: Vec<AsyncQuery>) -> Vec<AsyncAnswer> {
        if queries.is_empty() {
            return self.drain_ready(false);
        }
        self.queries += queries.len() as u64;
        let enqueued = queries.len();
        // Telemetry: one sample per (phase, speculative-class) group; the
        // busy/virtual delta since the last sample goes to the first group
        // (the exact per-phase integrals come from the scheduler tags).
        let (busy_now, virtual_now) = self.busy_virtual_snapshot();
        let (busy_last, virtual_last) = self.last_busy_virtual;
        self.last_busy_virtual = (busy_now, virtual_now);
        let mut delta = (
            busy_now.saturating_sub(busy_last),
            virtual_now.saturating_sub(virtual_last),
        );
        for phase in crate::session::ALL_PHASES {
            let count = queries.iter().filter(|q| q.phase == phase).count() as u64;
            if count > 0 {
                self.batches += 1;
                self.telemetry
                    .record_dispatch(phase, count, delta.0, delta.1);
                delta = (0, 0);
            }
        }
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            for query in queries {
                assert!(
                    query.ticket < BATCH_ID_BASE,
                    "async tickets must stay below the batch id base"
                );
                debug_assert!(
                    !self.outstanding.contains_key(&query.ticket),
                    "ticket reused while outstanding"
                );
                self.outstanding.insert(query.ticket, query.speculative);
                if !query.speculative {
                    self.delivery_queue.push_back(query.ticket);
                }
                if self.events.is_some() {
                    if query.speculative {
                        // No frontier slot yet: where speculation has run
                        // ahead to when other work interleaves follows the
                        // engine shape, so the scope's stream position is
                        // only fixed at commit time.
                        self.scope_state.insert(query.ticket, ScopeState::Spec);
                    } else {
                        self.scope_state.insert(query.ticket, ScopeState::Auto);
                        self.scope_queue
                            .push_back(FrontierItem::Scope(query.ticket));
                    }
                }
                let job = Job {
                    id: query.ticket,
                    input: Arc::new(query.input),
                    phase: query.phase,
                };
                if query.speculative {
                    q.speculative.push_back(job);
                } else {
                    q.jobs.push_back(job);
                }
            }
        }
        self.shared.notify_work(enqueued);
        self.drain_ready(false)
    }

    fn poll_answers(&mut self, wait: bool) -> Vec<AsyncAnswer> {
        self.drain_ready(wait)
    }

    fn cancel_queries(&mut self, tickets: &[u64]) -> CancelOutcome {
        let mut outcome = CancelOutcome::default();
        let wanted: BTreeSet<u64> = tickets.iter().copied().collect();
        {
            let mut q = self.shared.queue.lock().expect("work queue poisoned");
            let q = &mut *q;
            for deque in [&mut q.jobs, &mut q.speculative] {
                deque.retain(|job| {
                    if wanted.contains(&job.id) {
                        outcome.unsent += 1;
                        self.outstanding.remove(&job.id);
                        false // delivery_queue slot (if any) pops lazily
                    } else {
                        true
                    }
                });
            }
        }
        for &ticket in tickets {
            if self.outstanding.remove(&ticket).is_some() {
                // Already pulled by a worker: let it finish, drop the answer.
                self.discard.insert(ticket);
                outcome.discarded += 1;
            } else if let Some(pos) = self.async_ready.iter().position(|a| a.ticket == ticket) {
                self.async_ready.remove(pos);
                outcome.discarded += 1;
            } else if self.ready_answers.remove(&ticket).is_some() {
                outcome.discarded += 1;
            }
        }
        if self.events.is_some() {
            for &ticket in tickets {
                if let Some(events) = &self.events {
                    events.discard(ticket);
                }
                match self.scope_state.get_mut(&ticket) {
                    // Never queued: a cancelled speculation leaves no
                    // frontier slot to pop.
                    Some(&mut ScopeState::Spec) => {
                        self.scope_state.remove(&ticket);
                    }
                    Some(state) => *state = ScopeState::Dead,
                    None => {}
                }
            }
            self.pump_scopes();
            if let Some(events) = &self.events {
                if !tickets.is_empty() {
                    // Diagnostic: how many tickets the rollback reaches
                    // depends on how far speculation ran ahead of the
                    // resolve frontier, which follows the engine shape.
                    events.diagnostic(Event::SpeculationRollback {
                        cancelled: tickets.len() as u64,
                    });
                }
            }
        }
        outcome
    }

    fn commit_queries(&mut self, tickets: &[u64]) {
        if self.events.is_some() {
            // The learner (or the cache layer on its behalf) commits
            // speculative tickets in suite order after consuming their
            // answers, so every scope is fully staged; the commit is where
            // they enter the frontier, followed by the commit marker.
            let mut committed = 0u64;
            for &ticket in tickets {
                if let Some(state @ &mut ScopeState::Spec) = self.scope_state.get_mut(&ticket) {
                    *state = ScopeState::Ready;
                    self.scope_queue.push_back(FrontierItem::Scope(ticket));
                    committed += 1;
                }
            }
            if committed > 0 {
                self.scope_queue.push_back(FrontierItem::Commit(committed));
            }
            self.pump_scopes();
        }
    }

    fn outstanding_queries(&self) -> u64 {
        (self.outstanding.len() + self.async_ready.len() + self.ready_answers.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::BlockingSessionFactory;
    use crate::sul::{Sul, SulFactory, SulMembershipOracle};
    use prognosis_automata::alphabet::Symbol;
    use prognosis_automata::known;
    use prognosis_automata::mealy::{MealyMachine, StateId};

    /// A factory-friendly SUL backed by a Mealy machine.
    #[derive(Clone)]
    struct MachineSul {
        machine: MealyMachine,
        state: StateId,
        stats: SulStats,
    }

    impl Sul for MachineSul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            self.stats.symbols_sent += 1;
            let (next, out) = self
                .machine
                .step(self.state, input)
                .expect("symbol in alphabet");
            self.state = next;
            out
        }

        fn reset(&mut self) {
            self.stats.resets += 1;
            self.state = self.machine.initial_state();
        }

        fn stats(&self) -> SulStats {
            self.stats
        }
    }

    struct MachineSulFactory(MealyMachine);

    impl SulFactory for MachineSulFactory {
        type Sul = MachineSul;

        fn create(&self) -> MachineSul {
            MachineSul {
                machine: self.0.clone(),
                state: self.0.initial_state(),
                stats: SulStats::default(),
            }
        }
    }

    fn session_factory(machine: MealyMachine) -> BlockingSessionFactory<MachineSulFactory> {
        BlockingSessionFactory(MachineSulFactory(machine))
    }

    fn words(machine: &MealyMachine, count: usize) -> Vec<InputWord> {
        let alphabet = machine.input_alphabet().clone();
        (0..count)
            .map(|i| {
                (0..=(i % 5))
                    .map(|j| alphabet.get((i + j) % alphabet.len()).unwrap().clone())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_answers_match_sequential_for_any_worker_and_inflight_count() {
        let machine = known::counter(5);
        let factory = session_factory(machine.clone());
        let batch = words(&machine, 23);
        let mut sequential = SulMembershipOracle::new(MachineSulFactory(machine.clone()).create());
        let expected = sequential.query_batch(&batch);
        for (workers, inflight) in [(1, 1), (2, 1), (4, 3), (7, 1), (1, 8)] {
            let mut parallel = ParallelSulOracle::spawn_with(&factory, workers, inflight);
            assert_eq!(parallel.num_workers(), workers);
            assert_eq!(parallel.max_inflight(), inflight);
            let got = parallel.query_batch(&batch);
            assert_eq!(
                got, expected,
                "(workers, inflight) = ({workers}, {inflight}) changed batch answers"
            );
            assert_eq!(parallel.queries_answered(), batch.len() as u64);
        }
    }

    #[test]
    fn single_queries_and_stats_flow_through() {
        let factory = session_factory(known::toggle());
        let mut parallel = ParallelSulOracle::spawn(&factory, 2);
        let word = InputWord::from_symbols(["press", "press", "press"]);
        let out = parallel.query(&word);
        assert_eq!(out, known::toggle().run(&word).unwrap());
        assert_eq!(parallel.stats().symbols_sent, 3);
        assert_eq!(parallel.stats().resets, 1);
        assert_eq!(parallel.batches_dispatched(), 1);
        let suls = parallel.into_suls().expect("clean shutdown");
        assert_eq!(suls.len(), 2);
        assert_eq!(suls.iter().map(|s| s.stats().symbols_sent).sum::<u64>(), 3);
    }

    #[test]
    fn empty_batches_are_answered_without_dispatch() {
        let factory = session_factory(known::toggle());
        let mut parallel = ParallelSulOracle::spawn(&factory, 3);
        assert!(parallel.query_batch(&[]).is_empty());
        assert_eq!(parallel.batches_dispatched(), 0);
    }

    #[test]
    fn dispatches_are_attributed_to_the_announced_phase() {
        let machine = known::counter(4);
        let factory = session_factory(machine.clone());
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 1, 4);
        let batch = words(&machine, 8);
        parallel.note_phase(QueryPhase::Construction);
        parallel.query_batch(&batch[..5]);
        parallel.note_phase(QueryPhase::Equivalence);
        parallel.query_batch(&batch[5..]);
        let engine = parallel.engine_stats();
        assert_eq!(engine.construction.batches, 1);
        assert_eq!(engine.construction.queries, 5);
        assert_eq!(engine.equivalence.batches, 1);
        assert_eq!(engine.equivalence.queries, 3);
        assert_eq!(engine.counterexample.batches, 0);
        // Bucket 2 holds sizes 4..=7, bucket 1 sizes 2..=3.
        assert_eq!(engine.batch_size_histogram[2], 1);
        assert_eq!(engine.batch_size_histogram[1], 1);
        assert_eq!(engine.occupancy_timeline.len(), 2);
        assert_eq!(engine.occupancy_timeline[0].phase, QueryPhase::Construction);
        assert_eq!(engine.occupancy_timeline[1].batch_size, 3);
        // The 5-word batch saturated the 1-slot initial pool, so the
        // adaptive limit grew toward the 4-session cap.
        assert!(
            engine.limit_grows >= 1,
            "a batch larger than the initial limit must grow the pool"
        );
        let shutdown = parallel.shutdown().expect("clean shutdown");
        assert_eq!(shutdown.engine.construction.queries, 5);
        assert_eq!(shutdown.engine.queries_completed, 8);
    }

    #[test]
    fn async_submissions_answer_out_of_band_and_match_sequential() {
        let machine = known::counter(5);
        let factory = session_factory(machine.clone());
        let batch = words(&machine, 17);
        let mut sequential = SulMembershipOracle::new(MachineSulFactory(machine.clone()).create());
        let expected = sequential.query_batch(&batch);
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 2, 4);
        let queries: Vec<AsyncQuery> = batch
            .iter()
            .enumerate()
            .map(|(i, input)| AsyncQuery {
                ticket: i as u64,
                input: input.clone(),
                phase: QueryPhase::Construction,
                speculative: i % 3 == 0,
            })
            .collect();
        let mut answers = parallel.submit_queries(queries);
        while answers.len() < batch.len() {
            let more = parallel.poll_answers(true);
            assert!(!more.is_empty(), "waiting poll must make progress");
            answers.extend(more);
        }
        answers.sort_by_key(|a| a.ticket);
        let got: Vec<OutputWord> = answers.into_iter().map(|a| a.output).collect();
        assert_eq!(got, expected);
        assert_eq!(parallel.outstanding_queries(), 0);
        assert_eq!(parallel.queries_answered(), batch.len() as u64);
    }

    #[test]
    fn cancelled_speculation_never_surfaces_answers() {
        let machine = known::counter(5);
        let factory = session_factory(machine.clone());
        let batch = words(&machine, 40);
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 1, 2);
        let queries: Vec<AsyncQuery> = batch
            .iter()
            .enumerate()
            .map(|(i, input)| AsyncQuery {
                ticket: i as u64,
                input: input.clone(),
                phase: QueryPhase::Equivalence,
                speculative: true,
            })
            .collect();
        let delivered = parallel.submit_queries(queries);
        let tickets: Vec<u64> = (0..batch.len() as u64).collect();
        let outcome = parallel.cancel_queries(&tickets);
        assert_eq!(
            outcome.unsent + outcome.discarded + delivered.len() as u64,
            batch.len() as u64,
            "every ticket is delivered, unsent, or discarded exactly once"
        );
        assert_eq!(parallel.outstanding_queries(), 0);
        assert!(
            parallel.poll_answers(false).is_empty(),
            "cancelled tickets must never surface answers"
        );
        // The pool stays usable for blocking work after a rollback.
        let mut sequential = SulMembershipOracle::new(MachineSulFactory(machine).create());
        assert_eq!(
            parallel.query_batch(&batch[..5]),
            sequential.query_batch(&batch[..5])
        );
    }

    #[test]
    fn shutdown_reports_engine_statistics() {
        let machine = known::counter(4);
        let factory = session_factory(machine.clone());
        let mut parallel = ParallelSulOracle::spawn_with(&factory, 2, 3);
        parallel.query_batch(&words(&machine, 12));
        let shutdown = parallel.shutdown().expect("clean shutdown");
        assert_eq!(shutdown.suls.len(), 6, "2 workers × 3 sessions");
        assert_eq!(shutdown.engine.workers, 2);
        assert_eq!(shutdown.engine.max_inflight, 3);
        assert_eq!(shutdown.engine.queries_completed, 12);
    }

    /// A SUL that panics on a poisoned symbol, for the error-path test.
    struct PanickySul;

    impl Sul for PanickySul {
        fn step(&mut self, input: &Symbol) -> Symbol {
            assert!(input.as_str() != "poison", "poisoned symbol");
            Symbol::new("ok")
        }

        fn reset(&mut self) {}
    }

    struct PanickySulFactory;

    impl SulFactory for PanickySulFactory {
        type Sul = PanickySul;

        fn create(&self) -> PanickySul {
            PanickySul
        }
    }

    #[test]
    fn panicking_workers_surface_as_learn_errors_not_hangs() {
        let factory = BlockingSessionFactory(PanickySulFactory);
        let mut parallel = ParallelSulOracle::spawn(&factory, 2);
        let poisoned = vec![InputWord::from_symbols(["poison"])];
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel.query_batch(&poisoned);
        }));
        let payload = outcome.expect_err("the dispatcher must observe the worker death");
        let error = payload
            .downcast_ref::<LearnError>()
            .expect("worker death is relayed as a LearnError");
        assert!(matches!(error, LearnError::WorkerPanicked { .. }));
        assert!(error.to_string().contains("poisoned symbol"));
        drop(parallel); // must not hang or double-panic
    }
}
