//! Property-based tests for the automata crate: minimization preserves
//! behaviour, equivalence is reflexive/symmetric, characterizing sets really
//! characterize, and DOT export is well-formed for arbitrary machines.

use prognosis_automata::access::{characterizing_set, distinguishes};
use prognosis_automata::dot::to_dot_default;
use prognosis_automata::equivalence::{compare, EquivalenceResult};
use prognosis_automata::known::random_machine;
use prognosis_automata::minimize::minimize;
use prognosis_automata::word::InputWord;
use prognosis_automata::{machines_equivalent, Symbol};
use proptest::prelude::*;

fn machine_params() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1usize..12, 1usize..5, 1usize..4, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimization_preserves_behaviour((states, inputs, outputs, seed) in machine_params(),
                                        word_indices in prop::collection::vec(0usize..5, 0..12)) {
        let m = random_machine(states, inputs, outputs, seed);
        let min = minimize(&m);
        prop_assert!(min.num_states() <= m.num_states());
        prop_assert!(machines_equivalent(&m, &min));
        // Spot-check a concrete word as well (helps when equivalence itself
        // would be the broken piece).
        let word: InputWord = word_indices
            .iter()
            .map(|i| m.input_alphabet().get(i % m.input_alphabet().len()).unwrap().clone())
            .collect::<Vec<Symbol>>()
            .into_iter()
            .collect();
        prop_assert_eq!(m.run(&word).unwrap(), min.run(&word).unwrap());
    }

    #[test]
    fn minimization_is_idempotent((states, inputs, outputs, seed) in machine_params()) {
        let m = random_machine(states, inputs, outputs, seed);
        let once = minimize(&m);
        let twice = minimize(&once);
        prop_assert_eq!(once.num_states(), twice.num_states());
        prop_assert!(machines_equivalent(&once, &twice));
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric((states, inputs, outputs, seed) in machine_params(),
                                              seed2 in any::<u64>()) {
        let a = random_machine(states, inputs, outputs, seed);
        let b = random_machine(states, inputs, outputs, seed2);
        prop_assert!(machines_equivalent(&a, &a));
        prop_assert_eq!(machines_equivalent(&a, &b), machines_equivalent(&b, &a));
    }

    #[test]
    fn counterexamples_are_genuine((states, inputs, outputs, seed) in machine_params(),
                                   seed2 in any::<u64>()) {
        let a = random_machine(states, inputs, outputs, seed);
        let b = random_machine(states, inputs, outputs, seed2);
        if let EquivalenceResult::Inequivalent(ce) = compare(&a, &b) {
            let oa = a.run(&ce.input).unwrap();
            let ob = b.run(&ce.input).unwrap();
            prop_assert_ne!(oa.clone(), ob.clone());
            prop_assert_eq!(oa, ce.left.output);
            prop_assert_eq!(ob, ce.right.output);
        }
    }

    #[test]
    fn characterizing_set_separates_minimal_states((states, inputs, outputs, seed) in machine_params()) {
        let m = minimize(&random_machine(states, inputs, outputs, seed));
        let w = characterizing_set(&m);
        prop_assert!(!w.is_empty());
        let ids: Vec<_> = m.states().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1) {
                prop_assert!(w.iter().any(|word| distinguishes(&m, a, b, word)),
                             "minimal machine states {} and {} not distinguished", a, b);
            }
        }
    }

    #[test]
    fn dot_export_is_well_formed((states, inputs, outputs, seed) in machine_params()) {
        let m = random_machine(states, inputs, outputs, seed);
        let dot = to_dot_default(&m);
        prop_assert!(dot.starts_with("digraph"));
        let closed = dot.trim_end().ends_with('}');
        prop_assert!(closed, "DOT output must end with a closing brace");
        prop_assert_eq!(dot.matches("__start ->").count(), 1);
    }

    #[test]
    fn trace_enumeration_agrees_with_run((states, inputs, outputs, seed) in machine_params()) {
        let m = random_machine(states.min(4), inputs.min(3), outputs, seed);
        for t in m.traces_up_to_length(3) {
            prop_assert!(m.accepts_trace(&t));
            prop_assert_eq!(m.run(&t.input).unwrap(), t.output);
        }
    }
}
