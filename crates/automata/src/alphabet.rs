//! Abstract symbols and alphabets.
//!
//! A [`Symbol`] is an interned abstract token such as `SYN(?,?,0)` or
//! `INITIAL(?,?)[CRYPTO]`.  The learner only ever manipulates symbols; the
//! adapter is responsible for mapping them to and from concrete packets.
//!
//! Symbols are cheap to clone and compare: they wrap an `Arc<str>`, so an
//! alphabet of a few dozen symbols costs a handful of allocations for the
//! whole learning run even though millions of queries are issued.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An interned abstract symbol.
///
/// Symbols compare by their textual representation.  Ordering is
/// lexicographic, which makes alphabets and learned machines deterministic
/// across runs — an important property when diffing models of two
/// implementations.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The textual representation of the symbol.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the textual representation in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the textual representation is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// An ordered, duplicate-free set of symbols.
///
/// The order of an alphabet is significant for reproducibility: learners
/// iterate over it when filling observation tables, so two runs with the
/// same alphabet order produce the same intermediate hypotheses.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    symbols: Vec<Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet {
            symbols: Vec::new(),
        }
    }

    /// Creates an alphabet from an iterator of symbols, removing duplicates
    /// while preserving first-occurrence order.
    pub fn from_symbols<I, S>(symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for s in symbols {
            let s = s.into();
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        Alphabet { symbols: out }
    }

    /// Adds a symbol if it is not already present. Returns `true` if added.
    pub fn insert(&mut self, symbol: impl Into<Symbol>) -> bool {
        let symbol = symbol.into();
        if self.symbols.contains(&symbol) {
            false
        } else {
            self.symbols.push(symbol);
            true
        }
    }

    /// Whether the alphabet contains the given symbol.
    pub fn contains(&self, symbol: &Symbol) -> bool {
        self.symbols.contains(symbol)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the symbols in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// The symbols as a slice.
    pub fn as_slice(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Index of a symbol, if present.
    pub fn index_of(&self, symbol: &Symbol) -> Option<usize> {
        self.symbols.iter().position(|s| s == symbol)
    }

    /// Symbol at the given index.
    pub fn get(&self, index: usize) -> Option<&Symbol> {
        self.symbols.get(index)
    }

    /// Number of words of length exactly `len` over this alphabet.
    ///
    /// Used by the trace-space-reduction experiment (E4): the paper reports
    /// 329,554,456 traces of length up to 10 for a 7-symbol alphabet.
    pub fn words_of_length(&self, len: u32) -> u128 {
        (self.symbols.len() as u128).pow(len)
    }

    /// Number of non-empty words of length at most `len` over this alphabet.
    pub fn words_up_to_length(&self, len: u32) -> u128 {
        (1..=len).map(|l| self.words_of_length(l)).sum()
    }
}

impl<S: Into<Symbol>> FromIterator<S> for Alphabet {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Alphabet::from_symbols(iter)
    }
}

impl IntoIterator for Alphabet {
    type Item = Symbol;
    type IntoIter = std::vec::IntoIter<Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.into_iter()
    }
}

impl<'a> IntoIterator for &'a Alphabet {
    type Item = &'a Symbol;
    type IntoIter = std::slice::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_interning_and_equality() {
        let a = Symbol::new("SYN(?,?,0)");
        let b = Symbol::from("SYN(?,?,0)");
        let c = Symbol::from("ACK(?,?,0)".to_string());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "SYN(?,?,0)");
        assert!(!a.is_empty());
        assert_eq!(a.len(), "SYN(?,?,0)".len());
    }

    #[test]
    fn symbol_display_and_debug_match() {
        let s = Symbol::new("INITIAL(?,?)[CRYPTO]");
        assert_eq!(format!("{s}"), "INITIAL(?,?)[CRYPTO]");
        assert_eq!(format!("{s:?}"), "INITIAL(?,?)[CRYPTO]");
    }

    #[test]
    fn alphabet_deduplicates_preserving_order() {
        let a = Alphabet::from_symbols(["a", "b", "a", "c", "b"]);
        assert_eq!(a.len(), 3);
        let names: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn alphabet_insert_and_lookup() {
        let mut a = Alphabet::new();
        assert!(a.is_empty());
        assert!(a.insert("x"));
        assert!(!a.insert("x"));
        assert!(a.insert("y"));
        assert_eq!(a.len(), 2);
        assert!(a.contains(&Symbol::new("x")));
        assert!(!a.contains(&Symbol::new("z")));
        assert_eq!(a.index_of(&Symbol::new("y")), Some(1));
        assert_eq!(a.get(0).unwrap().as_str(), "x");
        assert_eq!(a.get(5), None);
    }

    #[test]
    fn word_counting_matches_paper_figure() {
        // The QUIC abstract alphabet has 7 symbols; the paper counts
        // 329,554,456 traces of length up to 10 (sum of 7^1 .. 7^10).
        let a: Alphabet = (0..7).map(|i| format!("s{i}")).collect();
        assert_eq!(a.words_up_to_length(10), 329_554_456);
        assert_eq!(a.words_of_length(0), 1);
        assert_eq!(a.words_of_length(2), 49);
    }

    #[test]
    fn alphabet_serde_round_trip() {
        let a = Alphabet::from_symbols(["SYN", "ACK", "RST"]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Alphabet = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
