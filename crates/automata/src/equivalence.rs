//! Equivalence checking between Mealy machines.
//!
//! The analysis module compares the models learned for two implementations
//! of the same protocol (§5, "Learned Model Analysis").  Two machines are
//! equivalent when they produce the same output word for every input word;
//! for deterministic machines this is decidable in time `O(|S₁|·|S₂|·|Σ̂|)`
//! by a breadth-first search of the product machine, which also yields a
//! *shortest* distinguishing input word when they differ.

use crate::mealy::{MealyMachine, StateId};
use crate::word::{InputWord, IoTrace};
use std::collections::{HashSet, VecDeque};

/// The result of comparing two machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The machines produce identical outputs on all input words over the
    /// shared alphabet.
    Equivalent,
    /// The machines differ; the contained counterexample is a shortest
    /// distinguishing input word together with both machines' outputs.
    Inequivalent(Counterexample),
    /// The machines cannot be compared because their input alphabets differ.
    AlphabetMismatch {
        /// Symbols present only in the left machine's alphabet.
        only_left: Vec<String>,
        /// Symbols present only in the right machine's alphabet.
        only_right: Vec<String>,
    },
}

/// A distinguishing input word, with the output each machine produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The distinguishing input word.
    pub input: InputWord,
    /// Left machine's trace on that word.
    pub left: IoTrace,
    /// Right machine's trace on that word.
    pub right: IoTrace,
}

impl Counterexample {
    /// Index of the first step at which the two outputs differ.
    pub fn first_divergence(&self) -> usize {
        self.left
            .output
            .iter()
            .zip(self.right.output.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(self.left.len())
    }
}

/// Compares two machines over their (required-identical) input alphabets.
pub fn compare(left: &MealyMachine, right: &MealyMachine) -> EquivalenceResult {
    // Alphabets must coincide as sets for the comparison to make sense.
    let only_left: Vec<String> = left
        .input_alphabet()
        .iter()
        .filter(|s| !right.input_alphabet().contains(s))
        .map(|s| s.to_string())
        .collect();
    let only_right: Vec<String> = right
        .input_alphabet()
        .iter()
        .filter(|s| !left.input_alphabet().contains(s))
        .map(|s| s.to_string())
        .collect();
    if !only_left.is_empty() || !only_right.is_empty() {
        return EquivalenceResult::AlphabetMismatch {
            only_left,
            only_right,
        };
    }

    // BFS over the product machine.  `parent` reconstructs a shortest
    // distinguishing word when a mismatching output is found.
    let mut visited: HashSet<(StateId, StateId)> = HashSet::new();
    let mut queue: VecDeque<(StateId, StateId, InputWord)> = VecDeque::new();
    let start = (left.initial_state(), right.initial_state());
    visited.insert(start);
    queue.push_back((start.0, start.1, InputWord::empty()));

    while let Some((ql, qr, word)) = queue.pop_front() {
        for sym in left.input_alphabet().iter() {
            let (nl, ol) = left.step(ql, sym).expect("total machine");
            let (nr, or) = right.step(qr, sym).expect("total machine");
            let next_word = word.append(sym.clone());
            if ol != or {
                let left_trace = left.trace(&next_word).expect("word over shared alphabet");
                let right_trace = right.trace(&next_word).expect("word over shared alphabet");
                return EquivalenceResult::Inequivalent(Counterexample {
                    input: next_word,
                    left: left_trace,
                    right: right_trace,
                });
            }
            if visited.insert((nl, nr)) {
                queue.push_back((nl, nr, next_word));
            }
        }
    }
    EquivalenceResult::Equivalent
}

/// Whether two machines are equivalent.
pub fn machines_equivalent(left: &MealyMachine, right: &MealyMachine) -> bool {
    matches!(compare(left, right), EquivalenceResult::Equivalent)
}

/// Finds a shortest distinguishing input word, if any.
pub fn find_counterexample(left: &MealyMachine, right: &MealyMachine) -> Option<Counterexample> {
    match compare(left, right) {
        EquivalenceResult::Inequivalent(ce) => Some(ce),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::known;
    use crate::mealy::MealyBuilder;
    use crate::minimize::minimize;

    #[test]
    fn machine_is_equivalent_to_itself_and_its_minimization() {
        let m = known::redundant_pair();
        assert!(machines_equivalent(&m, &m));
        assert!(machines_equivalent(&m, &minimize(&m)));
    }

    #[test]
    fn detects_difference_with_shortest_word() {
        let m1 = known::counter(3);
        let m2 = known::counter(4);
        let ce = find_counterexample(&m1, &m2).expect("counters of different size differ");
        // Shortest distinguishing word: three increments (m1 wraps, m2 ticks).
        assert_eq!(ce.input.len(), 3);
        assert!(ce.input.iter().all(|s| s.as_str() == "inc"));
        assert_ne!(ce.left.output, ce.right.output);
        assert_eq!(ce.first_divergence(), 2);
    }

    #[test]
    fn alphabet_mismatch_is_reported() {
        let m1 = known::toggle();
        let inputs = Alphabet::from_symbols(["press", "hold"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        b.add_transition(s0, "press", "on", s0).unwrap();
        b.add_transition(s0, "hold", "off", s0).unwrap();
        let m2 = b.build().unwrap();
        match compare(&m1, &m2) {
            EquivalenceResult::AlphabetMismatch {
                only_left,
                only_right,
            } => {
                assert!(only_left.is_empty());
                assert_eq!(only_right, vec!["hold".to_string()]);
            }
            other => panic!("expected alphabet mismatch, got {other:?}"),
        }
    }

    #[test]
    fn equivalent_machines_with_different_state_counts() {
        let m = known::redundant_pair();
        let min = minimize(&m);
        assert_ne!(m.num_states(), min.num_states());
        assert!(machines_equivalent(&m, &min));
        assert!(find_counterexample(&m, &min).is_none());
    }

    #[test]
    fn output_difference_at_depth_one_is_found_immediately() {
        let inputs = Alphabet::from_symbols(["a"]);
        let mk = |out: &str| {
            let mut b = MealyBuilder::new(inputs.clone());
            let s0 = b.add_state();
            b.add_transition(s0, "a", out, s0).unwrap();
            b.build().unwrap()
        };
        let ce = find_counterexample(&mk("x"), &mk("y")).unwrap();
        assert_eq!(ce.input.len(), 1);
        assert_eq!(ce.first_divergence(), 0);
    }

    #[test]
    fn random_machines_equal_seeds_are_equivalent() {
        let a = known::random_machine(6, 3, 3, 7);
        let b = known::random_machine(6, 3, 3, 7);
        assert!(machines_equivalent(&a, &b));
    }
}
