//! Partition-refinement minimization for Mealy machines.
//!
//! Learned models are already canonical (minimal) by construction, but the
//! hand-written appendix models and the simulated implementations are not
//! necessarily.  The analysis module minimizes before diffing so that model
//! sizes are comparable across implementations, exactly as the paper compares
//! the 12-state and 8-state QUIC models.

use crate::alphabet::Symbol;
use crate::mealy::{MealyBuilder, MealyMachine, StateId};
use std::collections::BTreeMap;

/// Computes the minimal Mealy machine equivalent to `machine`
/// (Moore-style partition refinement restricted to reachable states).
pub fn minimize(machine: &MealyMachine) -> MealyMachine {
    let machine = machine.trim();
    let n = machine.num_states();
    let inputs = machine.input_alphabet().clone();

    // Initial partition: states are grouped by their full output row
    // (the outputs they produce for each input symbol).
    let mut block_of: Vec<usize> = {
        let mut signature_to_block: BTreeMap<Vec<Symbol>, usize> = BTreeMap::new();
        let mut blocks = Vec::with_capacity(n);
        for q in 0..n {
            let sig: Vec<Symbol> = inputs
                .iter()
                .map(|s| machine.output(q, s).expect("total machine"))
                .collect();
            let next = signature_to_block.len();
            let b = *signature_to_block.entry(sig).or_insert(next);
            blocks.push(b);
        }
        blocks
    };

    // Refine until stable: two states stay in the same block only if, for
    // every input, their successors are in the same block.
    loop {
        let mut signature_to_block: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
        let mut new_block_of = Vec::with_capacity(n);
        for q in 0..n {
            let succ_sig: Vec<usize> = inputs
                .iter()
                .map(|s| block_of[machine.successor(q, s).expect("total machine")])
                .collect();
            let key = (block_of[q], succ_sig);
            let next = signature_to_block.len();
            let b = *signature_to_block.entry(key).or_insert(next);
            new_block_of.push(b);
        }
        let stable = new_block_of == block_of;
        block_of = new_block_of;
        if stable {
            break;
        }
    }

    // Build the quotient machine. Renumber blocks so the initial state's
    // block becomes state 0 and the rest follow in first-visit order.
    let num_blocks = block_of.iter().max().map(|m| m + 1).unwrap_or(0);
    let mut renumber: Vec<Option<StateId>> = vec![None; num_blocks];
    let mut order: Vec<usize> = Vec::new();
    let initial_block = block_of[machine.initial_state()];
    renumber[initial_block] = Some(0);
    order.push(initial_block);
    for &b in block_of.iter().take(n) {
        if renumber[b].is_none() {
            renumber[b] = Some(order.len());
            order.push(b);
        }
    }

    let mut builder = MealyBuilder::new(inputs.clone());
    builder.add_states(order.len());
    builder.set_initial(0);
    // For each block pick a representative state and copy its transitions.
    let mut representative: Vec<Option<StateId>> = vec![None; num_blocks];
    for (q, &b) in block_of.iter().enumerate().take(n) {
        if representative[b].is_none() {
            representative[b] = Some(q);
        }
    }
    for &b in &order {
        let rep = representative[b].expect("every ordered block has a representative");
        let from = renumber[b].expect("ordered blocks are renumbered");
        for s in inputs.iter() {
            let (succ, out) = machine.step(rep, s).expect("total machine");
            let to = renumber[block_of[succ]].expect("successor block renumbered");
            builder
                .add_transition(from, s.clone(), out, to)
                .expect("states added above");
        }
    }
    builder.build().expect("quotient machine is total")
}

/// Whether the machine is already minimal (up to unreachable states).
pub fn is_minimal(machine: &MealyMachine) -> bool {
    minimize(machine).num_states() == machine.trim().num_states()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::equivalence::machines_equivalent;
    use crate::word::InputWord;

    fn redundant_machine() -> MealyMachine {
        // s1 and s2 are behaviourally identical; s3 unreachable.
        let inputs = Alphabet::from_symbols(["a", "b"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.add_transition(s0, "a", "x", s1).unwrap();
        b.add_transition(s0, "b", "y", s2).unwrap();
        b.add_transition(s1, "a", "z", s0).unwrap();
        b.add_transition(s1, "b", "z", s1).unwrap();
        b.add_transition(s2, "a", "z", s0).unwrap();
        b.add_transition(s2, "b", "z", s2).unwrap();
        b.add_transition(s3, "a", "q", s3).unwrap();
        b.add_transition(s3, "b", "q", s3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        let m = redundant_machine();
        let min = minimize(&m);
        assert_eq!(min.num_states(), 2);
        assert!(machines_equivalent(&m, &min));
        assert!(is_minimal(&min));
        assert!(!is_minimal(&m));
    }

    #[test]
    fn minimization_preserves_outputs_on_sample_words() {
        let m = redundant_machine();
        let min = minimize(&m);
        for word in [
            InputWord::from_symbols(["a", "a", "b", "a"]),
            InputWord::from_symbols(["b", "b", "a", "a", "b"]),
            InputWord::from_symbols(["a"]),
        ] {
            assert_eq!(m.run(&word).unwrap(), min.run(&word).unwrap());
        }
    }

    #[test]
    fn minimizing_a_minimal_machine_is_identity_in_size() {
        let m = crate::known::counter(3);
        let min = minimize(&m);
        assert_eq!(min.num_states(), m.num_states());
        assert!(machines_equivalent(&m, &min));
    }

    #[test]
    fn single_state_machine() {
        let inputs = Alphabet::from_symbols(["a"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        b.add_transition(s0, "a", "o", s0).unwrap();
        let m = b.build().unwrap();
        let min = minimize(&m);
        assert_eq!(min.num_states(), 1);
        assert!(is_minimal(&m));
    }

    #[test]
    fn states_with_same_outputs_but_different_futures_stay_separate() {
        // s1 and s2 output the same symbols immediately but lead to states
        // with different outputs, so they must not be merged.
        let inputs = Alphabet::from_symbols(["a"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        let s4 = b.add_state();
        b.add_transition(s0, "a", "start", s1).unwrap();
        b.add_transition(s1, "a", "same", s3).unwrap();
        b.add_transition(s2, "a", "same", s4).unwrap();
        b.add_transition(s3, "a", "left", s3).unwrap();
        b.add_transition(s4, "a", "right", s4).unwrap();
        // Make s2 reachable.
        let m = {
            let mut b2 = b.clone();
            b2.add_transition(s3, "a", "left", s2).unwrap();
            b2.build().unwrap()
        };
        let min = minimize(&m);
        // No two reachable states are equivalent here.
        assert_eq!(min.num_states(), m.trim().num_states());
    }
}
