//! # prognosis-automata
//!
//! Finite-state models used throughout the Prognosis framework: abstract
//! alphabets and words, Mealy machines (the models Prognosis learns), DFAs
//! (used as safety-property monitors), together with the algorithms the
//! learning and analysis modules rely on:
//!
//! * partition-refinement minimization,
//! * product construction and equivalence checking with shortest
//!   distinguishing words,
//! * access sequences, characterizing sets and transition covers
//!   (used by the W-method / Wp-method equivalence oracles),
//! * Graphviz (DOT) export mirroring the figures in the paper's appendix.
//!
//! The types here are deliberately protocol-agnostic: a symbol is just an
//! interned token.  Protocol-specific structure (QUIC packet types, TCP
//! flags, parameter slots) lives in `prognosis-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod alphabet;
pub mod dfa;
pub mod dot;
pub mod equivalence;
pub mod interner;
pub mod known;
pub mod mealy;
pub mod minimize;
pub mod word;

pub use alphabet::{Alphabet, Symbol};
pub use dfa::Dfa;
pub use equivalence::{find_counterexample, machines_equivalent};
pub use interner::{IWord, Interner, SymbolId};
pub use mealy::{MealyBuilder, MealyMachine, StateId};
pub use word::{InputWord, IoTrace, OutputWord};
