//! A small library of well-known machines used in documentation, tests and
//! benchmarks: the TCP 3-way handshake fragment of Fig. 3(b) and a few toy
//! machines that exercise learner corner cases.

use crate::alphabet::Alphabet;
use crate::mealy::{MealyBuilder, MealyMachine};

/// The TCP 3-way handshake fragment of Fig. 3(b): a 3-state machine over
/// `{SYN(?,?,0), ACK(?,?,0)}` producing `ACK+SYN(?,?,0)` then `NIL`.
pub fn tcp_handshake_fragment() -> MealyMachine {
    let inputs = Alphabet::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
    let mut b = MealyBuilder::new(inputs);
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.add_transition(s0, "SYN(?,?,0)", "ACK+SYN(?,?,0)", s1)
        .unwrap();
    b.add_transition(s0, "ACK(?,?,0)", "RST(?,?,0)", s0)
        .unwrap();
    b.add_transition(s1, "ACK(?,?,0)", "NIL", s2).unwrap();
    b.add_transition(s1, "SYN(?,?,0)", "NIL", s1).unwrap();
    b.complete_with_self_loops(s2, "NIL");
    b.build().unwrap()
}

/// A two-state toggle machine over a single input: outputs alternate between
/// `on` and `off`.  The smallest machine whose behaviour is not a function of
/// the last input alone — useful for checking that learners track state.
pub fn toggle() -> MealyMachine {
    let inputs = Alphabet::from_symbols(["press"]);
    let mut b = MealyBuilder::new(inputs);
    let s0 = b.add_state();
    let s1 = b.add_state();
    b.add_transition(s0, "press", "on", s1).unwrap();
    b.add_transition(s1, "press", "off", s0).unwrap();
    b.build().unwrap()
}

/// A modulo-`n` counter over inputs `{inc, reset}`: outputs `tick` on every
/// increment except the one that wraps, which outputs `wrap`; `reset` always
/// outputs `zero` and returns to the initial state.
///
/// Parameterized size makes it a convenient scaling target for learner
/// benchmarks (the number of states is exactly `n`).
pub fn counter(n: usize) -> MealyMachine {
    assert!(n >= 1, "counter needs at least one state");
    let inputs = Alphabet::from_symbols(["inc", "reset"]);
    let mut b = MealyBuilder::new(inputs);
    let states = b.add_states(n);
    for (i, &q) in states.iter().enumerate() {
        let next = states[(i + 1) % n];
        let out = if i + 1 == n { "wrap" } else { "tick" };
        b.add_transition(q, "inc", out, next).unwrap();
        b.add_transition(q, "reset", "zero", states[0]).unwrap();
    }
    b.build().unwrap()
}

/// A machine with two behaviourally-identical states, handy for testing
/// minimization (minimal size is 2, built size is 3).
pub fn redundant_pair() -> MealyMachine {
    let inputs = Alphabet::from_symbols(["a", "b"]);
    let mut b = MealyBuilder::new(inputs);
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.add_transition(s0, "a", "x", s1).unwrap();
    b.add_transition(s0, "b", "y", s2).unwrap();
    b.add_transition(s1, "a", "z", s0).unwrap();
    b.add_transition(s1, "b", "z", s1).unwrap();
    b.add_transition(s2, "a", "z", s0).unwrap();
    b.add_transition(s2, "b", "z", s2).unwrap();
    b.build().unwrap()
}

/// Builds a pseudo-random total Mealy machine with `num_states` states over
/// `num_inputs` inputs and `num_outputs` outputs, derived deterministically
/// from `seed` with a small xorshift generator (no external RNG dependency).
/// Useful for property-based "learned machine ≡ target" tests.
pub fn random_machine(
    num_states: usize,
    num_inputs: usize,
    num_outputs: usize,
    seed: u64,
) -> MealyMachine {
    assert!(num_states >= 1 && num_inputs >= 1 && num_outputs >= 1);
    let inputs: Alphabet = (0..num_inputs).map(|i| format!("i{i}")).collect();
    let mut b = MealyBuilder::new(inputs.clone());
    let states = b.add_states(num_states);
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    if x == 0 {
        x = 1;
    }
    let mut next = || {
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for &q in &states {
        for sym in inputs.iter() {
            let to = states[(next() % num_states as u64) as usize];
            let out = format!("o{}", next() % num_outputs as u64);
            b.add_transition(q, sym.clone(), out, to).unwrap();
        }
    }
    // Ensure connectivity by chaining state i -> i+1 on input i0 for a random
    // subset; the trim in minimize handles the rest.
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::InputWord;

    #[test]
    fn handshake_fragment_matches_figure() {
        let m = tcp_handshake_fragment();
        assert_eq!(m.num_states(), 3);
        let out = m
            .run(&InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]))
            .unwrap();
        assert_eq!(out.as_slice()[0].as_str(), "ACK+SYN(?,?,0)");
        assert_eq!(out.as_slice()[1].as_str(), "NIL");
    }

    #[test]
    fn toggle_alternates() {
        let m = toggle();
        let out = m
            .run(&InputWord::from_symbols(["press", "press", "press"]))
            .unwrap();
        let outs: Vec<&str> = out.iter().map(|s| s.as_str()).collect();
        assert_eq!(outs, vec!["on", "off", "on"]);
    }

    #[test]
    fn counter_wraps_at_n() {
        let m = counter(3);
        assert_eq!(m.num_states(), 3);
        let out = m
            .run(&InputWord::from_symbols(["inc", "inc", "inc", "inc"]))
            .unwrap();
        let outs: Vec<&str> = out.iter().map(|s| s.as_str()).collect();
        assert_eq!(outs, vec!["tick", "tick", "wrap", "tick"]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn counter_rejects_zero() {
        let _ = counter(0);
    }

    #[test]
    fn random_machine_is_total_and_deterministic_per_seed() {
        let a = random_machine(5, 3, 2, 42);
        let b = random_machine(5, 3, 2, 42);
        let c = random_machine(5, 3, 2, 43);
        assert_eq!(a, b);
        assert_eq!(a.num_states(), 5);
        assert_eq!(a.num_transitions(), 15);
        // Different seeds almost surely differ.
        assert_ne!(a, c);
    }
}
