//! Per-run symbol interning: dense integer ids for hot-path words.
//!
//! [`Symbol`] stays the public currency of the crate — an `Arc<str>` that is
//! cheap to clone and compares by its textual representation.  But the
//! innermost learning loops (prefix-trie walks, batch dedup, the parallel
//! work queue) spend most of their time hashing and comparing those strings.
//! An [`Interner`] assigns each distinct symbol a dense [`SymbolId`] (`u32`)
//! so that hot paths can hash, compare and index by integer, resolving back
//! to strings only at serialization boundaries.
//!
//! Ids are allocated in first-intern order, which is *not* lexicographic.
//! Determinism contracts elsewhere in the workspace (deduplicated batch
//! forwarding order, sorted trie iteration) are expressed in terms of the
//! symbols' *string* order, so the interner also maintains an incremental
//! lexicographic rank table: [`Interner::rank_of`] maps an id to its rank
//! among all interned symbols, and sorting ids by rank reproduces string
//! order exactly — regardless of the order in which symbols were first
//! interned (e.g. during a warm-start journal replay).

use crate::alphabet::{Alphabet, Symbol};
use crate::word::InputWord;
use std::collections::HashMap;
use std::fmt;

/// A dense integer handle for an interned [`Symbol`].
///
/// Ids are only meaningful relative to the [`Interner`] that produced them;
/// they are never serialized.  Public APIs that take `impl Into<SymbolId>`
/// accept a raw `u32` or `usize` index interchangeably.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The id as a dense table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for SymbolId {
    #[inline]
    fn from(raw: u32) -> Self {
        SymbolId(raw)
    }
}

impl From<usize> for SymbolId {
    #[inline]
    fn from(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "symbol id overflow");
        SymbolId(index as u32)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A word of interned symbol ids — the dense counterpart of
/// [`InputWord`](crate::word::InputWord) used on hot paths.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IWord(Vec<SymbolId>);

impl IWord {
    /// The empty word.
    pub fn empty() -> Self {
        IWord(Vec::new())
    }

    /// Creates a word from a vector of ids.
    pub fn from_ids(ids: Vec<SymbolId>) -> Self {
        IWord(ids)
    }

    /// Number of symbols in the word.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends an id.
    pub fn push(&mut self, id: impl Into<SymbolId>) {
        self.0.push(id.into());
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[SymbolId] {
        &self.0
    }

    /// Iterates over the ids.
    pub fn iter(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.0.iter().copied()
    }
}

impl From<Vec<SymbolId>> for IWord {
    fn from(ids: Vec<SymbolId>) -> Self {
        IWord(ids)
    }
}

impl std::ops::Deref for IWord {
    type Target = [SymbolId];

    fn deref(&self) -> &[SymbolId] {
        &self.0
    }
}

/// A bidirectional [`Symbol`] ⇄ [`SymbolId`] map with an incremental
/// lexicographic rank table.
///
/// Interning is append-only: a symbol keeps its id for the lifetime of the
/// interner.  Minting a fresh id is `O(n)` in the number of interned symbols
/// (the rank table shifts), which is irrelevant in practice — alphabets hold
/// tens of symbols while queries number in the millions.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// id → symbol.
    symbols: Vec<Symbol>,
    /// symbol → id.
    ids: HashMap<Symbol, SymbolId>,
    /// id → lexicographic rank among all interned symbols.
    rank: Vec<u32>,
    /// rank → id (i.e. ids sorted by symbol string).
    sorted: Vec<SymbolId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Creates an interner pre-seeded with an alphabet's symbols in
    /// insertion order, so `SymbolId(i)` is the symbol at alphabet index
    /// `i`.
    pub fn from_alphabet(alphabet: &Alphabet) -> Self {
        let mut interner = Interner::new();
        for symbol in alphabet.iter() {
            interner.intern(symbol);
        }
        interner
    }

    /// Returns the id for `symbol`, minting a fresh one if it has not been
    /// seen before.
    pub fn intern(&mut self, symbol: &Symbol) -> SymbolId {
        if let Some(&id) = self.ids.get(symbol) {
            return id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(symbol.clone());
        self.ids.insert(symbol.clone(), id);
        // Splice the new id into string order and renumber the shifted tail.
        let pos = self
            .sorted
            .partition_point(|&other| self.symbols[other.index()].as_str() < symbol.as_str());
        self.sorted.insert(pos, id);
        self.rank.push(0);
        for (r, &shifted) in self.sorted.iter().enumerate().skip(pos) {
            self.rank[shifted.index()] = r as u32;
        }
        id
    }

    /// The id for `symbol`, if it has been interned.
    #[inline]
    pub fn lookup(&self, symbol: &Symbol) -> Option<SymbolId> {
        self.ids.get(symbol).copied()
    }

    /// The symbol behind an id.
    ///
    /// # Panics
    /// Panics if the id was not minted by this interner.
    #[inline]
    pub fn resolve(&self, id: impl Into<SymbolId>) -> &Symbol {
        &self.symbols[id.into().index()]
    }

    /// The symbol behind an id, if valid for this interner.
    #[inline]
    pub fn get(&self, id: impl Into<SymbolId>) -> Option<&Symbol> {
        self.symbols.get(id.into().index())
    }

    /// Lexicographic rank of an id among all interned symbols: sorting ids
    /// by rank reproduces the symbols' string order exactly.
    #[inline]
    pub fn rank_of(&self, id: impl Into<SymbolId>) -> u32 {
        self.rank[id.into().index()]
    }

    /// Ids in lexicographic (string) order of their symbols.
    pub fn ids_in_order(&self) -> &[SymbolId] {
        &self.sorted
    }

    /// Compares two id words by the string order of their symbols —
    /// identical to comparing the resolved `InputWord`s, without touching a
    /// single string.
    pub fn compare_words(&self, a: &[SymbolId], b: &[SymbolId]) -> std::cmp::Ordering {
        let key = |id: &SymbolId| self.rank[id.index()];
        a.iter().map(key).cmp(b.iter().map(key))
    }

    /// Encodes a string word, interning any fresh symbols.
    pub fn encode(&mut self, word: &InputWord) -> IWord {
        IWord(word.iter().map(|s| self.intern(s)).collect())
    }

    /// Encodes a string word without interning; `None` if any symbol is
    /// unknown.
    pub fn try_encode(&self, word: &InputWord) -> Option<IWord> {
        word.iter()
            .map(|s| self.lookup(s))
            .collect::<Option<Vec<_>>>()
            .map(IWord)
    }

    /// Decodes an id word back to symbols.
    ///
    /// # Panics
    /// Panics if any id was not minted by this interner.
    pub fn decode(&self, word: &IWord) -> InputWord {
        word.iter().map(|id| self.resolve(id).clone()).collect()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over `(id, symbol)` pairs in id (first-intern) order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }
}

impl Alphabet {
    /// The id of a symbol under the canonical alphabet interning, where
    /// `SymbolId(i)` is the symbol at alphabet index `i`.
    pub fn id_of(&self, symbol: &Symbol) -> Option<SymbolId> {
        self.index_of(symbol).map(SymbolId::from)
    }

    /// The symbol at an id under the canonical alphabet interning.
    pub fn symbol_of(&self, id: impl Into<SymbolId>) -> Option<&Symbol> {
        self.get(id.into().index())
    }

    /// Encodes a word against this alphabet; `None` if any symbol is not in
    /// the alphabet.
    pub fn encode(&self, word: &InputWord) -> Option<IWord> {
        word.iter()
            .map(|s| self.id_of(s))
            .collect::<Option<Vec<_>>>()
            .map(IWord::from_ids)
    }

    /// Decodes an id word against this alphabet; `None` if any id is out of
    /// range.
    pub fn decode(&self, word: &IWord) -> Option<InputWord> {
        word.iter()
            .map(|id| self.symbol_of(id).cloned())
            .collect::<Option<Vec<_>>>()
            .map(InputWord::from_symbols)
    }

    /// An [`Interner`] pre-seeded with this alphabet's symbols in insertion
    /// order.
    pub fn interner(&self) -> Interner {
        Interner::from_alphabet(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern(&Symbol::new("a"));
        let b = i.intern(&Symbol::new("b"));
        assert_eq!(i.intern(&Symbol::new("a")), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a).as_str(), "a");
        assert_eq!(i.lookup(&Symbol::new("b")), Some(b));
        assert_eq!(i.lookup(&Symbol::new("c")), None);
    }

    #[test]
    fn rank_table_tracks_string_order_regardless_of_intern_order() {
        // Intern out of lexicographic order, as a warm-start journal replay
        // would.
        let mut i = Interner::new();
        let c = i.intern(&Symbol::new("c"));
        let a = i.intern(&Symbol::new("a"));
        let b = i.intern(&Symbol::new("b"));
        assert_eq!(i.rank_of(a), 0);
        assert_eq!(i.rank_of(b), 1);
        assert_eq!(i.rank_of(c), 2);
        assert_eq!(i.ids_in_order(), &[a, b, c]);

        // Later interns keep earlier ranks consistent.
        let aa = i.intern(&Symbol::new("aa"));
        assert_eq!(i.rank_of(a), 0);
        assert_eq!(i.rank_of(aa), 1);
        assert_eq!(i.rank_of(b), 2);
        assert_eq!(i.rank_of(c), 3);
    }

    #[test]
    fn compare_words_matches_string_word_order() {
        let mut i = Interner::new();
        let words = [
            vec!["b"],
            vec!["a", "b"],
            vec!["a"],
            vec!["b", "a"],
            vec!["a", "a", "a"],
        ];
        let encoded: Vec<(InputWord, IWord)> = words
            .iter()
            .map(|w| {
                let word: InputWord = w.iter().map(Symbol::new).collect();
                let ids = i.encode(&word);
                (word, ids)
            })
            .collect();
        for (wa, ia) in &encoded {
            for (wb, ib) in &encoded {
                assert_eq!(
                    i.compare_words(ia.as_slice(), ib.as_slice()),
                    wa.cmp(wb),
                    "{wa} vs {wb}"
                );
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut i = Interner::new();
        let word: InputWord = ["x", "y", "x"].into_iter().map(Symbol::new).collect();
        let ids = i.encode(&word);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids.as_slice()[0], ids.as_slice()[2]);
        assert_eq!(i.decode(&ids), word);
        assert_eq!(i.try_encode(&word), Some(ids));
        let unknown: InputWord = ["z"].into_iter().map(Symbol::new).collect();
        assert_eq!(i.try_encode(&unknown), None);
    }

    #[test]
    fn alphabet_id_mapping_matches_insertion_order() {
        let alphabet = Alphabet::from_symbols(["b", "a", "c"]);
        assert_eq!(
            alphabet.id_of(&Symbol::new("b")),
            Some(SymbolId::from(0u32))
        );
        assert_eq!(
            alphabet.id_of(&Symbol::new("c")),
            Some(SymbolId::from(2u32))
        );
        assert_eq!(alphabet.symbol_of(1u32).unwrap().as_str(), "a");

        let word: InputWord = ["c", "a"].into_iter().map(Symbol::new).collect();
        let encoded = alphabet.encode(&word).unwrap();
        assert_eq!(alphabet.decode(&encoded).unwrap(), word);
        let unknown: InputWord = ["z"].into_iter().map(Symbol::new).collect();
        assert_eq!(alphabet.encode(&unknown), None);

        let interner = alphabet.interner();
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.resolve(0u32).as_str(), "b");
        // Rank order is string order, not insertion order.
        assert_eq!(interner.rank_of(0u32), 1);
        assert_eq!(interner.rank_of(1u32), 0);
    }
}
