//! Access sequences, characterizing sets and covers.
//!
//! These are the ingredients of conformance-testing-based equivalence
//! oracles (W-method, Wp-method) used by the learning module when no
//! omniscient equivalence oracle exists (§4.1): a counterexample found by
//! such an oracle is guaranteed valid, while its absence gives probabilistic
//! rather than absolute guarantees.

use crate::alphabet::Symbol;
use crate::mealy::{MealyMachine, StateId};
use crate::word::InputWord;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Shortest access sequence for every reachable state (BFS order).
///
/// The initial state maps to the empty word.
pub fn access_sequences(machine: &MealyMachine) -> BTreeMap<StateId, InputWord> {
    let mut out = BTreeMap::new();
    let mut queue = VecDeque::new();
    out.insert(machine.initial_state(), InputWord::empty());
    queue.push_back(machine.initial_state());
    while let Some(q) = queue.pop_front() {
        let prefix = out[&q].clone();
        for sym in machine.input_alphabet().iter() {
            let succ = machine.successor(q, sym).expect("total machine");
            if let std::collections::btree_map::Entry::Vacant(e) = out.entry(succ) {
                e.insert(prefix.append(sym.clone()));
                queue.push_back(succ);
            }
        }
    }
    out
}

/// The state cover: the set of access sequences (including ε).
pub fn state_cover(machine: &MealyMachine) -> Vec<InputWord> {
    let mut v: Vec<InputWord> = access_sequences(machine).into_values().collect();
    v.sort();
    v.dedup();
    v
}

/// The transition cover: every access sequence extended by every input symbol,
/// plus the state cover itself.
pub fn transition_cover(machine: &MealyMachine) -> Vec<InputWord> {
    let mut cover = state_cover(machine);
    let access = access_sequences(machine);
    for seq in access.values() {
        for sym in machine.input_alphabet().iter() {
            cover.push(seq.append(sym.clone()));
        }
    }
    cover.sort();
    cover.dedup();
    cover
}

/// A characterizing set W: a set of input words such that any two distinct
/// states of the (minimal) machine produce different outputs on at least one
/// word in the set.
///
/// Computed by pairwise distinguishing-word search (BFS on the state-pair
/// graph), which is quadratic in the number of states — plenty fast for the
/// model sizes Prognosis learns (≤ a few dozen states).
pub fn characterizing_set(machine: &MealyMachine) -> Vec<InputWord> {
    let states: Vec<StateId> = machine.states().collect();
    let mut w: Vec<InputWord> = Vec::new();
    for (i, &a) in states.iter().enumerate() {
        for &b in states.iter().skip(i + 1) {
            if w.iter().any(|word| distinguishes(machine, a, b, word)) {
                continue;
            }
            if let Some(word) = distinguishing_word(machine, a, b) {
                w.push(word);
            }
        }
    }
    if w.is_empty() {
        // A single-state machine (or one whose states are indistinguishable)
        // still needs a non-empty W for the W-method to exercise outputs.
        if let Some(sym) = machine.input_alphabet().iter().next() {
            w.push(InputWord::from_symbols([sym.clone()]));
        }
    }
    w.sort();
    w.dedup();
    w
}

/// Whether `word` produces different outputs from states `a` and `b`.
pub fn distinguishes(machine: &MealyMachine, a: StateId, b: StateId, word: &InputWord) -> bool {
    let (_, oa) = machine.run_from(a, word).expect("total machine");
    let (_, ob) = machine.run_from(b, word).expect("total machine");
    oa != ob
}

/// Shortest input word distinguishing states `a` and `b`, if any.
pub fn distinguishing_word(machine: &MealyMachine, a: StateId, b: StateId) -> Option<InputWord> {
    if a == b {
        return None;
    }
    let mut visited: HashSet<(StateId, StateId)> = HashSet::new();
    let mut queue: VecDeque<(StateId, StateId, InputWord)> = VecDeque::new();
    visited.insert((a, b));
    queue.push_back((a, b, InputWord::empty()));
    while let Some((qa, qb, word)) = queue.pop_front() {
        for sym in machine.input_alphabet().iter() {
            let (na, oa) = machine.step(qa, sym).expect("total machine");
            let (nb, ob) = machine.step(qb, sym).expect("total machine");
            let next = word.append(sym.clone());
            if oa != ob {
                return Some(next);
            }
            if visited.insert((na, nb)) {
                queue.push_back((na, nb, next));
            }
        }
    }
    None
}

/// All input words of length exactly `len` over the machine's alphabet.
pub fn words_of_length(machine: &MealyMachine, len: usize) -> Vec<InputWord> {
    let mut words = vec![InputWord::empty()];
    for _ in 0..len {
        let mut next = Vec::with_capacity(words.len() * machine.input_alphabet().len());
        for w in &words {
            for sym in machine.input_alphabet().iter() {
                next.push(w.append(sym.clone()));
            }
        }
        words = next;
    }
    words
}

/// The W-method test suite for conformance testing against `machine`,
/// assuming the SUL has at most `machine.num_states() + extra_states` states:
/// `transition_cover · Σ^{≤extra} · W`.
pub fn w_method_suite(machine: &MealyMachine, extra_states: usize) -> Vec<InputWord> {
    let cover = transition_cover(machine);
    let w = characterizing_set(machine);
    let mut middles: Vec<InputWord> = Vec::new();
    for len in 0..=extra_states {
        middles.extend(words_of_length(machine, len));
    }
    let mut suite = Vec::with_capacity(cover.len() * middles.len() * w.len());
    for p in &cover {
        for m in &middles {
            for s in &w {
                suite.push(p.concat(m).concat(s));
            }
        }
    }
    suite.sort();
    suite.dedup();
    suite
}

/// Streaming generator of the W-method suite `P · Σ^{≤extra} · W`.
///
/// Yields one suite word at a time without ever materializing the product:
/// only the (small) transition cover `P` and characterizing set `W` are
/// held in memory, while the middle words `Σ^{≤extra}` are enumerated by an
/// odometer — the `|P|·|Σ|^{extra}·|W|`-word product is exactly what makes
/// the W-method suite for a large hypothesis expensive to build and hold.
///
/// Order: for each `p ∈ P` (sorted), middles by length then
/// lexicographically by symbol index, then each `s ∈ W` (sorted).  Repeated
/// `p · m` prefixes (e.g. `p="a", m="b"` vs `p="ab", m=ε`) are emitted only
/// once, so the stream matches [`w_method_suite`] as a *set* (see the
/// property test) up to the rare residual duplicate where triples with
/// *different* `p · m` but different `s` concatenate identically; unlike
/// the materialized suite the stream is not globally sorted.
pub struct WMethodSuite {
    cover: Vec<InputWord>,
    w: Vec<InputWord>,
    alphabet: Vec<Symbol>,
    extra: usize,
    p_idx: usize,
    m_len: usize,
    m_digits: Vec<usize>,
    s_idx: usize,
    /// `p · m` prefixes already emitted, so a prefix reachable through
    /// several `(p, m)` factorizations (e.g. `p="a", m="b"` and
    /// `p="ab", m=ε`) contributes its `· W` block only once — the same
    /// duplicates [`w_method_suite`]'s sort+dedup removes, caught with
    /// `|W|`-times less memory than materializing the product.
    seen_prefixes: HashSet<InputWord>,
    /// The current block's `p · m` concatenation, cached across its `s`s.
    current_prefix: Option<InputWord>,
    done: bool,
}

/// Creates the streaming W-method suite generator for conformance testing
/// against `machine`, assuming the SUL has at most
/// `machine.num_states() + extra_states` states.
pub fn w_method_suite_stream(machine: &MealyMachine, extra_states: usize) -> WMethodSuite {
    let cover = transition_cover(machine);
    let w = characterizing_set(machine);
    let alphabet: Vec<Symbol> = machine.input_alphabet().iter().cloned().collect();
    let done = cover.is_empty() || w.is_empty();
    WMethodSuite {
        cover,
        w,
        alphabet,
        extra: extra_states,
        p_idx: 0,
        m_len: 0,
        m_digits: Vec::new(),
        s_idx: 0,
        seen_prefixes: HashSet::new(),
        current_prefix: None,
        done,
    }
}

impl WMethodSuite {
    /// Advances the `(p, m, s)` odometer; sets `done` past the last triple.
    fn advance(&mut self) {
        self.s_idx += 1;
        if self.s_idx < self.w.len() {
            return;
        }
        self.s_idx = 0;
        // Increment the middle word (rightmost digit fastest).
        for digit in self.m_digits.iter_mut().rev() {
            *digit += 1;
            if *digit < self.alphabet.len() {
                return;
            }
            *digit = 0;
        }
        // All digits wrapped: next middle length (or next cover prefix).
        self.m_len += 1;
        if self.m_len <= self.extra && !self.alphabet.is_empty() {
            self.m_digits = vec![0; self.m_len];
            return;
        }
        self.m_len = 0;
        self.m_digits.clear();
        self.p_idx += 1;
        if self.p_idx >= self.cover.len() {
            self.done = true;
        }
    }
}

impl Iterator for WMethodSuite {
    type Item = InputWord;

    fn next(&mut self) -> Option<InputWord> {
        loop {
            if self.done {
                return None;
            }
            if self.s_idx == 0 {
                // Entering a new `(p, m)` block: build its prefix once and
                // skip the whole block if an equal prefix was already
                // emitted (its `· W` words would all be duplicates).
                let middle: InputWord = self
                    .m_digits
                    .iter()
                    .map(|&d| self.alphabet[d].clone())
                    .collect::<Vec<_>>()
                    .into_iter()
                    .collect();
                let prefix = self.cover[self.p_idx].concat(&middle);
                if !self.seen_prefixes.insert(prefix.clone()) {
                    self.s_idx = self.w.len() - 1;
                    self.advance();
                    continue;
                }
                self.current_prefix = Some(prefix);
            }
            let prefix = self.current_prefix.as_ref().expect("block prefix built");
            let word = prefix.concat(&self.w[self.s_idx]);
            self.advance();
            return Some(word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn access_sequences_reach_their_states() {
        let m = known::counter(4);
        let access = access_sequences(&m);
        assert_eq!(access.len(), 4);
        for (&state, word) in &access {
            assert_eq!(m.state_after(word).unwrap(), state);
        }
        assert!(access[&m.initial_state()].is_empty());
    }

    #[test]
    fn state_cover_and_transition_cover_sizes() {
        let m = known::counter(3);
        let sc = state_cover(&m);
        let tc = transition_cover(&m);
        assert_eq!(sc.len(), 3);
        // Transition cover contains the state cover plus every one-symbol
        // extension; duplicates are removed.
        assert!(tc.len() >= sc.len());
        for w in &sc {
            assert!(tc.contains(w));
        }
    }

    #[test]
    fn characterizing_set_distinguishes_all_state_pairs() {
        let m = known::counter(5);
        let w = characterizing_set(&m);
        assert!(!w.is_empty());
        let states: Vec<_> = m.states().collect();
        for (i, &a) in states.iter().enumerate() {
            for &b in states.iter().skip(i + 1) {
                assert!(
                    w.iter().any(|word| distinguishes(&m, a, b, word)),
                    "states {a} and {b} not distinguished"
                );
            }
        }
    }

    #[test]
    fn distinguishing_word_is_none_for_equivalent_states() {
        let m = known::redundant_pair();
        // states 1 and 2 are behaviourally identical in this machine.
        assert_eq!(distinguishing_word(&m, 1, 2), None);
        assert!(distinguishing_word(&m, 0, 1).is_some());
        assert_eq!(distinguishing_word(&m, 0, 0), None);
    }

    #[test]
    fn w_method_suite_detects_a_mutated_machine() {
        use crate::mealy::MealyBuilder;
        let m = known::counter(3);
        // Build a mutant that differs on a deep transition: wrap goes to
        // state 1 instead of state 0.
        let mut b = MealyBuilder::new(m.input_alphabet().clone());
        b.add_states(3);
        for (from, input, output, to) in m.transitions() {
            let target = if output.as_str() == "wrap" { 1 } else { to };
            b.add_transition(from, input, output, target).unwrap();
        }
        let mutant = b.build().unwrap();
        let suite = w_method_suite(&m, 0);
        let caught = suite
            .iter()
            .any(|w| m.run(w).unwrap() != mutant.run(w).unwrap());
        assert!(caught, "W-method suite must catch the transition mutation");
    }

    #[test]
    fn streamed_suite_covers_exactly_the_materialized_suite() {
        for extra in 0..=2 {
            for machine in [known::counter(4), known::toggle(), known::counter(2)] {
                let materialized = w_method_suite(&machine, extra);
                let mut streamed: Vec<InputWord> = w_method_suite_stream(&machine, extra).collect();
                streamed.sort();
                streamed.dedup();
                assert_eq!(
                    streamed, materialized,
                    "stream must cover the same word set (extra = {extra})"
                );
            }
        }
    }

    #[test]
    fn streamed_suite_is_lazy_and_deterministic() {
        let m = known::counter(6);
        let first: Vec<InputWord> = w_method_suite_stream(&m, 2).take(10).collect();
        let again: Vec<InputWord> = w_method_suite_stream(&m, 2).take(10).collect();
        assert_eq!(first, again);
        assert_eq!(first.len(), 10, "a large suite streams without building");
    }

    #[test]
    fn words_of_length_counts() {
        let m = known::toggle();
        assert_eq!(words_of_length(&m, 0).len(), 1);
        assert_eq!(words_of_length(&m, 3).len(), 1); // single-symbol alphabet
        let m2 = known::counter(2);
        assert_eq!(words_of_length(&m2, 3).len(), 8);
    }
}
