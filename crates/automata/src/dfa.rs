//! Deterministic finite automata, used as safety-property monitors.
//!
//! The analysis module (§5) checks temporal properties such as
//! *"a CONNECTION_CLOSE is never followed by a STREAM output"* by compiling
//! the property into a monitor DFA over I/O pairs and checking that no trace
//! of the learned Mealy machine drives the monitor into a rejecting state.

use crate::alphabet::{Alphabet, Symbol};
use crate::word::InputWord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A deterministic finite automaton with explicit accepting states.
///
/// Unlike [`crate::mealy::MealyMachine`], a DFA may be partial: a missing
/// transition is interpreted as a transition to an implicit non-accepting
/// sink (useful for monitors where "anything else is fine" or
/// "anything else is a violation" depending on [`Dfa::missing_is_accepting`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfa {
    alphabet: Alphabet,
    initial: usize,
    accepting: Vec<bool>,
    transitions: Vec<BTreeMap<usize, usize>>,
    missing_is_accepting: bool,
}

/// Errors raised while building a DFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfaError {
    /// Referenced a state that was never added.
    UnknownState(usize),
    /// Used a symbol outside the alphabet.
    UnknownSymbol(Symbol),
    /// The DFA has no states.
    Empty,
}

impl fmt::Display for DfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfaError::UnknownState(q) => write!(f, "unknown DFA state {q}"),
            DfaError::UnknownSymbol(s) => write!(f, "unknown DFA symbol {s}"),
            DfaError::Empty => write!(f, "DFA has no states"),
        }
    }
}

impl std::error::Error for DfaError {}

/// Builder for [`Dfa`].
#[derive(Clone, Debug)]
pub struct DfaBuilder {
    alphabet: Alphabet,
    accepting: Vec<bool>,
    transitions: Vec<BTreeMap<usize, usize>>,
    initial: usize,
    missing_is_accepting: bool,
}

impl DfaBuilder {
    /// Creates a builder over the given alphabet.  By default a missing
    /// transition leads to an implicit rejecting sink.
    pub fn new(alphabet: Alphabet) -> Self {
        DfaBuilder {
            alphabet,
            accepting: Vec::new(),
            transitions: Vec::new(),
            initial: 0,
            missing_is_accepting: false,
        }
    }

    /// Configures whether missing transitions lead to an accepting sink
    /// (`true`) or a rejecting sink (`false`, the default).
    pub fn missing_is_accepting(&mut self, value: bool) -> &mut Self {
        self.missing_is_accepting = value;
        self
    }

    /// Adds a state; `accepting` marks it as accepting.
    pub fn add_state(&mut self, accepting: bool) -> usize {
        let id = self.transitions.len();
        self.transitions.push(BTreeMap::new());
        self.accepting.push(accepting);
        id
    }

    /// Sets the initial state (defaults to 0).
    pub fn set_initial(&mut self, state: usize) -> &mut Self {
        self.initial = state;
        self
    }

    /// Adds the transition `(from, symbol) → to`.
    pub fn add_transition(
        &mut self,
        from: usize,
        symbol: impl Into<Symbol>,
        to: usize,
    ) -> Result<&mut Self, DfaError> {
        let symbol = symbol.into();
        if from >= self.transitions.len() {
            return Err(DfaError::UnknownState(from));
        }
        if to >= self.transitions.len() {
            return Err(DfaError::UnknownState(to));
        }
        let idx = self
            .alphabet
            .index_of(&symbol)
            .ok_or(DfaError::UnknownSymbol(symbol))?;
        self.transitions[from].insert(idx, to);
        Ok(self)
    }

    /// Finalizes the DFA.
    pub fn build(self) -> Result<Dfa, DfaError> {
        if self.transitions.is_empty() {
            return Err(DfaError::Empty);
        }
        if self.initial >= self.transitions.len() {
            return Err(DfaError::UnknownState(self.initial));
        }
        Ok(Dfa {
            alphabet: self.alphabet,
            initial: self.initial,
            accepting: self.accepting,
            transitions: self.transitions,
            missing_is_accepting: self.missing_is_accepting,
        })
    }
}

/// The result of stepping a DFA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DfaState {
    /// An explicit state of the DFA.
    State(usize),
    /// The implicit sink reached through a missing transition.
    Sink,
}

impl Dfa {
    /// The alphabet of the DFA.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of explicit states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// Whether an explicit state is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.get(state).copied().unwrap_or(false)
    }

    /// Steps from `state` on `symbol`.
    pub fn step(&self, state: DfaState, symbol: &Symbol) -> DfaState {
        match state {
            DfaState::Sink => DfaState::Sink,
            DfaState::State(q) => match self.alphabet.index_of(symbol) {
                None => DfaState::Sink,
                Some(idx) => match self.transitions[q].get(&idx) {
                    Some(&to) => DfaState::State(to),
                    None => DfaState::Sink,
                },
            },
        }
    }

    /// Whether a DFA state (explicit or sink) is accepting.
    pub fn state_accepts(&self, state: DfaState) -> bool {
        match state {
            DfaState::State(q) => self.is_accepting(q),
            DfaState::Sink => self.missing_is_accepting,
        }
    }

    /// Runs the DFA on a word and reports acceptance.
    pub fn accepts(&self, word: &InputWord) -> bool {
        let mut state = DfaState::State(self.initial);
        for sym in word.iter() {
            state = self.step(state, sym);
        }
        self.state_accepts(state)
    }

    /// Runs the DFA, returning the first prefix length at which the run is
    /// non-accepting, or `None` if every prefix (including the full word) is
    /// accepting.  Safety monitors use this to locate the violating step.
    pub fn first_rejecting_prefix(&self, word: &InputWord) -> Option<usize> {
        let mut state = DfaState::State(self.initial);
        if !self.state_accepts(state) {
            return Some(0);
        }
        for (i, sym) in word.iter().enumerate() {
            state = self.step(state, sym);
            if !self.state_accepts(state) {
                return Some(i + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Monitor for "never two `close` symbols in a row".
    fn no_double_close() -> Dfa {
        let alphabet = Alphabet::from_symbols(["open", "close", "data"]);
        let mut b = DfaBuilder::new(alphabet);
        let ok = b.add_state(true);
        let after_close = b.add_state(true);
        let bad = b.add_state(false);
        b.add_transition(ok, "open", ok).unwrap();
        b.add_transition(ok, "data", ok).unwrap();
        b.add_transition(ok, "close", after_close).unwrap();
        b.add_transition(after_close, "open", ok).unwrap();
        b.add_transition(after_close, "data", ok).unwrap();
        b.add_transition(after_close, "close", bad).unwrap();
        b.add_transition(bad, "open", bad).unwrap();
        b.add_transition(bad, "data", bad).unwrap();
        b.add_transition(bad, "close", bad).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accepts_safe_words_rejects_violations() {
        let d = no_double_close();
        assert!(d.accepts(&InputWord::from_symbols(["open", "data", "close", "open"])));
        assert!(!d.accepts(&InputWord::from_symbols(["close", "close"])));
        assert_eq!(
            d.first_rejecting_prefix(&InputWord::from_symbols(["open", "close", "close", "data"])),
            Some(3)
        );
        assert_eq!(
            d.first_rejecting_prefix(&InputWord::from_symbols(["open", "close", "open"])),
            None
        );
    }

    #[test]
    fn missing_transition_goes_to_configured_sink() {
        let alphabet = Alphabet::from_symbols(["a", "b"]);
        let mut b = DfaBuilder::new(alphabet.clone());
        let s0 = b.add_state(true);
        b.add_transition(s0, "a", s0).unwrap();
        let reject_sink = b.build().unwrap();
        assert!(reject_sink.accepts(&InputWord::from_symbols(["a", "a"])));
        assert!(!reject_sink.accepts(&InputWord::from_symbols(["a", "b"])));

        let mut b = DfaBuilder::new(alphabet);
        b.missing_is_accepting(true);
        let s0 = b.add_state(true);
        b.add_transition(s0, "a", s0).unwrap();
        let accept_sink = b.build().unwrap();
        assert!(accept_sink.accepts(&InputWord::from_symbols(["a", "b", "b"])));
    }

    #[test]
    fn symbols_outside_alphabet_go_to_sink() {
        let d = no_double_close();
        assert!(!d.accepts(&InputWord::from_symbols(["nonsense"])));
    }

    #[test]
    fn builder_errors() {
        let alphabet = Alphabet::from_symbols(["a"]);
        let mut b = DfaBuilder::new(alphabet.clone());
        assert!(matches!(
            b.add_transition(0, "a", 0),
            Err(DfaError::UnknownState(0))
        ));
        let s0 = b.add_state(true);
        assert!(matches!(
            b.add_transition(s0, "zzz", s0),
            Err(DfaError::UnknownSymbol(_))
        ));
        assert!(matches!(
            b.add_transition(s0, "a", 4),
            Err(DfaError::UnknownState(4))
        ));
        let empty = DfaBuilder::new(alphabet);
        assert!(matches!(empty.build(), Err(DfaError::Empty)));
    }

    #[test]
    fn accessors() {
        let d = no_double_close();
        assert_eq!(d.num_states(), 3);
        assert_eq!(d.initial_state(), 0);
        assert!(d.is_accepting(0));
        assert!(!d.is_accepting(2));
        assert!(!d.is_accepting(17));
        assert_eq!(d.alphabet().len(), 3);
    }
}
