//! Graphviz (DOT) export of learned models.
//!
//! The paper's analysis module exposes "simple visualizations of the learned
//! models that allow a user to visually compare two models" (§2, §5); the
//! appendix figures are rendered from exactly this kind of export.  Edges
//! with identical endpoints are merged into a single multi-label edge to keep
//! the output readable for QUIC-sized machines.

use crate::mealy::MealyMachine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options controlling DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name used in the `digraph` header.
    pub name: String,
    /// Whether self-loop transitions that output `silent_output` are hidden;
    /// the appendix figures omit most "ignored input" self-loops.
    pub hide_silent_self_loops: bool,
    /// The output symbol treated as silent (defaults to `{}`; the TCP case
    /// uses `NIL`).
    pub silent_output: String,
    /// Whether state names (rather than ids) are used as node labels.
    pub use_state_names: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "prognosis_model".to_string(),
            hide_silent_self_loops: false,
            silent_output: "{}".to_string(),
            use_state_names: false,
        }
    }
}

/// Renders a Mealy machine as a Graphviz digraph.
pub fn to_dot(machine: &MealyMachine, options: &DotOptions) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(&options.name)).unwrap();
    writeln!(out, "    rankdir=TB;").unwrap();
    writeln!(out, "    node [shape=circle, fontsize=10];").unwrap();
    writeln!(out, "    __start [shape=point, style=invis];").unwrap();
    for q in machine.states() {
        let label = if options.use_state_names {
            machine.state_name(q).to_string()
        } else {
            format!("s{q}")
        };
        writeln!(out, "    s{q} [label=\"{}\"];", escape(&label)).unwrap();
    }
    writeln!(out, "    __start -> s{};", machine.initial_state()).unwrap();

    // Group edge labels by (source, target) pair.
    let mut edges: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
    for (from, input, output, to) in machine.transitions() {
        if options.hide_silent_self_loops && from == to && output.as_str() == options.silent_output
        {
            continue;
        }
        edges
            .entry((from, to))
            .or_default()
            .push(format!("{input} / {output}"));
    }
    for ((from, to), labels) in edges {
        writeln!(
            out,
            "    s{from} -> s{to} [label=\"{}\"];",
            escape(&labels.join("\\n"))
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Renders with default options.
pub fn to_dot_default(machine: &MealyMachine) -> String {
    to_dot(machine, &DotOptions::default())
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "model".to_string()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn dot_contains_all_states_and_initial_marker() {
        let m = known::tcp_handshake_fragment();
        let dot = to_dot_default(&m);
        assert!(dot.starts_with("digraph prognosis_model {"));
        for q in m.states() {
            assert!(dot.contains(&format!("s{q} [label=")));
        }
        assert!(dot.contains("__start -> s0;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn edges_are_grouped_per_state_pair() {
        let m = known::counter(2);
        let dot = to_dot_default(&m);
        // counter(2) has transitions s0->s1 (inc) and s0->s0 (reset):
        // exactly one edge line per (source,target) pair.
        let s0_to_s1 = dot.matches("s0 -> s1 [label=").count();
        assert_eq!(s0_to_s1, 1);
    }

    #[test]
    fn silent_self_loops_can_be_hidden() {
        let m = known::tcp_handshake_fragment();
        let opts = DotOptions {
            hide_silent_self_loops: true,
            silent_output: "NIL".to_string(),
            ..DotOptions::default()
        };
        let hidden = to_dot(&m, &opts);
        let shown = to_dot_default(&m);
        assert!(hidden.len() < shown.len());
        // s2 only has NIL self loops, so it must have no outgoing edges.
        assert!(!hidden.contains("s2 -> s2"));
        assert!(shown.contains("s2 -> s2"));
    }

    #[test]
    fn graph_name_is_sanitized() {
        let m = known::toggle();
        let opts = DotOptions {
            name: "google QUIC (draft-29)".to_string(),
            ..Default::default()
        };
        let dot = to_dot(&m, &opts);
        assert!(dot.starts_with("digraph google_QUIC__draft_29_ {"));
        let empty_name = DotOptions {
            name: "".to_string(),
            ..Default::default()
        };
        assert!(to_dot(&m, &empty_name).starts_with("digraph model {"));
    }

    #[test]
    fn state_names_can_be_used_as_labels() {
        use crate::alphabet::Alphabet;
        use crate::mealy::MealyBuilder;
        let mut b = MealyBuilder::new(Alphabet::from_symbols(["a"]));
        let s0 = b.add_named_state("LISTEN");
        b.add_transition(s0, "a", "x", s0).unwrap();
        let m = b.build().unwrap();
        let opts = DotOptions {
            use_state_names: true,
            ..Default::default()
        };
        assert!(to_dot(&m, &opts).contains("label=\"LISTEN\""));
    }
}
