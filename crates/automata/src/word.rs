//! Input/output words and input/output traces.
//!
//! A *word* is a finite sequence of symbols.  Learners manipulate input
//! words (queries) and output words (responses); the pair of the two is an
//! [`IoTrace`], the unit stored in the Oracle Table.

use crate::alphabet::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A finite sequence of input symbols.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct InputWord(Vec<Symbol>);

/// A finite sequence of output symbols.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OutputWord(Vec<Symbol>);

macro_rules! word_impl {
    ($name:ident) => {
        impl $name {
            /// The empty word ε.
            pub fn empty() -> Self {
                $name(Vec::new())
            }

            /// Creates a word from an iterator of symbols.
            pub fn from_symbols<I, S>(symbols: I) -> Self
            where
                I: IntoIterator<Item = S>,
                S: Into<Symbol>,
            {
                $name(symbols.into_iter().map(Into::into).collect())
            }

            /// Word length.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether this is the empty word.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the symbols.
            pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
                self.0.iter()
            }

            /// The symbols as a slice.
            pub fn as_slice(&self) -> &[Symbol] {
                &self.0
            }

            /// Appends a symbol, returning a new word.
            pub fn append(&self, symbol: impl Into<Symbol>) -> Self {
                let mut v = self.0.clone();
                v.push(symbol.into());
                $name(v)
            }

            /// Appends a symbol in place.
            pub fn push(&mut self, symbol: impl Into<Symbol>) {
                self.0.push(symbol.into());
            }

            /// Concatenates two words, returning a new word.
            pub fn concat(&self, other: &Self) -> Self {
                let mut v = self.0.clone();
                v.extend_from_slice(&other.0);
                $name(v)
            }

            /// The prefix of the first `n` symbols (or the whole word if shorter).
            pub fn prefix(&self, n: usize) -> Self {
                $name(self.0.iter().take(n).cloned().collect())
            }

            /// The suffix starting at position `n` (empty if `n >= len`).
            pub fn suffix_from(&self, n: usize) -> Self {
                $name(self.0.iter().skip(n).cloned().collect())
            }

            /// The last symbol, if any.
            pub fn last(&self) -> Option<&Symbol> {
                self.0.last()
            }
        }

        impl<S: Into<Symbol>> FromIterator<S> for $name {
            fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
                $name::from_symbols(iter)
            }
        }

        impl Index<usize> for $name {
            type Output = Symbol;
            fn index(&self, i: usize) -> &Symbol {
                &self.0[i]
            }
        }

        impl IntoIterator for $name {
            type Item = Symbol;
            type IntoIter = std::vec::IntoIter<Symbol>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        impl<'a> IntoIterator for &'a $name {
            type Item = &'a Symbol;
            type IntoIter = std::slice::Iter<'a, Symbol>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.iter()
            }
        }

        impl From<Vec<Symbol>> for $name {
            fn from(v: Vec<Symbol>) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.is_empty() {
                    return write!(f, "ε");
                }
                let parts: Vec<&str> = self.0.iter().map(|s| s.as_str()).collect();
                write!(f, "{}", parts.join(" · "))
            }
        }

        impl serde::MapKey for $name {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Option<Self> {
                if key == "ε" {
                    return Some($name::empty());
                }
                Some(key.split(" · ").map(Symbol::new).collect())
            }
        }
    };
}

word_impl!(InputWord);
word_impl!(OutputWord);

/// A pair of an input word and the output word the system produced for it.
///
/// Invariant: learners only construct traces where both words have equal
/// length (one output symbol per input symbol); this is checked by
/// [`IoTrace::new`].
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IoTrace {
    /// The input word sent to the system.
    pub input: InputWord,
    /// The output word observed in response (aligned with `input`).
    pub output: OutputWord,
}

impl IoTrace {
    /// Creates a trace, panicking if the two words differ in length.
    ///
    /// # Panics
    /// Panics when `input.len() != output.len()`.
    pub fn new(input: InputWord, output: OutputWord) -> Self {
        assert_eq!(
            input.len(),
            output.len(),
            "an I/O trace must pair each input symbol with exactly one output symbol"
        );
        IoTrace { input, output }
    }

    /// The empty trace.
    pub fn empty() -> Self {
        IoTrace {
            input: InputWord::empty(),
            output: OutputWord::empty(),
        }
    }

    /// Length of the trace (number of I/O steps).
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// Iterates over `(input, output)` symbol pairs.
    pub fn steps(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.input.iter().zip(self.output.iter())
    }

    /// Prefix of the first `n` steps.
    pub fn prefix(&self, n: usize) -> Self {
        IoTrace {
            input: self.input.prefix(n),
            output: self.output.prefix(n),
        }
    }
}

impl fmt::Display for IoTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε/ε");
        }
        let parts: Vec<String> = self.steps().map(|(i, o)| format!("{i}/{o}")).collect();
        write!(f, "{}", parts.join(" · "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_word_properties() {
        let w = InputWord::empty();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(format!("{w}"), "ε");
        assert_eq!(w.last(), None);
    }

    #[test]
    fn append_and_concat() {
        let w = InputWord::from_symbols(["a", "b"]);
        let w2 = w.append("c");
        assert_eq!(w.len(), 2);
        assert_eq!(w2.len(), 3);
        assert_eq!(w2[2].as_str(), "c");
        let cat = w.concat(&w2);
        assert_eq!(cat.len(), 5);
        assert_eq!(cat.last().unwrap().as_str(), "c");
    }

    #[test]
    fn prefix_and_suffix() {
        let w = OutputWord::from_symbols(["x", "y", "z"]);
        assert_eq!(w.prefix(2).len(), 2);
        assert_eq!(w.prefix(10).len(), 3);
        assert_eq!(w.suffix_from(1).as_slice()[0].as_str(), "y");
        assert_eq!(w.suffix_from(3).len(), 0);
        assert_eq!(w.suffix_from(17).len(), 0);
    }

    #[test]
    fn display_joins_symbols() {
        let w = InputWord::from_symbols(["SYN", "ACK"]);
        assert_eq!(format!("{w}"), "SYN · ACK");
    }

    #[test]
    fn trace_pairs_inputs_with_outputs() {
        let t = IoTrace::new(
            InputWord::from_symbols(["SYN", "ACK"]),
            OutputWord::from_symbols(["SYN+ACK", "NIL"]),
        );
        assert_eq!(t.len(), 2);
        let steps: Vec<(String, String)> = t
            .steps()
            .map(|(i, o)| (i.to_string(), o.to_string()))
            .collect();
        assert_eq!(steps[0], ("SYN".into(), "SYN+ACK".into()));
        assert_eq!(format!("{t}"), "SYN/SYN+ACK · ACK/NIL");
        assert_eq!(t.prefix(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "must pair each input symbol")]
    fn trace_rejects_mismatched_lengths() {
        let _ = IoTrace::new(
            InputWord::from_symbols(["a"]),
            OutputWord::from_symbols(["x", "y"]),
        );
    }

    #[test]
    fn words_are_ordered_for_determinism() {
        let a = InputWord::from_symbols(["a"]);
        let b = InputWord::from_symbols(["b"]);
        let ab = InputWord::from_symbols(["a", "b"]);
        assert!(a < b);
        assert!(a < ab);
    }

    #[test]
    fn serde_round_trip() {
        let t = IoTrace::new(
            InputWord::from_symbols(["a", "b"]),
            OutputWord::from_symbols(["1", "2"]),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: IoTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
