//! Mealy machines — the models Prognosis learns (§4.2, Definition 4.1).
//!
//! A Mealy machine is a tuple (S, s₀, Σ̂, Γ̂, T, G) with a finite state set,
//! an initial state, abstract input/output alphabets, a transition function
//! `T : S × Σ̂ → S` and an output function `G : S × Σ̂ → Γ̂`.  Machines built
//! through [`MealyBuilder`] are *total*: every state has a transition for
//! every input symbol, matching the "deterministic and total" models the
//! paper's learner produces.

use crate::alphabet::{Alphabet, Symbol};
use crate::word::{InputWord, IoTrace, OutputWord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A dense state identifier. State 0 is always the initial state after
/// construction through the builder unless overridden.
pub type StateId = usize;

/// A deterministic, total Mealy machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MealyMachine {
    input_alphabet: Alphabet,
    output_alphabet: Alphabet,
    initial: StateId,
    num_states: usize,
    /// transitions[state][input index] = (successor, output)
    transitions: Vec<Vec<(StateId, Symbol)>>,
    /// Optional human-readable state names (e.g. access sequences).
    state_names: Vec<String>,
}

/// Errors produced when constructing or querying a Mealy machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MealyError {
    /// A symbol was used that is not part of the input alphabet.
    UnknownInput(Symbol),
    /// A state id outside `0..num_states` was referenced.
    UnknownState(StateId),
    /// The machine is not total: a (state, input) pair has no transition.
    MissingTransition(StateId, Symbol),
    /// The machine has no states.
    Empty,
}

impl fmt::Display for MealyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MealyError::UnknownInput(s) => write!(f, "unknown input symbol {s}"),
            MealyError::UnknownState(q) => write!(f, "unknown state {q}"),
            MealyError::MissingTransition(q, s) => {
                write!(f, "missing transition from state {q} on input {s}")
            }
            MealyError::Empty => write!(f, "machine has no states"),
        }
    }
}

impl std::error::Error for MealyError {}

impl MealyMachine {
    /// The input alphabet Σ̂.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.input_alphabet
    }

    /// The output alphabet Γ̂ (all outputs that appear on transitions).
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.output_alphabet
    }

    /// The initial state s₀.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Number of states |S|.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of transitions (|S| × |Σ̂| for a total machine).
    pub fn num_transitions(&self) -> usize {
        self.num_states * self.input_alphabet.len()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        0..self.num_states
    }

    /// The human-readable name of a state (defaults to `s{id}`).
    pub fn state_name(&self, state: StateId) -> &str {
        &self.state_names[state]
    }

    /// Successor state and output for `(state, input)`.
    pub fn step(&self, state: StateId, input: &Symbol) -> Result<(StateId, Symbol), MealyError> {
        if state >= self.num_states {
            return Err(MealyError::UnknownState(state));
        }
        let idx = self
            .input_alphabet
            .index_of(input)
            .ok_or_else(|| MealyError::UnknownInput(input.clone()))?;
        Ok(self.transitions[state][idx].clone())
    }

    /// Successor state for `(state, input)`.
    pub fn successor(&self, state: StateId, input: &Symbol) -> Result<StateId, MealyError> {
        self.step(state, input).map(|(q, _)| q)
    }

    /// Output symbol for `(state, input)`.
    pub fn output(&self, state: StateId, input: &Symbol) -> Result<Symbol, MealyError> {
        self.step(state, input).map(|(_, o)| o)
    }

    /// Runs the machine on an input word from the initial state, returning
    /// the produced output word.
    pub fn run(&self, input: &InputWord) -> Result<OutputWord, MealyError> {
        self.run_from(self.initial, input).map(|(_, o)| o)
    }

    /// Runs the machine from an arbitrary state, returning the reached state
    /// and the produced output word.
    pub fn run_from(
        &self,
        start: StateId,
        input: &InputWord,
    ) -> Result<(StateId, OutputWord), MealyError> {
        let mut state = start;
        let mut out = OutputWord::empty();
        for sym in input.iter() {
            let (next, o) = self.step(state, sym)?;
            out.push(o);
            state = next;
        }
        Ok((state, out))
    }

    /// State reached from the initial state on the given input word.
    pub fn state_after(&self, input: &InputWord) -> Result<StateId, MealyError> {
        self.run_from(self.initial, input).map(|(q, _)| q)
    }

    /// Runs the machine and packages the result as an [`IoTrace`].
    pub fn trace(&self, input: &InputWord) -> Result<IoTrace, MealyError> {
        let output = self.run(input)?;
        Ok(IoTrace::new(input.clone(), output))
    }

    /// Whether this machine produces the given trace.
    pub fn accepts_trace(&self, trace: &IoTrace) -> bool {
        match self.run(&trace.input) {
            Ok(out) => out == trace.output,
            Err(_) => false,
        }
    }

    /// All transitions as `(source, input, output, target)` tuples, ordered
    /// by source state then input index (deterministic iteration order).
    pub fn transitions(&self) -> Vec<(StateId, Symbol, Symbol, StateId)> {
        let mut out = Vec::with_capacity(self.num_transitions());
        for q in self.states() {
            for (idx, sym) in self.input_alphabet.iter().enumerate() {
                let (next, o) = &self.transitions[q][idx];
                out.push((q, sym.clone(), o.clone(), *next));
            }
        }
        out
    }

    /// States reachable from the initial state (always all states for
    /// machines produced by [`MealyMachine::trim`], possibly fewer otherwise).
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut visited = vec![false; self.num_states];
        let mut stack = vec![self.initial];
        visited[self.initial] = true;
        let mut order = Vec::new();
        while let Some(q) = stack.pop() {
            order.push(q);
            for idx in 0..self.input_alphabet.len() {
                let (next, _) = self.transitions[q][idx];
                if !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
        }
        order.sort_unstable();
        order
    }

    /// Returns an equivalent machine containing only reachable states,
    /// renumbered densely (initial state becomes 0).
    pub fn trim(&self) -> MealyMachine {
        let reachable = self.reachable_states();
        let mut remap: BTreeMap<StateId, StateId> = BTreeMap::new();
        // Keep the initial state first so the invariant "initial = 0" holds.
        remap.insert(self.initial, 0);
        let mut next_id = 1;
        for &q in &reachable {
            remap.entry(q).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                id
            });
        }
        let mut transitions = vec![Vec::new(); remap.len()];
        let mut state_names = vec![String::new(); remap.len()];
        for (&old, &new) in &remap {
            state_names[new] = self.state_names[old].clone();
            transitions[new] = self.transitions[old]
                .iter()
                .map(|(succ, out)| (remap[succ], out.clone()))
                .collect();
        }
        MealyMachine {
            input_alphabet: self.input_alphabet.clone(),
            output_alphabet: self.output_alphabet.clone(),
            initial: 0,
            num_states: remap.len(),
            transitions,
            state_names,
        }
    }

    /// Enumerates all I/O traces of the machine with input length at most
    /// `max_len`, starting from the initial state.
    ///
    /// The number of such traces is exactly the number of input words of
    /// length ≤ `max_len` restricted to the machine's behaviour; the paper
    /// (E4) uses this to contrast the learned-model trace count with the
    /// full trace space of the alphabet.
    pub fn traces_up_to_length(&self, max_len: usize) -> Vec<IoTrace> {
        let mut out = Vec::new();
        let mut frontier: Vec<(StateId, IoTrace)> = vec![(self.initial, IoTrace::empty())];
        for _ in 0..max_len {
            let mut next_frontier = Vec::new();
            for (state, trace) in &frontier {
                for sym in self.input_alphabet.iter() {
                    let (succ, o) = self.step(*state, sym).expect("total machine");
                    let t = IoTrace::new(trace.input.append(sym.clone()), trace.output.append(o));
                    out.push(t.clone());
                    next_frontier.push((succ, t));
                }
            }
            frontier = next_frontier;
        }
        out
    }

    /// Counts distinct *output-labelled* traces of input length ≤ `max_len`
    /// without materializing them.
    ///
    /// For a deterministic machine each input word yields exactly one trace,
    /// so this equals `|Σ̂|^1 + … + |Σ̂|^max_len`; the interesting quantity for
    /// E4 is the number of *distinct observable behaviours*, i.e. traces that
    /// reach distinct states or produce distinct outputs, which the analysis
    /// crate computes via [`MealyMachine::count_behaviour_traces`].
    pub fn count_traces_up_to_length(&self, max_len: u32) -> u128 {
        self.input_alphabet.words_up_to_length(max_len)
    }

    /// Counts traces of input length ≤ `max_len` that are *behaviourally
    /// informative*: traces in which every step either changes state or
    /// produces a non-empty output.  This mirrors the paper's count of model
    /// traces that actually need to be checked (1,210 and 715 for the two
    /// QUIC models) as opposed to the full 329M-trace space.
    pub fn count_behaviour_traces(&self, max_len: usize, silent: &Symbol) -> u64 {
        // Depth-limited DFS over (state, depth); a trace is counted when it
        // ends, and extension is pruned once the machine enters a state from
        // which every input loops back with the silent output (a "sink").
        let sink = self.sink_states(silent);
        let mut count = 0u64;
        let mut stack: Vec<(StateId, usize)> = vec![(self.initial, 0)];
        while let Some((state, depth)) = stack.pop() {
            if depth == max_len {
                continue;
            }
            for sym in self.input_alphabet.iter() {
                let (succ, out) = self.step(state, sym).expect("total machine");
                let informative = succ != state || out != *silent;
                if informative {
                    count += 1;
                }
                if !sink[succ] || informative {
                    stack.push((succ, depth + 1));
                }
            }
        }
        count
    }

    fn sink_states(&self, silent: &Symbol) -> Vec<bool> {
        (0..self.num_states)
            .map(|q| {
                self.input_alphabet.iter().all(|sym| {
                    let (succ, out) = self.step(q, sym).expect("total machine");
                    succ == q && out == *silent
                })
            })
            .collect()
    }
}

/// Incremental builder for [`MealyMachine`].
///
/// States are added explicitly; transitions may be added in any order.  The
/// builder checks totality on [`MealyBuilder::build`].
#[derive(Clone, Debug)]
pub struct MealyBuilder {
    input_alphabet: Alphabet,
    transitions: Vec<BTreeMap<usize, (StateId, Symbol)>>,
    state_names: Vec<String>,
    initial: StateId,
}

impl MealyBuilder {
    /// Creates a builder over the given input alphabet.
    pub fn new(input_alphabet: Alphabet) -> Self {
        MealyBuilder {
            input_alphabet,
            transitions: Vec::new(),
            state_names: Vec::new(),
            initial: 0,
        }
    }

    /// Adds a state with a default name, returning its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.transitions.len();
        self.transitions.push(BTreeMap::new());
        self.state_names.push(format!("s{id}"));
        id
    }

    /// Adds a state with an explicit name, returning its id.
    pub fn add_named_state(&mut self, name: impl Into<String>) -> StateId {
        let id = self.add_state();
        self.state_names[id] = name.into();
        id
    }

    /// Adds `n` states, returning their ids.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Sets the initial state (defaults to 0).
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.initial = state;
        self
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Adds (or overwrites) the transition `(from, input) → (to, output)`.
    pub fn add_transition(
        &mut self,
        from: StateId,
        input: impl Into<Symbol>,
        output: impl Into<Symbol>,
        to: StateId,
    ) -> Result<&mut Self, MealyError> {
        let input = input.into();
        if from >= self.transitions.len() {
            return Err(MealyError::UnknownState(from));
        }
        if to >= self.transitions.len() {
            return Err(MealyError::UnknownState(to));
        }
        let idx = self
            .input_alphabet
            .index_of(&input)
            .ok_or(MealyError::UnknownInput(input))?;
        self.transitions[from].insert(idx, (to, output.into()));
        Ok(self)
    }

    /// Adds a self-loop with the given output for every input symbol that
    /// does not yet have a transition out of `state`.  Convenient for the
    /// "every other input is ignored" pattern in the appendix models.
    pub fn complete_with_self_loops(&mut self, state: StateId, output: impl Into<Symbol>) {
        let output = output.into();
        for idx in 0..self.input_alphabet.len() {
            self.transitions[state]
                .entry(idx)
                .or_insert((state, output.clone()));
        }
    }

    /// Finalizes the machine, verifying determinism and totality.
    pub fn build(self) -> Result<MealyMachine, MealyError> {
        if self.transitions.is_empty() {
            return Err(MealyError::Empty);
        }
        if self.initial >= self.transitions.len() {
            return Err(MealyError::UnknownState(self.initial));
        }
        let mut dense = Vec::with_capacity(self.transitions.len());
        let mut outputs = Alphabet::new();
        for (state, row) in self.transitions.iter().enumerate() {
            let mut dense_row = Vec::with_capacity(self.input_alphabet.len());
            for (idx, sym) in self.input_alphabet.iter().enumerate() {
                match row.get(&idx) {
                    Some((to, out)) => {
                        outputs.insert(out.clone());
                        dense_row.push((*to, out.clone()));
                    }
                    None => return Err(MealyError::MissingTransition(state, sym.clone())),
                }
            }
            dense.push(dense_row);
        }
        Ok(MealyMachine {
            input_alphabet: self.input_alphabet,
            output_alphabet: outputs,
            initial: self.initial,
            num_states: dense.len(),
            transitions: dense,
            state_names: self.state_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The TCP 3-way handshake fragment from Fig. 3(b).
    pub(crate) fn handshake_machine() -> MealyMachine {
        let inputs = Alphabet::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.add_transition(s0, "SYN(?,?,0)", "ACK+SYN(?,?,0)", s1)
            .unwrap();
        b.add_transition(s0, "ACK(?,?,0)", "RST(?,?,0)", s0)
            .unwrap();
        b.add_transition(s1, "ACK(?,?,0)", "NIL", s2).unwrap();
        b.add_transition(s1, "SYN(?,?,0)", "NIL", s1).unwrap();
        b.complete_with_self_loops(s2, "NIL");
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_total_machine() {
        let m = handshake_machine();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.num_transitions(), 6);
        assert_eq!(m.initial_state(), 0);
        assert_eq!(m.input_alphabet().len(), 2);
        assert!(m.output_alphabet().contains(&Symbol::new("NIL")));
    }

    #[test]
    fn builder_rejects_partial_machine() {
        let inputs = Alphabet::from_symbols(["a", "b"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        b.add_transition(s0, "a", "x", s0).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, MealyError::MissingTransition(0, _)));
    }

    #[test]
    fn builder_rejects_unknown_symbols_and_states() {
        let inputs = Alphabet::from_symbols(["a"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        assert!(matches!(
            b.add_transition(s0, "zz", "x", s0),
            Err(MealyError::UnknownInput(_))
        ));
        assert!(matches!(
            b.add_transition(s0, "a", "x", 7),
            Err(MealyError::UnknownState(7))
        ));
        assert!(matches!(
            b.add_transition(9, "a", "x", s0),
            Err(MealyError::UnknownState(9))
        ));
        let empty = MealyBuilder::new(Alphabet::from_symbols(["a"]));
        assert!(matches!(empty.build(), Err(MealyError::Empty)));
    }

    #[test]
    fn run_reproduces_handshake_trace() {
        let m = handshake_machine();
        let input = InputWord::from_symbols(["SYN(?,?,0)", "ACK(?,?,0)"]);
        let out = m.run(&input).unwrap();
        assert_eq!(out, OutputWord::from_symbols(["ACK+SYN(?,?,0)", "NIL"]));
        assert_eq!(m.state_after(&input).unwrap(), 2);
    }

    #[test]
    fn run_from_intermediate_state() {
        let m = handshake_machine();
        let (q, out) = m
            .run_from(1, &InputWord::from_symbols(["ACK(?,?,0)"]))
            .unwrap();
        assert_eq!(q, 2);
        assert_eq!(out, OutputWord::from_symbols(["NIL"]));
    }

    #[test]
    fn step_errors_on_bad_arguments() {
        let m = handshake_machine();
        assert!(matches!(
            m.step(99, &Symbol::new("SYN(?,?,0)")),
            Err(MealyError::UnknownState(99))
        ));
        assert!(matches!(
            m.step(0, &Symbol::new("FIN")),
            Err(MealyError::UnknownInput(_))
        ));
    }

    #[test]
    fn accepts_trace_checks_output_word() {
        let m = handshake_machine();
        let good = IoTrace::new(
            InputWord::from_symbols(["SYN(?,?,0)"]),
            OutputWord::from_symbols(["ACK+SYN(?,?,0)"]),
        );
        let bad = IoTrace::new(
            InputWord::from_symbols(["SYN(?,?,0)"]),
            OutputWord::from_symbols(["NIL"]),
        );
        assert!(m.accepts_trace(&good));
        assert!(!m.accepts_trace(&bad));
    }

    #[test]
    fn trim_removes_unreachable_states() {
        let inputs = Alphabet::from_symbols(["a"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state(); // unreachable
        b.add_transition(s0, "a", "x", s1).unwrap();
        b.add_transition(s1, "a", "y", s0).unwrap();
        b.add_transition(s2, "a", "z", s2).unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.num_states(), 3);
        let t = m.trim();
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.initial_state(), 0);
        assert_eq!(
            t.run(&InputWord::from_symbols(["a", "a", "a"])).unwrap(),
            OutputWord::from_symbols(["x", "y", "x"])
        );
    }

    #[test]
    fn traces_up_to_length_enumerates_all_words() {
        let m = handshake_machine();
        let traces = m.traces_up_to_length(2);
        // 2 symbols: 2 traces of length 1 + 4 traces of length 2.
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(|t| m.accepts_trace(t)));
        assert_eq!(m.count_traces_up_to_length(2), 6);
    }

    #[test]
    fn behaviour_trace_count_prunes_silent_sinks() {
        let m = handshake_machine();
        let silent = Symbol::new("NIL");
        let n = m.count_behaviour_traces(4, &silent);
        // Far fewer informative traces than the 2^1+..+2^4 = 30 total words.
        assert!(n > 0 && n < 30, "informative traces = {n}");
    }

    #[test]
    fn transitions_listing_is_deterministic() {
        let m = handshake_machine();
        let t1 = m.transitions();
        let t2 = m.transitions();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 6);
        assert_eq!(t1[0].0, 0);
    }

    #[test]
    fn state_names_default_and_custom() {
        let inputs = Alphabet::from_symbols(["a"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_named_state("closed");
        let s1 = b.add_state();
        b.add_transition(s0, "a", "x", s1).unwrap();
        b.add_transition(s1, "a", "x", s1).unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.state_name(0), "closed");
        assert_eq!(m.state_name(1), "s1");
    }

    #[test]
    fn serde_round_trip() {
        let m = handshake_machine();
        let json = serde_json::to_string(&m).unwrap();
        let back: MealyMachine = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
