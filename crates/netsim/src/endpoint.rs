//! Datagram endpoints.
//!
//! An [`Endpoint`] is the simulator's analogue of a bound UDP socket: it has
//! an address (a small integer port), an inbound queue of delivered
//! datagrams, and is attached to a [`crate::Network`].  The QUIC-Tracker
//! retry bug reproduced as Issue 3 hinges on source ports, so datagrams
//! carry full (source, destination) addressing.

use crate::time::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifies an endpoint within a [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub(crate) usize);

impl EndpointId {
    /// The raw index (stable for the lifetime of the network).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A datagram delivered to an endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Source port the datagram was sent from.
    pub source_port: u16,
    /// Destination port it was addressed to.
    pub destination_port: u16,
    /// Virtual time of delivery.
    pub delivered_at: SimTime,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Datagram {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// A bound datagram endpoint (the simulator's UDP socket).
#[derive(Clone, Debug)]
pub struct Endpoint {
    pub(crate) id: EndpointId,
    pub(crate) port: u16,
    pub(crate) inbound: VecDeque<Datagram>,
}

impl Endpoint {
    pub(crate) fn new(id: EndpointId, port: u16) -> Self {
        Endpoint {
            id,
            port,
            inbound: VecDeque::new(),
        }
    }

    /// The endpoint's identifier.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The port the endpoint is bound to.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Number of datagrams waiting to be received.
    pub fn pending(&self) -> usize {
        self.inbound.len()
    }

    /// Pops the oldest delivered datagram, if any.
    pub fn receive(&mut self) -> Option<Datagram> {
        self.inbound.pop_front()
    }

    /// Drains every delivered datagram.
    pub fn receive_all(&mut self) -> Vec<Datagram> {
        self.inbound.drain(..).collect()
    }

    /// Discards all pending datagrams (used when an adapter resets the SUL).
    pub fn clear(&mut self) {
        self.inbound.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_queues_in_fifo_order() {
        let mut ep = Endpoint::new(EndpointId(0), 4433);
        assert_eq!(ep.port(), 4433);
        assert_eq!(ep.id().index(), 0);
        assert_eq!(ep.pending(), 0);
        for i in 0..3u8 {
            ep.inbound.push_back(Datagram {
                source_port: 1000,
                destination_port: 4433,
                delivered_at: SimTime::from_micros(i as u64),
                payload: Bytes::from(vec![i]),
            });
        }
        assert_eq!(ep.pending(), 3);
        assert_eq!(ep.receive().unwrap().payload[0], 0);
        assert_eq!(ep.receive_all().len(), 2);
        assert!(ep.receive().is_none());
    }

    #[test]
    fn clear_discards_pending() {
        let mut ep = Endpoint::new(EndpointId(1), 1);
        ep.inbound.push_back(Datagram {
            source_port: 2,
            destination_port: 1,
            delivered_at: SimTime::ZERO,
            payload: Bytes::from_static(b"x"),
        });
        ep.clear();
        assert_eq!(ep.pending(), 0);
    }

    #[test]
    fn datagram_helpers() {
        let d = Datagram {
            source_port: 1,
            destination_port: 2,
            delivered_at: SimTime::ZERO,
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(EndpointId(7).to_string(), "ep7");
    }
}
