//! The network: endpoints, links, an event queue and a virtual clock.
//!
//! A [`Network`] owns every endpoint and schedules datagram deliveries on a
//! priority queue ordered by virtual delivery time (ties broken by send
//! sequence number so FIFO order is preserved on ideal links).  Callers
//! drive it explicitly — `send`, then `advance`/`deliver_all` — which keeps
//! the adapter’s query/response loop fully deterministic.

use crate::capture::{CaptureRecord, Fate, TraceCapture};
use crate::endpoint::{Datagram, Endpoint, EndpointId};
use crate::link::LinkConfig;
use crate::time::{SharedClock, SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Errors raised by network operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The referenced endpoint does not exist.
    UnknownEndpoint(EndpointId),
    /// The port is already bound by another endpoint.
    PortInUse(u16),
    /// No endpoint is bound to the destination port.
    NoRoute(u16),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownEndpoint(id) => write!(f, "unknown endpoint {id}"),
            NetworkError::PortInUse(p) => write!(f, "port {p} already bound"),
            NetworkError::NoRoute(p) => write!(f, "no endpoint bound to port {p}"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[derive(Clone, Debug, PartialEq, Eq)]
struct ScheduledDelivery {
    deliver_at: SimTime,
    sequence: u64,
    to: EndpointId,
    datagram: Datagram,
}

impl Ord for ScheduledDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.sequence).cmp(&(other.deliver_at, other.sequence))
    }
}

impl PartialOrd for ScheduledDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
pub struct Network {
    endpoints: Vec<Endpoint>,
    ports: HashMap<u16, EndpointId>,
    default_link: LinkConfig,
    links: HashMap<(EndpointId, EndpointId), LinkConfig>,
    queue: BinaryHeap<Reverse<ScheduledDelivery>>,
    now: SimTime,
    sequence: u64,
    rng: StdRng,
    capture: TraceCapture,
    /// Shared-clock handle the network publishes its virtual time to (so
    /// event-driven schedulers and other networks can share one "now").
    clock: Option<SharedClock>,
}

impl Network {
    /// Creates a network with an ideal default link and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Network::with_default_link(seed, LinkConfig::ideal())
    }

    /// Creates a network whose default link has the given impairments.
    pub fn with_default_link(seed: u64, default_link: LinkConfig) -> Self {
        Network {
            endpoints: Vec::new(),
            ports: HashMap::new(),
            default_link,
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            sequence: 0,
            rng: StdRng::seed_from_u64(seed),
            capture: TraceCapture::new(),
            clock: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attaches a [`SharedClock`] handle.  The network immediately syncs to
    /// the later of its own time and the clock's, and from then on every
    /// time advance is published to the handle, so entities outside the
    /// network (e.g. a per-worker session scheduler) observe the same
    /// virtual instant.
    pub fn attach_clock(&mut self, clock: SharedClock) {
        self.now = self.now.max(clock.now());
        clock.advance_to(self.now);
        self.clock = Some(clock);
    }

    /// Advances the network to the attached shared clock's current time (a
    /// no-op without an attached clock), delivering everything due.
    /// Returns the number of datagrams delivered.
    pub fn advance_to_clock(&mut self) -> usize {
        match self.clock.as_ref().map(|c| c.now()) {
            Some(target) if target > self.now => self.advance(target - self.now),
            _ => 0,
        }
    }

    fn publish_time(&self) {
        if let Some(clock) = &self.clock {
            clock.advance_to(self.now);
        }
    }

    /// The traffic capture.
    pub fn capture(&self) -> &TraceCapture {
        &self.capture
    }

    /// Clears the traffic capture.
    pub fn clear_capture(&mut self) {
        self.capture.clear();
    }

    /// Binds a new endpoint to `port`.
    pub fn bind(&mut self, port: u16) -> Result<EndpointId, NetworkError> {
        if self.ports.contains_key(&port) {
            return Err(NetworkError::PortInUse(port));
        }
        let id = EndpointId(self.endpoints.len());
        self.endpoints.push(Endpoint::new(id, port));
        self.ports.insert(port, id);
        id.index(); // silence "unused" style concerns in older compilers
        Ok(id)
    }

    /// Binds a new endpoint to an arbitrary currently-free port, returning
    /// the endpoint and the chosen port.  Mirrors binding a UDP socket to
    /// port 0 — the operation at the heart of the Issue-3 retry bug.
    pub fn bind_ephemeral(&mut self) -> (EndpointId, u16) {
        let mut port = 49_152u16;
        while self.ports.contains_key(&port) {
            port = port.wrapping_add(1);
        }
        let id = self.bind(port).expect("port was checked to be free");
        (id, port)
    }

    /// Releases an endpoint's port binding and drops its pending datagrams.
    /// The endpoint id remains valid but can no longer receive traffic.
    pub fn unbind(&mut self, endpoint: EndpointId) -> Result<(), NetworkError> {
        let ep = self
            .endpoints
            .get_mut(endpoint.index())
            .ok_or(NetworkError::UnknownEndpoint(endpoint))?;
        ep.clear();
        let port = ep.port();
        self.ports.remove(&port);
        Ok(())
    }

    /// Sets the link configuration for datagrams flowing `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    /// The endpoint bound to `port`, if any.
    pub fn endpoint_on_port(&self, port: u16) -> Option<EndpointId> {
        self.ports.get(&port).copied()
    }

    /// Immutable access to an endpoint.
    pub fn endpoint(&self, id: EndpointId) -> Result<&Endpoint, NetworkError> {
        self.endpoints
            .get(id.index())
            .ok_or(NetworkError::UnknownEndpoint(id))
    }

    /// Mutable access to an endpoint (to receive datagrams).
    pub fn endpoint_mut(&mut self, id: EndpointId) -> Result<&mut Endpoint, NetworkError> {
        self.endpoints
            .get_mut(id.index())
            .ok_or(NetworkError::UnknownEndpoint(id))
    }

    /// Sends a datagram from `from` to whichever endpoint is bound to
    /// `destination_port`.  The source port is the sender's bound port.
    pub fn send(
        &mut self,
        from: EndpointId,
        destination_port: u16,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        let source_port = self.endpoint(from)?.port();
        self.send_from_port(from, source_port, destination_port, payload)
    }

    /// Sends a datagram with an explicit (possibly spoofed or rebound)
    /// source port.  QUIC-Tracker's retry bug is "the token is returned from
    /// a different source port", which this API models directly.
    pub fn send_from_port(
        &mut self,
        from: EndpointId,
        source_port: u16,
        destination_port: u16,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        // Validate the sender exists even when spoofing the port.
        let _ = self.endpoint(from)?;
        let to = self.ports.get(&destination_port).copied();
        let link = to
            .and_then(|t| self.links.get(&(from, t)).copied())
            .unwrap_or(self.default_link);
        let Some(to) = to else {
            self.capture.record(CaptureRecord {
                sent_at: self.now,
                from,
                to: None,
                source_port,
                destination_port,
                length: payload.len(),
                fate: Fate::Lost,
            });
            return Err(NetworkError::NoRoute(destination_port));
        };
        match link.schedule(&mut self.rng) {
            None => {
                self.capture.record(CaptureRecord {
                    sent_at: self.now,
                    from,
                    to: Some(to),
                    source_port,
                    destination_port,
                    length: payload.len(),
                    fate: Fate::Lost,
                });
            }
            Some(delays) => {
                let fate = if delays.len() > 1 {
                    Fate::Duplicated
                } else {
                    Fate::Delivered
                };
                self.capture.record(CaptureRecord {
                    sent_at: self.now,
                    from,
                    to: Some(to),
                    source_port,
                    destination_port,
                    length: payload.len(),
                    fate,
                });
                for delay in delays {
                    self.sequence += 1;
                    self.queue.push(Reverse(ScheduledDelivery {
                        deliver_at: self.now + delay,
                        sequence: self.sequence,
                        to,
                        datagram: Datagram {
                            source_port,
                            destination_port,
                            delivered_at: self.now + delay,
                            payload: payload.clone(),
                        },
                    }));
                }
            }
        }
        Ok(())
    }

    /// Advances virtual time by `delta`, delivering everything scheduled in
    /// the interval.  Returns the number of datagrams delivered.
    pub fn advance(&mut self, delta: SimDuration) -> usize {
        let target = self.now + delta;
        let mut delivered = 0;
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.deliver_at > target {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked above");
            self.now = event.deliver_at;
            if let Some(ep) = self.endpoints.get_mut(event.to.index()) {
                // Deliver only if the destination port is still bound to
                // this endpoint (unbinding drops in-flight traffic).
                if self.ports.get(&event.datagram.destination_port) == Some(&event.to) {
                    ep.inbound.push_back(event.datagram);
                    delivered += 1;
                }
            }
        }
        self.now = target;
        self.publish_time();
        delivered
    }

    /// Delivers every queued datagram regardless of its scheduled time,
    /// advancing the clock to the last delivery.  Convenient for the
    /// request/response style the adapter uses.
    pub fn deliver_all(&mut self) -> usize {
        let mut delivered = 0;
        while let Some(Reverse(event)) = self.queue.pop() {
            self.now = self.now.max(event.deliver_at);
            if let Some(ep) = self.endpoints.get_mut(event.to.index()) {
                if self.ports.get(&event.datagram.destination_port) == Some(&event.to) {
                    ep.inbound.push_back(event.datagram);
                    delivered += 1;
                }
            }
        }
        self.publish_time();
        delivered
    }

    /// Number of datagrams currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_send_receive_round_trip() {
        let mut net = Network::new(1);
        let a = net.bind(1000).unwrap();
        let b = net.bind(2000).unwrap();
        net.send(a, 2000, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.deliver_all(), 1);
        let dg = net.endpoint_mut(b).unwrap().receive().unwrap();
        assert_eq!(&dg.payload[..], b"hello");
        assert_eq!(dg.source_port, 1000);
        assert_eq!(dg.destination_port, 2000);
        assert_eq!(net.capture().len(), 1);
        assert_eq!(net.capture().lost(), 0);
    }

    #[test]
    fn port_conflicts_and_unknown_routes_are_errors() {
        let mut net = Network::new(1);
        let a = net.bind(1000).unwrap();
        assert_eq!(net.bind(1000).unwrap_err(), NetworkError::PortInUse(1000));
        assert_eq!(
            net.send(a, 9999, Bytes::new()).unwrap_err(),
            NetworkError::NoRoute(9999)
        );
        assert_eq!(
            net.endpoint(EndpointId(42)).unwrap_err(),
            NetworkError::UnknownEndpoint(EndpointId(42))
        );
        assert_eq!(
            net.capture().lost(),
            1,
            "unroutable datagrams are captured as lost"
        );
    }

    #[test]
    fn latency_delays_delivery_until_time_advances() {
        let mut net =
            Network::with_default_link(3, LinkConfig::with_latency(SimDuration::from_millis(10)));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        assert_eq!(net.advance(SimDuration::from_millis(5)), 0);
        assert_eq!(net.endpoint(b).unwrap().pending(), 0);
        assert_eq!(net.advance(SimDuration::from_millis(6)), 1);
        assert_eq!(net.endpoint(b).unwrap().pending(), 1);
        assert_eq!(net.now().as_millis(), 11);
    }

    #[test]
    fn lossy_link_drops_some_datagrams() {
        let mut net = Network::with_default_link(7, LinkConfig::ideal().loss(0.5));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        for _ in 0..200 {
            net.send(a, 2, Bytes::from_static(b"p")).unwrap();
        }
        let delivered = net.deliver_all();
        assert!(
            delivered > 50 && delivered < 150,
            "delivered {delivered} of 200 at 50% loss"
        );
        assert_eq!(net.capture().lost(), 200 - delivered);
        assert_eq!(net.endpoint(b).unwrap().pending(), delivered);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut net = Network::with_default_link(7, LinkConfig::ideal().duplicate(1.0));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"p")).unwrap();
        assert_eq!(net.deliver_all(), 2);
        assert_eq!(net.endpoint(b).unwrap().pending(), 2);
    }

    #[test]
    fn spoofed_source_port_is_visible_to_the_receiver() {
        // The Issue-3 scenario: the reference client re-binds to a new
        // ephemeral port and the server sees a different source port.
        let mut net = Network::new(1);
        let client = net.bind(5000).unwrap();
        let server = net.bind(443).unwrap();
        net.send_from_port(client, 61_000, 443, Bytes::from_static(b"retry-token"))
            .unwrap();
        net.deliver_all();
        let dg = net.endpoint_mut(server).unwrap().receive().unwrap();
        assert_eq!(dg.source_port, 61_000);
    }

    #[test]
    fn ephemeral_binding_picks_free_ports() {
        let mut net = Network::new(1);
        let (_, p1) = net.bind_ephemeral();
        let (_, p2) = net.bind_ephemeral();
        assert_ne!(p1, p2);
        assert!(net.endpoint_on_port(p1).is_some());
    }

    #[test]
    fn unbind_stops_delivery() {
        let mut net =
            Network::with_default_link(1, LinkConfig::with_latency(SimDuration::from_millis(1)));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        net.unbind(b).unwrap();
        assert_eq!(net.deliver_all(), 0);
        assert_eq!(net.endpoint(b).unwrap().pending(), 0);
        assert!(net.unbind(EndpointId(9)).is_err());
    }

    #[test]
    fn fifo_order_is_preserved_on_ideal_links() {
        let mut net = Network::new(1);
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        for i in 0..10u8 {
            net.send(a, 2, Bytes::from(vec![i])).unwrap();
        }
        net.deliver_all();
        let payloads: Vec<u8> = net
            .endpoint_mut(b)
            .unwrap()
            .receive_all()
            .into_iter()
            .map(|d| d.payload[0])
            .collect();
        assert_eq!(payloads, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn attached_clock_tracks_network_time_and_back() {
        let mut net =
            Network::with_default_link(3, LinkConfig::with_latency(SimDuration::from_millis(10)));
        let clock = SharedClock::starting_at(SimTime::from_micros(500));
        net.attach_clock(clock.clone());
        assert_eq!(net.now().as_micros(), 500, "network syncs up on attach");
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        net.deliver_all();
        assert_eq!(
            clock.now(),
            net.now(),
            "delivery time is published to the shared clock"
        );
        // An outside scheduler advances the shared clock; the network
        // catches up on demand.
        clock.advance_by(SimDuration::from_millis(5));
        net.send(b, 1, Bytes::from_static(b"y")).unwrap();
        assert_eq!(net.advance_to_clock(), 0, "reply still 10ms out");
        assert_eq!(net.now(), clock.now());
    }

    #[test]
    fn capture_can_be_cleared_between_queries() {
        let mut net = Network::new(1);
        let a = net.bind(1).unwrap();
        let _b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        assert_eq!(net.capture().len(), 1);
        net.clear_capture();
        assert!(net.capture().is_empty());
    }
}
