//! The network: endpoints, links, an event queue and a virtual clock.
//!
//! A [`Network`] owns every endpoint and schedules datagram deliveries on a
//! priority queue ordered by virtual delivery time (ties broken by send
//! sequence number so FIFO order is preserved on ideal links).  Callers
//! drive it explicitly — `send`, then `advance`/`deliver_all` — which keeps
//! the adapter’s query/response loop fully deterministic.

use crate::capture::{CaptureRecord, Fate, TraceCapture};
use crate::endpoint::{Datagram, Endpoint, EndpointId};
use crate::link::LinkConfig;
use crate::time::{SharedClock, SimDuration, SimTime};
use bytes::Bytes;
use prognosis_events::{Dir, Event, ScopedSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// First port of the ephemeral (dynamic) range, per RFC 6335.
pub const EPHEMERAL_PORT_MIN: u16 = 49_152;
/// Last port of the ephemeral range.
pub const EPHEMERAL_PORT_MAX: u16 = 65_535;

/// Errors raised by network operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The referenced endpoint does not exist.
    UnknownEndpoint(EndpointId),
    /// The port is already bound by another endpoint.
    PortInUse(u16),
    /// No endpoint is bound to the destination port.
    NoRoute(u16),
    /// Every port of the ephemeral range (49152–65535) is bound.
    PortsExhausted,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownEndpoint(id) => write!(f, "unknown endpoint {id}"),
            NetworkError::PortInUse(p) => write!(f, "port {p} already bound"),
            NetworkError::NoRoute(p) => write!(f, "no endpoint bound to port {p}"),
            NetworkError::PortsExhausted => {
                write!(f, "every ephemeral port (49152-65535) is bound")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// The event-scope identity a scheduled delivery carries so the deliver
/// site can report it against the same query scope, direction and packet
/// index as its send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WireTag {
    scope: u64,
    packet: u64,
    dir: Dir,
    bytes: u64,
}

/// A registered wire-event scope: one membership query's traffic between
/// a client endpoint and its server, time-based `rel` stamps measured
/// from `base` (the query's session-reset instant).
#[derive(Clone, Copy, Debug)]
struct WireScope {
    client: EndpointId,
    server: EndpointId,
    base: SimTime,
    next_packet: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct ScheduledDelivery {
    deliver_at: SimTime,
    sequence: u64,
    to: EndpointId,
    datagram: Datagram,
    wire: Option<WireTag>,
}

impl Ord for ScheduledDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.sequence).cmp(&(other.deliver_at, other.sequence))
    }
}

impl PartialOrd for ScheduledDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A per-sender impairment stream: packet fates are a pure function of the
/// stream's seed and its per-packet index (see [`LinkConfig::fate`]).
#[derive(Clone, Copy, Debug)]
struct NoiseStream {
    seed: u64,
    next_index: u64,
}

/// The simulated network.
pub struct Network {
    endpoints: Vec<Endpoint>,
    ports: HashMap<u16, EndpointId>,
    default_link: LinkConfig,
    links: HashMap<(EndpointId, EndpointId), LinkConfig>,
    queue: BinaryHeap<Reverse<ScheduledDelivery>>,
    now: SimTime,
    sequence: u64,
    /// Network-level noise stream for senders without their own.
    noise: NoiseStream,
    /// Lowest ephemeral port that could be free (every ephemeral port
    /// below it is bound), keeping [`Network::bind_ephemeral`]'s
    /// lowest-free-port scan amortized O(1).
    ephemeral_hint: u16,
    /// Per-endpoint noise streams (see [`Network::set_noise_seed`]): they
    /// give each sender an impairment trajectory that is independent of
    /// every other endpoint's traffic, and can be rewound at query
    /// boundaries so repeated queries meet reproducible weather.
    endpoint_noise: HashMap<EndpointId, NoiseStream>,
    capture: TraceCapture,
    /// Shared-clock handle the network publishes its virtual time to (so
    /// event-driven schedulers and other networks can share one "now").
    clock: Option<SharedClock>,
    /// Event sink wire events are staged into (see
    /// [`Network::attach_event_sink`]).
    sink: Option<Arc<ScopedSink>>,
    /// Registered wire-event scopes by scope id.
    wire_scopes: HashMap<u64, WireScope>,
    /// Endpoint → owning wire scope id, for the send-path lookup.
    wire_endpoint: HashMap<EndpointId, u64>,
}

impl Network {
    /// Creates a network with an ideal default link and the given noise seed.
    pub fn new(seed: u64) -> Self {
        Network::with_default_link(seed, LinkConfig::ideal())
    }

    /// Creates a network whose default link has the given impairments.
    pub fn with_default_link(seed: u64, default_link: LinkConfig) -> Self {
        Network {
            endpoints: Vec::new(),
            ports: HashMap::new(),
            default_link,
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            sequence: 0,
            noise: NoiseStream {
                seed,
                next_index: 0,
            },
            ephemeral_hint: EPHEMERAL_PORT_MIN,
            endpoint_noise: HashMap::new(),
            capture: TraceCapture::new(),
            clock: None,
            sink: None,
            wire_scopes: HashMap::new(),
            wire_endpoint: HashMap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attaches a [`SharedClock`] handle.  The network immediately syncs to
    /// the later of its own time and the clock's, and from then on every
    /// time advance is published to the handle, so entities outside the
    /// network (e.g. a per-worker session scheduler) observe the same
    /// virtual instant.
    pub fn attach_clock(&mut self, clock: SharedClock) {
        self.now = self.now.max(clock.now());
        clock.advance_to(self.now);
        self.clock = Some(clock);
    }

    /// Advances the network to the attached shared clock's current time (a
    /// no-op without an attached clock), delivering everything due.
    /// Returns the number of datagrams delivered.
    pub fn advance_to_clock(&mut self) -> usize {
        match self.clock.as_ref().map(|c| c.now()) {
            Some(target) if target > self.now => self.advance(target - self.now),
            _ => 0,
        }
    }

    fn publish_time(&self) {
        if let Some(clock) = &self.clock {
            clock.advance_to(self.now);
        }
    }

    /// The traffic capture.
    pub fn capture(&self) -> &TraceCapture {
        &self.capture
    }

    /// Clears the traffic capture.
    pub fn clear_capture(&mut self) {
        self.capture.clear();
    }

    /// Attaches a [`ScopedSink`]: from now on, traffic between endpoints
    /// registered via [`Network::set_wire_scope`] stages `wire:*` events
    /// under the registered scope id.  Unregistered traffic stays silent,
    /// so unit tests and non-learning consumers pay nothing.
    pub fn attach_event_sink(&mut self, sink: Arc<ScopedSink>) {
        self.sink = Some(sink);
    }

    /// Registers (or re-registers) a wire-event scope for the traffic
    /// between `client` and `server`.  `base` is the query's session-reset
    /// instant; every staged event's `rel` stamp is virtual micros since
    /// `base`, and packet indices restart at 0.  A previous scope touching
    /// either endpoint is dropped first, so per-query re-registration
    /// cannot leak registry entries.
    pub fn set_wire_scope(&mut self, client: EndpointId, server: EndpointId, scope: u64) {
        for ep in [client, server] {
            if let Some(old_id) = self.wire_endpoint.get(&ep).copied() {
                self.clear_wire_scope(old_id);
            }
        }
        self.wire_scopes.insert(
            scope,
            WireScope {
                client,
                server,
                base: self.now,
                next_packet: 0,
            },
        );
        self.wire_endpoint.insert(client, scope);
        self.wire_endpoint.insert(server, scope);
    }

    /// Unregisters a wire-event scope (a no-op for unknown ids).
    pub fn clear_wire_scope(&mut self, scope: u64) {
        if let Some(old) = self.wire_scopes.remove(&scope) {
            self.wire_endpoint.remove(&old.client);
            self.wire_endpoint.remove(&old.server);
        }
    }

    /// Stages the send-side wire events for a packet from `from`:
    /// `wire:send` always, plus `wire:drop` (`copies` `None`) or
    /// `wire:duplicate` (`copies > 1`).  Returns the tag the packet's
    /// scheduled deliveries should carry, `None` when the packet is lost
    /// or the sender has no registered scope.
    fn stage_wire_send(
        &mut self,
        from: EndpointId,
        bytes: u64,
        copies: Option<u64>,
    ) -> Option<WireTag> {
        let sink = self.sink.as_ref()?;
        let scope = *self.wire_endpoint.get(&from)?;
        let ws = self.wire_scopes.get_mut(&scope)?;
        let rel = self.now.as_micros().saturating_sub(ws.base.as_micros());
        let dir: Dir = if from == ws.client { "up" } else { "down" };
        let packet = ws.next_packet;
        ws.next_packet += 1;
        sink.stage(
            scope,
            Event::WireSend {
                rel,
                dir,
                packet,
                bytes,
            },
        );
        match copies {
            None => {
                sink.stage(
                    scope,
                    Event::WireDrop {
                        rel,
                        dir,
                        packet,
                        bytes,
                    },
                );
                None
            }
            Some(copies) if copies > 1 => {
                sink.stage(
                    scope,
                    Event::WireDuplicate {
                        rel,
                        dir,
                        packet,
                        copies,
                    },
                );
                Some(WireTag {
                    scope,
                    packet,
                    dir,
                    bytes,
                })
            }
            Some(_) => Some(WireTag {
                scope,
                packet,
                dir,
                bytes,
            }),
        }
    }

    /// Stages a `wire:deliver` event for a delivered datagram carrying a
    /// wire tag.  Stragglers whose scope was already cleared stay silent.
    fn stage_wire_delivery(&mut self, tag: Option<WireTag>) {
        let Some(tag) = tag else { return };
        let Some(sink) = self.sink.as_ref() else {
            return;
        };
        let Some(ws) = self.wire_scopes.get(&tag.scope) else {
            return;
        };
        let rel = self.now.as_micros().saturating_sub(ws.base.as_micros());
        sink.stage(
            tag.scope,
            Event::WireDeliver {
                rel,
                dir: tag.dir,
                packet: tag.packet,
                bytes: tag.bytes,
            },
        );
    }

    /// Binds a new endpoint to `port`.
    pub fn bind(&mut self, port: u16) -> Result<EndpointId, NetworkError> {
        if self.ports.contains_key(&port) {
            return Err(NetworkError::PortInUse(port));
        }
        let id = EndpointId(self.endpoints.len());
        self.endpoints.push(Endpoint::new(id, port));
        self.ports.insert(port, id);
        id.index(); // silence "unused" style concerns in older compilers
        Ok(id)
    }

    /// Binds a new endpoint to the lowest currently-free port of the
    /// ephemeral range (49152–65535), returning the endpoint and the chosen
    /// port.  Mirrors binding a UDP socket to port 0 — the operation at the
    /// heart of the Issue-3 retry bug, and the per-session client-port
    /// allocation of the impaired-network session transport.
    ///
    /// The scan never leaves the ephemeral range (it previously wrapped
    /// past 65535 into port 0 and the well-known range) and reports
    /// [`NetworkError::PortsExhausted`] instead of spinning when every
    /// ephemeral port is bound.
    pub fn bind_ephemeral(&mut self) -> Result<(EndpointId, u16), NetworkError> {
        for port in self.ephemeral_hint..=EPHEMERAL_PORT_MAX {
            if !self.ports.contains_key(&port) {
                let id = self.bind(port)?;
                self.ephemeral_hint = port.saturating_add(1);
                return Ok((id, port));
            }
        }
        Err(NetworkError::PortsExhausted)
    }

    /// Releases an endpoint's port binding and drops its pending datagrams.
    /// The endpoint id remains valid but can no longer receive traffic.
    ///
    /// The port mapping is only removed while it still points at this
    /// endpoint: unbinding twice after the port was reassigned must not
    /// steal the new owner's binding.
    pub fn unbind(&mut self, endpoint: EndpointId) -> Result<(), NetworkError> {
        let ep = self
            .endpoints
            .get_mut(endpoint.index())
            .ok_or(NetworkError::UnknownEndpoint(endpoint))?;
        ep.clear();
        let port = ep.port();
        if self.ports.get(&port) == Some(&endpoint) {
            self.ports.remove(&port);
            if port >= EPHEMERAL_PORT_MIN {
                self.ephemeral_hint = self.ephemeral_hint.min(port);
            }
        }
        Ok(())
    }

    /// Gives `endpoint` its own impairment stream: from now on, datagrams
    /// it sends take their fates from `(seed, packet index)` via
    /// [`LinkConfig::fate`], independent of all other traffic on the
    /// network.
    pub fn set_noise_seed(&mut self, endpoint: EndpointId, seed: u64) -> Result<(), NetworkError> {
        let _ = self.endpoint(endpoint)?;
        self.endpoint_noise.insert(
            endpoint,
            NoiseStream {
                seed,
                next_index: 0,
            },
        );
        Ok(())
    }

    /// Rewinds `endpoint`'s impairment stream to packet index 0, so its
    /// next packets meet the same weather as its first ones — the query
    /// boundary of the session transport.  A no-op for endpoints without a
    /// private stream.
    pub fn rewind_noise(&mut self, endpoint: EndpointId) -> Result<(), NetworkError> {
        let _ = self.endpoint(endpoint)?;
        if let Some(stream) = self.endpoint_noise.get_mut(&endpoint) {
            stream.next_index = 0;
        }
        Ok(())
    }

    /// Sets the link configuration for datagrams flowing `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    /// The endpoint bound to `port`, if any.
    pub fn endpoint_on_port(&self, port: u16) -> Option<EndpointId> {
        self.ports.get(&port).copied()
    }

    /// Immutable access to an endpoint.
    pub fn endpoint(&self, id: EndpointId) -> Result<&Endpoint, NetworkError> {
        self.endpoints
            .get(id.index())
            .ok_or(NetworkError::UnknownEndpoint(id))
    }

    /// Mutable access to an endpoint (to receive datagrams).
    pub fn endpoint_mut(&mut self, id: EndpointId) -> Result<&mut Endpoint, NetworkError> {
        self.endpoints
            .get_mut(id.index())
            .ok_or(NetworkError::UnknownEndpoint(id))
    }

    /// Sends a datagram from `from` to whichever endpoint is bound to
    /// `destination_port`.  The source port is the sender's bound port.
    pub fn send(
        &mut self,
        from: EndpointId,
        destination_port: u16,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        let source_port = self.endpoint(from)?.port();
        self.send_from_port(from, source_port, destination_port, payload)
    }

    /// Sends a datagram with an explicit (possibly spoofed or rebound)
    /// source port.  QUIC-Tracker's retry bug is "the token is returned from
    /// a different source port", which this API models directly.
    pub fn send_from_port(
        &mut self,
        from: EndpointId,
        source_port: u16,
        destination_port: u16,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        // Validate the sender exists even when spoofing the port.
        let _ = self.endpoint(from)?;
        let to = self.ports.get(&destination_port).copied();
        let link = to
            .and_then(|t| self.links.get(&(from, t)).copied())
            .unwrap_or(self.default_link);
        let Some(to) = to else {
            self.capture.record(CaptureRecord {
                sent_at: self.now,
                from,
                to: None,
                source_port,
                destination_port,
                length: payload.len(),
                fate: Fate::Lost,
            });
            return Err(NetworkError::NoRoute(destination_port));
        };
        let stream = match self.endpoint_noise.get_mut(&from) {
            Some(stream) => stream,
            None => &mut self.noise,
        };
        let packet_index = stream.next_index;
        stream.next_index += 1;
        let seed = stream.seed;
        match link.fate(seed, packet_index) {
            None => {
                self.capture.record(CaptureRecord {
                    sent_at: self.now,
                    from,
                    to: Some(to),
                    source_port,
                    destination_port,
                    length: payload.len(),
                    fate: Fate::Lost,
                });
                self.stage_wire_send(from, payload.len() as u64, None);
            }
            Some(delays) => {
                let fate = if delays.len() > 1 {
                    Fate::Duplicated
                } else {
                    Fate::Delivered
                };
                self.capture.record(CaptureRecord {
                    sent_at: self.now,
                    from,
                    to: Some(to),
                    source_port,
                    destination_port,
                    length: payload.len(),
                    fate,
                });
                let wire =
                    self.stage_wire_send(from, payload.len() as u64, Some(delays.len() as u64));
                for delay in delays {
                    self.sequence += 1;
                    self.queue.push(Reverse(ScheduledDelivery {
                        deliver_at: self.now + delay,
                        sequence: self.sequence,
                        to,
                        datagram: Datagram {
                            source_port,
                            destination_port,
                            delivered_at: self.now + delay,
                            payload: payload.clone(),
                        },
                        wire,
                    }));
                }
            }
        }
        Ok(())
    }

    /// Advances virtual time by `delta`, delivering everything scheduled in
    /// the interval.  Returns the number of datagrams delivered.
    pub fn advance(&mut self, delta: SimDuration) -> usize {
        let target = self.now + delta;
        let mut delivered = 0;
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.deliver_at > target {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked above");
            self.now = event.deliver_at;
            let mut arrived = false;
            if let Some(ep) = self.endpoints.get_mut(event.to.index()) {
                // Deliver only if the destination port is still bound to
                // this endpoint (unbinding drops in-flight traffic).
                if self.ports.get(&event.datagram.destination_port) == Some(&event.to) {
                    ep.inbound.push_back(event.datagram);
                    delivered += 1;
                    arrived = true;
                }
            }
            if arrived {
                self.stage_wire_delivery(event.wire);
            }
        }
        self.now = target;
        self.publish_time();
        delivered
    }

    /// Delivers every queued datagram regardless of its scheduled time,
    /// advancing the clock to the last delivery.  Convenient for the
    /// request/response style the adapter uses.
    pub fn deliver_all(&mut self) -> usize {
        let mut delivered = 0;
        while let Some(Reverse(event)) = self.queue.pop() {
            self.now = self.now.max(event.deliver_at);
            let mut arrived = false;
            if let Some(ep) = self.endpoints.get_mut(event.to.index()) {
                if self.ports.get(&event.datagram.destination_port) == Some(&event.to) {
                    ep.inbound.push_back(event.datagram);
                    delivered += 1;
                    arrived = true;
                }
            }
            if arrived {
                self.stage_wire_delivery(event.wire);
            }
        }
        self.publish_time();
        delivered
    }

    /// Number of datagrams currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Delivers everything due at or before the current instant without
    /// advancing time — needed when a datagram was scheduled with zero
    /// delay at exactly `now`.
    pub fn deliver_due(&mut self) -> usize {
        self.advance(SimDuration::ZERO)
    }

    /// Advances virtual time to `target` (a no-op on time when `target`
    /// is not in the future — virtual time is monotonic), delivering
    /// everything due by the later of the two instants.  This is how an
    /// event-driven session synchronizes the network to its scheduler's
    /// clock without the network needing a clock handle of its own.
    pub fn advance_to(&mut self, target: SimTime) -> usize {
        if target > self.now {
            self.advance(target - self.now)
        } else {
            self.deliver_due()
        }
    }

    /// Number of in-flight datagrams addressed to `port`.
    pub fn in_flight_to(&self, port: u16) -> usize {
        self.queue
            .iter()
            .filter(|Reverse(d)| d.datagram.destination_port == port)
            .count()
    }

    /// The earliest scheduled delivery time of an in-flight datagram
    /// addressed to `port`, if any — the wake-up deadline an event-driven
    /// session waiting on that port should report.
    pub fn next_delivery_to(&self, port: u16) -> Option<SimTime> {
        self.queue
            .iter()
            .filter(|Reverse(d)| d.datagram.destination_port == port)
            .map(|Reverse(d)| d.deliver_at)
            .min()
    }

    /// Drops every in-flight datagram addressed to `port`, returning how
    /// many were dropped — the session transport uses this at query
    /// boundaries so one query's stragglers never leak into the next.
    pub fn drop_in_flight_to(&mut self, port: u16) -> usize {
        let before = self.queue.len();
        let kept: Vec<Reverse<ScheduledDelivery>> = std::mem::take(&mut self.queue)
            .into_iter()
            .filter(|Reverse(d)| d.datagram.destination_port != port)
            .collect();
        self.queue = kept.into_iter().collect();
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_send_receive_round_trip() {
        let mut net = Network::new(1);
        let a = net.bind(1000).unwrap();
        let b = net.bind(2000).unwrap();
        net.send(a, 2000, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.deliver_all(), 1);
        let dg = net.endpoint_mut(b).unwrap().receive().unwrap();
        assert_eq!(&dg.payload[..], b"hello");
        assert_eq!(dg.source_port, 1000);
        assert_eq!(dg.destination_port, 2000);
        assert_eq!(net.capture().len(), 1);
        assert_eq!(net.capture().lost(), 0);
    }

    #[test]
    fn port_conflicts_and_unknown_routes_are_errors() {
        let mut net = Network::new(1);
        let a = net.bind(1000).unwrap();
        assert_eq!(net.bind(1000).unwrap_err(), NetworkError::PortInUse(1000));
        assert_eq!(
            net.send(a, 9999, Bytes::new()).unwrap_err(),
            NetworkError::NoRoute(9999)
        );
        assert_eq!(
            net.endpoint(EndpointId(42)).unwrap_err(),
            NetworkError::UnknownEndpoint(EndpointId(42))
        );
        assert_eq!(
            net.capture().lost(),
            1,
            "unroutable datagrams are captured as lost"
        );
    }

    #[test]
    fn latency_delays_delivery_until_time_advances() {
        let mut net =
            Network::with_default_link(3, LinkConfig::with_latency(SimDuration::from_millis(10)));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        assert_eq!(net.advance(SimDuration::from_millis(5)), 0);
        assert_eq!(net.endpoint(b).unwrap().pending(), 0);
        assert_eq!(net.advance(SimDuration::from_millis(6)), 1);
        assert_eq!(net.endpoint(b).unwrap().pending(), 1);
        assert_eq!(net.now().as_millis(), 11);
    }

    #[test]
    fn lossy_link_drops_some_datagrams() {
        let mut net = Network::with_default_link(7, LinkConfig::ideal().loss(0.5));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        for _ in 0..200 {
            net.send(a, 2, Bytes::from_static(b"p")).unwrap();
        }
        let delivered = net.deliver_all();
        assert!(
            delivered > 50 && delivered < 150,
            "delivered {delivered} of 200 at 50% loss"
        );
        assert_eq!(net.capture().lost(), 200 - delivered);
        assert_eq!(net.endpoint(b).unwrap().pending(), delivered);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut net = Network::with_default_link(7, LinkConfig::ideal().duplicate(1.0));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"p")).unwrap();
        assert_eq!(net.deliver_all(), 2);
        assert_eq!(net.endpoint(b).unwrap().pending(), 2);
    }

    #[test]
    fn spoofed_source_port_is_visible_to_the_receiver() {
        // The Issue-3 scenario: the reference client re-binds to a new
        // ephemeral port and the server sees a different source port.
        let mut net = Network::new(1);
        let client = net.bind(5000).unwrap();
        let server = net.bind(443).unwrap();
        net.send_from_port(client, 61_000, 443, Bytes::from_static(b"retry-token"))
            .unwrap();
        net.deliver_all();
        let dg = net.endpoint_mut(server).unwrap().receive().unwrap();
        assert_eq!(dg.source_port, 61_000);
    }

    #[test]
    fn ephemeral_binding_picks_free_ports() {
        let mut net = Network::new(1);
        let (_, p1) = net.bind_ephemeral().unwrap();
        let (_, p2) = net.bind_ephemeral().unwrap();
        assert_ne!(p1, p2);
        assert!((EPHEMERAL_PORT_MIN..=EPHEMERAL_PORT_MAX).contains(&p1));
        assert!(net.endpoint_on_port(p1).is_some());
    }

    #[test]
    fn ephemeral_binding_stays_in_range_and_reports_exhaustion() {
        let mut net = Network::new(1);
        // A bound well-known port must never be stolen by the scan.
        net.bind(443).unwrap();
        let mut last = None;
        for _ in EPHEMERAL_PORT_MIN..=EPHEMERAL_PORT_MAX {
            let (_, port) = net.bind_ephemeral().expect("range not yet exhausted");
            assert!((EPHEMERAL_PORT_MIN..=EPHEMERAL_PORT_MAX).contains(&port));
            last = Some(port);
        }
        assert_eq!(last, Some(EPHEMERAL_PORT_MAX));
        // The range is now full: the scan must fail instead of wrapping
        // into port 0 / the well-known range or spinning forever.
        assert_eq!(
            net.bind_ephemeral().unwrap_err(),
            NetworkError::PortsExhausted
        );
        assert_eq!(net.endpoint_on_port(443).map(|e| e.index()), Some(0));
        // Releasing one port makes the scan succeed again at that port.
        let victim = net.endpoint_on_port(50_000).unwrap();
        net.unbind(victim).unwrap();
        assert_eq!(net.bind_ephemeral().unwrap().1, 50_000);
    }

    #[test]
    fn double_unbind_does_not_steal_a_reassigned_port() {
        let mut net = Network::new(1);
        let (first, port) = net.bind_ephemeral().unwrap();
        net.unbind(first).unwrap();
        // The port is reassigned to a new endpoint...
        let (second, reused) = net.bind_ephemeral().unwrap();
        assert_eq!(reused, port);
        // ...and a stale second unbind of the old endpoint must not remove
        // the new owner's binding.
        net.unbind(first).unwrap();
        assert_eq!(net.endpoint_on_port(port), Some(second));
        let a = net.bind(10).unwrap();
        net.send(a, port, Bytes::from_static(b"x")).unwrap();
        net.deliver_all();
        assert_eq!(
            net.endpoint(second).unwrap().pending(),
            1,
            "traffic still routes to the live endpoint"
        );
    }

    #[test]
    fn per_endpoint_noise_streams_are_rewindable_and_independent() {
        let link = LinkConfig::ideal().loss(0.5);
        let run = |skip_other: usize| {
            let mut net = Network::with_default_link(3, link);
            let a = net.bind(1).unwrap();
            let other = net.bind(3).unwrap();
            let _b = net.bind(2).unwrap();
            net.set_noise_seed(a, 77).unwrap();
            // Unrelated traffic from an endpoint on the shared stream must
            // not perturb a's private stream.
            for _ in 0..skip_other {
                net.send(other, 2, Bytes::from_static(b"noise")).unwrap();
            }
            let fates: Vec<bool> = (0..64)
                .map(|_| {
                    net.send(a, 2, Bytes::from_static(b"x")).unwrap();
                    net.deliver_all() > 0
                })
                .collect();
            fates
        };
        let clean = run(0);
        assert_eq!(clean, run(13), "other senders must not shift a's fates");
        // Rewinding replays the identical fate sequence.
        let mut net = Network::with_default_link(3, link);
        let a = net.bind(1).unwrap();
        let _b = net.bind(2).unwrap();
        net.set_noise_seed(a, 77).unwrap();
        let observe = |net: &mut Network| -> Vec<bool> {
            (0..64)
                .map(|_| {
                    net.send(a, 2, Bytes::from_static(b"x")).unwrap();
                    net.deliver_all() > 0
                })
                .collect()
        };
        let first = observe(&mut net);
        net.rewind_noise(a).unwrap();
        let second = observe(&mut net);
        assert_eq!(first, second);
        assert_eq!(first, clean);
        assert!(net.set_noise_seed(EndpointId(9), 1).is_err());
        assert!(net.rewind_noise(EndpointId(9)).is_err());
    }

    #[test]
    fn in_flight_queries_and_drops_are_port_scoped() {
        let mut net =
            Network::with_default_link(1, LinkConfig::with_latency(SimDuration::from_millis(2)));
        let a = net.bind(1).unwrap();
        let _b = net.bind(2).unwrap();
        let _c = net.bind(3).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        net.send(a, 3, Bytes::from_static(b"y")).unwrap();
        assert_eq!(net.in_flight_to(2), 1);
        assert_eq!(net.in_flight_to(3), 1);
        assert_eq!(net.in_flight_to(9), 0);
        assert_eq!(
            net.next_delivery_to(2),
            Some(SimTime::from_micros(2_000)),
            "2ms link latency"
        );
        assert_eq!(net.next_delivery_to(9), None);
        assert_eq!(net.drop_in_flight_to(2), 1);
        assert_eq!(net.in_flight(), 1, "port 3's datagram survives");
        assert_eq!(net.deliver_due(), 0, "nothing due yet at t=0");
        net.advance(SimDuration::from_millis(2));
        assert_eq!(net.endpoint(_c).unwrap().pending(), 1);
    }

    #[test]
    fn unbind_stops_delivery() {
        let mut net =
            Network::with_default_link(1, LinkConfig::with_latency(SimDuration::from_millis(1)));
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        net.unbind(b).unwrap();
        assert_eq!(net.deliver_all(), 0);
        assert_eq!(net.endpoint(b).unwrap().pending(), 0);
        assert!(net.unbind(EndpointId(9)).is_err());
    }

    #[test]
    fn fifo_order_is_preserved_on_ideal_links() {
        let mut net = Network::new(1);
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        for i in 0..10u8 {
            net.send(a, 2, Bytes::from(vec![i])).unwrap();
        }
        net.deliver_all();
        let payloads: Vec<u8> = net
            .endpoint_mut(b)
            .unwrap()
            .receive_all()
            .into_iter()
            .map(|d| d.payload[0])
            .collect();
        assert_eq!(payloads, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn attached_clock_tracks_network_time_and_back() {
        let mut net =
            Network::with_default_link(3, LinkConfig::with_latency(SimDuration::from_millis(10)));
        let clock = SharedClock::starting_at(SimTime::from_micros(500));
        net.attach_clock(clock.clone());
        assert_eq!(net.now().as_micros(), 500, "network syncs up on attach");
        let a = net.bind(1).unwrap();
        let b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        net.deliver_all();
        assert_eq!(
            clock.now(),
            net.now(),
            "delivery time is published to the shared clock"
        );
        // An outside scheduler advances the shared clock; the network
        // catches up on demand.
        clock.advance_by(SimDuration::from_millis(5));
        net.send(b, 1, Bytes::from_static(b"y")).unwrap();
        assert_eq!(net.advance_to_clock(), 0, "reply still 10ms out");
        assert_eq!(net.now(), clock.now());
    }

    #[test]
    fn wire_events_are_staged_per_scope_with_relative_stamps() {
        use prognosis_events::{MemorySink, ScopedSink};
        let mut net =
            Network::with_default_link(3, LinkConfig::with_latency(SimDuration::from_millis(2)));
        net.advance(SimDuration::from_millis(10)); // nonzero base
        let mem = Arc::new(MemorySink::new());
        net.attach_event_sink(ScopedSink::new(mem.clone(), true));
        let client = net.bind(50_000).unwrap();
        let server = net.bind(443).unwrap();
        let sink = net.sink.clone().unwrap();
        net.set_wire_scope(client, server, 9);
        net.send(client, 443, Bytes::from_static(b"hello")).unwrap();
        net.advance(SimDuration::from_millis(2));
        net.send(server, 50_000, Bytes::from_static(b"ok")).unwrap();
        net.deliver_all();
        sink.commit(9);
        let out = mem.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "send+deliver per direction: {out}");
        assert!(lines[0].contains("\"name\":\"wire:send\""));
        assert!(lines[0].contains("\"rel\":0,\"data\":{\"dir\":\"up\",\"packet\":0,\"bytes\":5}"));
        assert!(lines[1].contains("\"name\":\"wire:deliver\""));
        assert!(lines[1].contains("\"rel\":2000"), "2ms link latency: {out}");
        assert!(lines[2].contains("\"dir\":\"down\",\"packet\":1,\"bytes\":2"));
        // Unregistered traffic stays silent, and a cleared scope stops
        // reporting stragglers.
        let other = net.bind(7).unwrap();
        net.send(other, 443, Bytes::from_static(b"x")).unwrap();
        net.send(client, 443, Bytes::from_static(b"straggler"))
            .unwrap();
        net.clear_wire_scope(9);
        net.deliver_all();
        sink.commit(9);
        assert_eq!(
            mem.contents().lines().count(),
            5,
            "only the straggler's send was staged before the clear"
        );
    }

    #[test]
    fn lost_and_duplicated_packets_stage_matching_wire_events() {
        use prognosis_events::{MemorySink, ScopedSink};
        let mut net = Network::with_default_link(7, LinkConfig::ideal().duplicate(1.0));
        let mem = Arc::new(MemorySink::new());
        net.attach_event_sink(ScopedSink::new(mem.clone(), true));
        let client = net.bind(1).unwrap();
        let server = net.bind(2).unwrap();
        let sink = net.sink.clone().unwrap();
        net.set_wire_scope(client, server, 1);
        net.send(client, 2, Bytes::from_static(b"dup")).unwrap();
        net.deliver_all();
        sink.commit(1);
        let out = mem.contents();
        assert!(out.contains("\"name\":\"wire:duplicate\""));
        assert!(out.contains("\"copies\":2"));
        assert_eq!(
            out.matches("wire:deliver").count(),
            2,
            "both copies delivered: {out}"
        );

        let mut lossy = Network::with_default_link(7, LinkConfig::ideal().loss(1.0));
        let mem = Arc::new(MemorySink::new());
        lossy.attach_event_sink(ScopedSink::new(mem.clone(), true));
        let client = lossy.bind(1).unwrap();
        let server = lossy.bind(2).unwrap();
        let sink = lossy.sink.clone().unwrap();
        lossy.set_wire_scope(client, server, 1);
        lossy.send(client, 2, Bytes::from_static(b"gone")).unwrap();
        lossy.deliver_all();
        sink.commit(1);
        let out = mem.contents();
        assert!(out.contains("wire:send"));
        assert!(out.contains("wire:drop"));
        assert!(!out.contains("wire:deliver"));
    }

    #[test]
    fn capture_can_be_cleared_between_queries() {
        let mut net = Network::new(1);
        let a = net.bind(1).unwrap();
        let _b = net.bind(2).unwrap();
        net.send(a, 2, Bytes::from_static(b"x")).unwrap();
        assert_eq!(net.capture().len(), 1);
        net.clear_capture();
        assert!(net.capture().is_empty());
    }
}
