//! # prognosis-netsim
//!
//! A deterministic discrete-event network simulator.  The paper runs its
//! learner against real implementations over UDP sockets inside Docker; this
//! crate provides the equivalent substrate for the simulated
//! implementations: datagram endpoints connected by links with configurable
//! latency, jitter, loss, duplication and reordering, all driven by a
//! virtual clock and a seeded RNG so every experiment is reproducible.
//!
//! The loss/latency knobs matter for one experiment in particular: the
//! nondeterminism check of §5 exists precisely because "environmental events
//! such as latency and packet loss could cause non-determinism to be
//! observed"; experiment E13 sweeps these knobs to measure how many repeated
//! queries the check needs before reaching its confidence threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod endpoint;
pub mod link;
pub mod network;
pub mod time;

pub use capture::{CaptureRecord, TraceCapture};
pub use endpoint::{Datagram, Endpoint, EndpointId};
pub use link::LinkConfig;
pub use network::Network;
pub use time::{SharedClock, SimDuration, SimTime};
