//! Virtual time.
//!
//! All simulation timestamps are microseconds since the start of the
//! simulation.  Virtual time only advances when the [`crate::Network`] is
//! stepped, which makes every experiment deterministic and independent of
//! wall-clock scheduling — the property the paper's Docker testbed lacks and
//! compensates for with repeated queries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instant in virtual time (microseconds since simulation start).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Duration elapsed since `earlier`; saturates at zero when `earlier`
    /// is in the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Whether the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// The duration in microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// The duration in milliseconds (truncated).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Scales the duration by an integer factor.
    pub fn saturating_mul(&self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A cloneable, thread-safe handle to a monotonically advancing virtual
/// clock.
///
/// All clones observe the same instant, which is what lets many concurrent
/// entities — the in-flight query sessions of one scheduler worker, or a
/// [`crate::Network`] publishing its delivery time — share a single notion
/// of "now" without any of them sleeping: whoever runs out of work advances
/// the clock to the next deadline and every other holder of the handle sees
/// the jump.  The clock never moves backwards ([`SharedClock::advance_to`]
/// is a max, not a store).
#[derive(Clone, Debug, Default)]
pub struct SharedClock {
    micros: Arc<AtomicU64>,
}

impl SharedClock {
    /// A fresh clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// A fresh clock starting at the given instant.
    pub fn starting_at(at: SimTime) -> Self {
        let clock = SharedClock::new();
        clock.advance_to(at);
        clock
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::Acquire))
    }

    /// Advances the clock to `at` (a no-op when `at` is in the past —
    /// virtual time is monotonic).  Returns the clock's time afterwards.
    pub fn advance_to(&self, at: SimTime) -> SimTime {
        let prev = self.micros.fetch_max(at.0, Ordering::AcqRel);
        SimTime(prev.max(at.0))
    }

    /// Advances the clock by `delta`, returning the new instant.
    pub fn advance_by(&self, delta: SimDuration) -> SimTime {
        let mut current = self.micros.load(Ordering::Acquire);
        loop {
            let next = current.saturating_add(delta.0);
            match self.micros.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return SimTime(next),
                Err(actual) => current = actual,
            }
        }
    }

    /// Virtual time elapsed since the simulation start.
    pub fn elapsed(&self) -> SimDuration {
        self.now().since(SimTime::ZERO)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let t = SimTime::from_micros(2_500);
        assert_eq!(t.as_micros(), 2_500);
        assert_eq!(t.as_millis(), 2);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
        let d = SimDuration::from_millis(3);
        assert_eq!(d.as_micros(), 3_000);
        assert_eq!(d.as_millis(), 3);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(50);
        assert_eq!((t + d).as_micros(), 150);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.as_micros(), 150);
        assert_eq!((t2 - t).as_micros(), 50);
        assert_eq!((t - t2).as_micros(), 0, "subtraction saturates");
        assert_eq!(t2.since(t).as_micros(), 50);
        assert_eq!(t.since(t2).as_micros(), 0);
        assert_eq!((d + d).as_micros(), 100);
        assert_eq!(d.saturating_mul(4).as_micros(), 200);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::from_micros(1_234).to_string(), "1.234ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
    }

    #[test]
    fn shared_clock_is_monotonic_and_shared_between_clones() {
        let clock = SharedClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::from_micros(100));
        assert_eq!(handle.now().as_micros(), 100, "clones see the same time");
        // Advancing into the past is a no-op.
        assert_eq!(handle.advance_to(SimTime::from_micros(40)).as_micros(), 100);
        assert_eq!(clock.now().as_micros(), 100);
        assert_eq!(
            clock.advance_by(SimDuration::from_micros(25)).as_micros(),
            125
        );
        assert_eq!(handle.elapsed().as_micros(), 125);
        let fresh = SharedClock::starting_at(SimTime::from_micros(7));
        assert_eq!(fresh.now().as_micros(), 7);
    }

    #[test]
    fn shared_clock_advances_concurrently_without_losing_monotonicity() {
        let clock = SharedClock::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let clock = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        clock.advance_by(SimDuration::from_micros(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.now().as_micros(), 4_000);
    }

    #[test]
    fn saturating_behaviour_at_extremes() {
        let big = SimTime::from_micros(u64::MAX);
        assert_eq!((big + SimDuration::from_micros(10)).as_micros(), u64::MAX);
        assert_eq!(
            SimDuration::from_micros(u64::MAX)
                .saturating_mul(2)
                .as_micros(),
            u64::MAX
        );
    }
}
