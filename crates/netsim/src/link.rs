//! Link impairment configuration.
//!
//! A [`LinkConfig`] describes the path between two endpoints: base latency,
//! jitter, independent loss and duplication probabilities and a reordering
//! probability (implemented as an extra random delay).  The default link is
//! ideal — zero latency, no impairments — which is what the learning
//! experiments use; the nondeterminism-check experiments (E13) sweep the
//! loss and jitter knobs.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Impairment parameters for one direction of a link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Maximum additional random latency (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a datagram is dropped.
    pub loss_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delivered twice.
    pub duplicate_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delayed by an extra
    /// `reorder_delay`, letting later datagrams overtake it.
    pub reorder_rate: f64,
    /// The extra delay applied to reordered datagrams.
    pub reorder_delay: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_delay: SimDuration::from_millis(5),
        }
    }
}

impl LinkConfig {
    /// An ideal link: instantaneous, lossless, in-order.
    pub fn ideal() -> Self {
        LinkConfig::default()
    }

    /// A link with fixed one-way latency and no other impairments.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            ..LinkConfig::default()
        }
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    /// Panics when the probability is outside `[0, 1]`.
    pub fn loss(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate must be a probability"
        );
        self.loss_rate = rate;
        self
    }

    /// Sets the duplication probability.
    pub fn duplicate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "duplicate rate must be a probability"
        );
        self.duplicate_rate = rate;
        self
    }

    /// Sets the reordering probability.
    pub fn reorder(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "reorder rate must be a probability"
        );
        self.reorder_rate = rate;
        self
    }

    /// Sets the jitter bound.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Decides the fate of one datagram crossing this link: `None` when the
    /// datagram is lost, otherwise the list of delivery delays (one entry,
    /// or two when duplicated).
    pub(crate) fn schedule(&self, rng: &mut StdRng) -> Option<Vec<SimDuration>> {
        if self.loss_rate > 0.0 && rng.gen_bool(self.loss_rate) {
            return None;
        }
        let mut delay = self.latency;
        if self.jitter.as_micros() > 0 {
            delay = delay + SimDuration::from_micros(rng.gen_range(0..=self.jitter.as_micros()));
        }
        if self.reorder_rate > 0.0 && rng.gen_bool(self.reorder_rate) {
            delay = delay + self.reorder_delay;
        }
        let mut deliveries = vec![delay];
        if self.duplicate_rate > 0.0 && rng.gen_bool(self.duplicate_rate) {
            deliveries.push(delay + SimDuration::from_micros(1));
        }
        Some(deliveries)
    }

    /// Whether the link introduces any nondeterminism-relevant impairment.
    pub fn is_impaired(&self) -> bool {
        self.loss_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.reorder_rate > 0.0
            || self.jitter.as_micros() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_link_delivers_exactly_once_with_zero_delay() {
        let link = LinkConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = link.schedule(&mut rng).expect("ideal link never loses");
            assert_eq!(d, vec![SimDuration::ZERO]);
        }
        assert!(!link.is_impaired());
    }

    #[test]
    fn lossy_link_drops_roughly_at_the_configured_rate() {
        let link = LinkConfig::ideal().loss(0.3);
        let mut rng = StdRng::seed_from_u64(42);
        let lost = (0..10_000)
            .filter(|_| link.schedule(&mut rng).is_none())
            .count();
        assert!(
            (2_500..3_500).contains(&lost),
            "lost {lost} of 10000 at 30% loss"
        );
        assert!(link.is_impaired());
    }

    #[test]
    fn duplication_yields_two_deliveries() {
        let link = LinkConfig::ideal().duplicate(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let d = link.schedule(&mut rng).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d[1] > d[0]);
    }

    #[test]
    fn latency_jitter_and_reorder_add_delay() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(10))
            .jitter(SimDuration::from_millis(2))
            .reorder(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let d = link.schedule(&mut rng).unwrap();
        let delay = d[0].as_micros();
        assert!(
            delay >= 15_000,
            "10ms latency + 5ms reorder delay, got {delay}µs"
        );
        assert!(delay <= 17_000);
        assert!(link.is_impaired());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = LinkConfig::ideal().loss(1.5);
    }

    #[test]
    fn scheduling_is_deterministic_per_seed() {
        let link = LinkConfig::ideal()
            .loss(0.5)
            .duplicate(0.5)
            .jitter(SimDuration::from_micros(100));
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| link.schedule(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
