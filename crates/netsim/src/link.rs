//! Link impairment configuration.
//!
//! A [`LinkConfig`] describes the path between two endpoints: base latency,
//! jitter, independent loss and duplication probabilities and a reordering
//! probability (implemented as an extra random delay).  The default link is
//! ideal — zero latency, no impairments — which is what the learning
//! experiments use; the nondeterminism-check experiments (E13/E18) sweep
//! the loss and jitter knobs.
//!
//! Impairment decisions are **pure**: [`LinkConfig::fate`] derives every
//! knob's decision for packet `index` of stream `seed` from its own RNG
//! sub-stream, so each impairment is a function of `(seed, packet index)`
//! alone.  Enabling or sweeping one knob never reshuffles another knob's
//! outcomes for the same seed — sweep rows are comparable knob-by-knob —
//! and two packets with the same stream seed and index meet identical
//! network weather no matter which session, worker or virtual instant
//! sends them.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sub-stream tags, one per impairment knob.
const KNOB_LOSS: u64 = 1;
const KNOB_JITTER: u64 = 2;
const KNOB_REORDER: u64 = 3;
const KNOB_DUPLICATE: u64 = 4;

/// A per-(stream, packet, knob) RNG: decisions drawn from it are a pure
/// function of the three coordinates, independent of every other knob.
fn substream(seed: u64, index: u64, knob: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ knob.wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
}

/// Impairment parameters for one direction of a link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Maximum additional random latency (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a datagram is dropped.
    pub loss_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delivered twice.
    pub duplicate_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delayed by an extra
    /// `reorder_delay`, letting later datagrams overtake it.
    pub reorder_rate: f64,
    /// The extra delay applied to reordered datagrams.
    pub reorder_delay: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_delay: SimDuration::from_millis(5),
        }
    }
}

impl LinkConfig {
    /// An ideal link: instantaneous, lossless, in-order.
    pub fn ideal() -> Self {
        LinkConfig::default()
    }

    /// A link with fixed one-way latency and no other impairments.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            ..LinkConfig::default()
        }
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    /// Panics when the probability is outside `[0, 1]`.
    pub fn loss(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate must be a probability"
        );
        self.loss_rate = rate;
        self
    }

    /// Sets the duplication probability.
    pub fn duplicate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "duplicate rate must be a probability"
        );
        self.duplicate_rate = rate;
        self
    }

    /// Sets the reordering probability.
    pub fn reorder(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "reorder rate must be a probability"
        );
        self.reorder_rate = rate;
        self
    }

    /// Sets the jitter bound.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Decides the fate of packet `index` on noise stream `seed`: `None`
    /// when the datagram is lost, otherwise the list of delivery delays
    /// (one entry, or two when duplicated).
    ///
    /// Each impairment draws from its own `(seed, index, knob)` sub-stream,
    /// so its decision is a pure function of the stream seed and packet
    /// index: sweeping the loss rate leaves jitter draws untouched, and the
    /// same `(seed, index)` pair meets the same weather on every call.
    pub fn fate(&self, seed: u64, index: u64) -> Option<Vec<SimDuration>> {
        if self.loss_rate > 0.0 && substream(seed, index, KNOB_LOSS).gen_bool(self.loss_rate) {
            return None;
        }
        let mut delay = self.latency;
        if self.jitter.as_micros() > 0 {
            delay = delay
                + SimDuration::from_micros(
                    substream(seed, index, KNOB_JITTER).gen_range(0..=self.jitter.as_micros()),
                );
        }
        if self.reorder_rate > 0.0
            && substream(seed, index, KNOB_REORDER).gen_bool(self.reorder_rate)
        {
            delay = delay + self.reorder_delay;
        }
        let mut deliveries = vec![delay];
        if self.duplicate_rate > 0.0
            && substream(seed, index, KNOB_DUPLICATE).gen_bool(self.duplicate_rate)
        {
            deliveries.push(delay + SimDuration::from_micros(1));
        }
        Some(deliveries)
    }

    /// Whether the link introduces any nondeterminism-relevant impairment.
    pub fn is_impaired(&self) -> bool {
        self.loss_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.reorder_rate > 0.0
            || self.jitter.as_micros() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_exactly_once_with_zero_delay() {
        let link = LinkConfig::ideal();
        for index in 0..100 {
            let d = link.fate(1, index).expect("ideal link never loses");
            assert_eq!(d, vec![SimDuration::ZERO]);
        }
        assert!(!link.is_impaired());
    }

    #[test]
    fn lossy_link_drops_roughly_at_the_configured_rate() {
        let link = LinkConfig::ideal().loss(0.3);
        let lost = (0..10_000).filter(|&i| link.fate(42, i).is_none()).count();
        assert!(
            (2_500..3_500).contains(&lost),
            "lost {lost} of 10000 at 30% loss"
        );
        assert!(link.is_impaired());
    }

    #[test]
    fn duplication_yields_two_deliveries() {
        let link = LinkConfig::ideal().duplicate(1.0);
        let d = link.fate(7, 0).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d[1] > d[0]);
    }

    #[test]
    fn latency_jitter_and_reorder_add_delay() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(10))
            .jitter(SimDuration::from_millis(2))
            .reorder(1.0);
        let d = link.fate(3, 0).unwrap();
        let delay = d[0].as_micros();
        assert!(
            delay >= 15_000,
            "10ms latency + 5ms reorder delay, got {delay}µs"
        );
        assert!(delay <= 17_000);
        assert!(link.is_impaired());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = LinkConfig::ideal().loss(1.5);
    }

    #[test]
    fn fates_are_deterministic_per_seed_and_index() {
        let link = LinkConfig::ideal()
            .loss(0.5)
            .duplicate(0.5)
            .jitter(SimDuration::from_micros(100));
        let run = |seed| (0..50).map(|i| link.fate(seed, i)).collect::<Vec<_>>();
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        // Packet fates are index-addressable, not stream-positional: asking
        // about packet 17 alone answers the same as asking in sequence.
        assert_eq!(link.fate(9, 17), run(9)[17]);
    }

    #[test]
    fn impairment_knobs_are_independent_per_packet() {
        // The E13/E18 sweep-comparability property: toggling one knob must
        // not reshuffle another knob's outcomes for the same (seed, index).
        let jitter_only = LinkConfig::with_latency(SimDuration::from_millis(1))
            .jitter(SimDuration::from_micros(500));
        let jitter_and_loss = jitter_only.loss(0.4);
        let jitter_loss_dup = jitter_and_loss.duplicate(0.3);
        for index in 0..2_000 {
            let base = jitter_only.fate(11, index).expect("lossless");
            // Wherever the lossy link delivers, the jitter delay is
            // identical to the lossless link's.
            if let Some(d) = jitter_and_loss.fate(11, index) {
                assert_eq!(d[0], base[0], "loss knob changed jitter at {index}");
            }
            if let Some(d) = jitter_loss_dup.fate(11, index) {
                assert_eq!(d[0], base[0], "dup knob changed jitter at {index}");
                // And duplication decisions agree with the loss+dup link
                // regardless of the jitter bound.
                let no_jitter = LinkConfig::with_latency(SimDuration::from_millis(1))
                    .loss(0.4)
                    .duplicate(0.3);
                if let Some(nd) = no_jitter.fate(11, index) {
                    assert_eq!(
                        d.len(),
                        nd.len(),
                        "jitter knob changed duplication at {index}"
                    );
                }
            }
            // Loss decisions agree between the two lossy links (the extra
            // duplicate knob must not perturb them).
            assert_eq!(
                jitter_and_loss.fate(11, index).is_none(),
                jitter_loss_dup.fate(11, index).is_none(),
                "dup knob changed loss at {index}"
            );
        }
    }
}
