//! Packet capture.
//!
//! The simulator records every datagram it accepts for transmission,
//! together with its fate (delivered, lost, duplicated), in a
//! [`TraceCapture`].  This is the in-simulator analogue of running `tcpdump`
//! next to the reference implementation and is handy both for debugging
//! adapters and for the experiment reports.
//!
//! The capture is a size-capped ring: once `capacity` records are held,
//! recording another evicts the oldest half in one amortized-O(1) drain and
//! counts the evictions in [`TraceCapture::dropped`], so a campaign-scale
//! run holds at most `capacity` records instead of growing without bound.
//! Streaming consumers that need every packet should attach an event sink
//! to the network instead (`Network::attach_event_sink`).

use crate::endpoint::EndpointId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The fate of a captured datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// Delivered exactly once.
    Delivered,
    /// Dropped by the link.
    Lost,
    /// Delivered twice due to duplication.
    Duplicated,
}

/// One captured datagram.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureRecord {
    /// Virtual send time.
    pub sent_at: SimTime,
    /// Sending endpoint.
    pub from: EndpointId,
    /// Receiving endpoint (resolved from the destination port).
    pub to: Option<EndpointId>,
    /// Source port.
    pub source_port: u16,
    /// Destination port.
    pub destination_port: u16,
    /// Payload length in bytes.
    pub length: usize,
    /// What happened to the datagram.
    pub fate: Fate,
}

/// The default record cap: high enough that every existing single-learn
/// consumer sees the complete trace, low enough to bound campaign-scale
/// memory.
pub const DEFAULT_CAPTURE_CAPACITY: usize = 1 << 16;

/// A size-capped capture of the traffic through a network, oldest records
/// evicted first.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCapture {
    records: Vec<CaptureRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceCapture {
    fn default() -> Self {
        TraceCapture::new()
    }
}

impl TraceCapture {
    /// An empty capture with the default cap.
    pub fn new() -> Self {
        TraceCapture::with_capacity(DEFAULT_CAPTURE_CAPACITY)
    }

    /// An empty capture holding at most `capacity` records (min 2).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCapture {
            records: Vec::new(),
            capacity: capacity.max(2),
            dropped: 0,
        }
    }

    /// The record cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, evicting the oldest half of the buffer when the
    /// cap is reached.
    pub fn record(&mut self, record: CaptureRecord) {
        if self.records.len() >= self.capacity {
            let evict = self.capacity / 2;
            self.records.drain(..evict);
            self.dropped += evict as u64;
        }
        self.records.push(record);
    }

    /// Retained records in send order (oldest may have been evicted; see
    /// [`TraceCapture::dropped`]).
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Records evicted to honour the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes of the retained records.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.length).sum()
    }

    /// Number of retained datagrams lost in transit.
    pub fn lost(&self) -> usize {
        self.records.iter().filter(|r| r.fate == Fate::Lost).count()
    }

    /// Clears the capture (e.g. between learner queries), including the
    /// dropped-record counter.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fate: Fate, length: usize) -> CaptureRecord {
        CaptureRecord {
            sent_at: SimTime::ZERO,
            from: EndpointId(0),
            to: Some(EndpointId(1)),
            source_port: 1,
            destination_port: 2,
            length,
            fate,
        }
    }

    #[test]
    fn capture_accumulates_and_summarises() {
        let mut c = TraceCapture::new();
        assert!(c.is_empty());
        c.record(record(Fate::Delivered, 100));
        c.record(record(Fate::Lost, 50));
        c.record(record(Fate::Duplicated, 25));
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 175);
        assert_eq!(c.lost(), 1);
        assert_eq!(c.records()[1].fate, Fate::Lost);
        assert_eq!(c.dropped(), 0);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn cap_evicts_oldest_and_counts_drops() {
        let mut c = TraceCapture::with_capacity(8);
        for i in 0..13 {
            c.record(record(Fate::Delivered, i));
        }
        // The 9th and 13th records each evicted the oldest 4; memory
        // stays bounded.
        assert_eq!(c.dropped(), 8);
        assert_eq!(c.len(), 5);
        assert!(c.len() <= c.capacity());
        assert_eq!(c.records()[0].length, 8, "oldest retained is record 8");
        assert_eq!(c.records().last().expect("nonempty").length, 12);
        c.clear();
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn default_cap_is_high_enough_for_single_learn_traces() {
        assert_eq!(TraceCapture::new().capacity(), DEFAULT_CAPTURE_CAPACITY);
        const { assert!(DEFAULT_CAPTURE_CAPACITY >= 1 << 16) };
    }
}
