//! Packet capture.
//!
//! The simulator records every datagram it accepts for transmission,
//! together with its fate (delivered, lost, duplicated), in a
//! [`TraceCapture`].  This is the in-simulator analogue of running `tcpdump`
//! next to the reference implementation and is handy both for debugging
//! adapters and for the experiment reports.

use crate::endpoint::EndpointId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The fate of a captured datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// Delivered exactly once.
    Delivered,
    /// Dropped by the link.
    Lost,
    /// Delivered twice due to duplication.
    Duplicated,
}

/// One captured datagram.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureRecord {
    /// Virtual send time.
    pub sent_at: SimTime,
    /// Sending endpoint.
    pub from: EndpointId,
    /// Receiving endpoint (resolved from the destination port).
    pub to: Option<EndpointId>,
    /// Source port.
    pub source_port: u16,
    /// Destination port.
    pub destination_port: u16,
    /// Payload length in bytes.
    pub length: usize,
    /// What happened to the datagram.
    pub fate: Fate,
}

/// An append-only capture of all traffic through a network.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCapture {
    records: Vec<CaptureRecord>,
}

impl TraceCapture {
    /// An empty capture.
    pub fn new() -> Self {
        TraceCapture::default()
    }

    /// Appends a record.
    pub fn record(&mut self, record: CaptureRecord) {
        self.records.push(record);
    }

    /// All records in send order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes accepted for transmission.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.length).sum()
    }

    /// Number of datagrams lost in transit.
    pub fn lost(&self) -> usize {
        self.records.iter().filter(|r| r.fate == Fate::Lost).count()
    }

    /// Clears the capture (e.g. between learner queries).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fate: Fate, length: usize) -> CaptureRecord {
        CaptureRecord {
            sent_at: SimTime::ZERO,
            from: EndpointId(0),
            to: Some(EndpointId(1)),
            source_port: 1,
            destination_port: 2,
            length,
            fate,
        }
    }

    #[test]
    fn capture_accumulates_and_summarises() {
        let mut c = TraceCapture::new();
        assert!(c.is_empty());
        c.record(record(Fate::Delivered, 100));
        c.record(record(Fate::Lost, 50));
        c.record(record(Fate::Duplicated, 25));
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 175);
        assert_eq!(c.lost(), 1);
        assert_eq!(c.records()[1].fate, Fate::Lost);
        c.clear();
        assert!(c.is_empty());
    }
}
