//! The campaign determinism contract: the report is a function of the
//! spec alone.  Engine-pool size, task-worker count and the schedule seed
//! (which permutes the order free workers pick ready tasks, and with it
//! the completion order of independent tasks) move only wall-clock — the
//! learned models, diff reports and every per-cell statistic must come
//! back bit-identical, asserted here on the canonical JSON rendering.

use prognosis_analysis::properties::SafetyProperty;
use prognosis_campaign::{run_campaign, CampaignSpec, CellSpec, Impairment, RunnerConfig};
use prognosis_core::pipeline::LearnConfig;
use proptest::prelude::*;

/// A 3-symbol TCP alphabet keeps each learn fast while still exercising
/// priming, impairment, diffing and checking.
fn small_tcp_cell(id: &str, version: &str) -> CellSpec {
    CellSpec::tcp(id, version).with_alphabet(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)"])
}

/// Five cells: two clean versions chained by a baseline edge (priming),
/// one independently seeded equivalence stream, and two impaired points —
/// plus a diff and a property check fanning out of the learns.
fn spec() -> CampaignSpec {
    let learn = LearnConfig {
        random_tests: 150,
        min_word_len: 2,
        max_word_len: 6,
        eq_batch_size: 64,
        ..LearnConfig::default()
    };
    CampaignSpec::new("schedule-independence")
        .cell(small_tcp_cell("tcp-v1", "v1"))
        .cell(small_tcp_cell("tcp-v2", "v2").with_baseline("tcp-v1"))
        .cell(
            small_tcp_cell("tcp-v1-loss", "v1")
                .with_impairment(Impairment::latency(100).with_loss(0.02)),
        )
        .cell(
            small_tcp_cell("tcp-v1-jitter", "v1")
                .with_impairment(Impairment::latency(100).with_jitter(40)),
        )
        .diff("tcp-v1", "tcp-v2")
        .diff("tcp-v1", "tcp-v1-loss")
        .check("tcp-v1", SafetyProperty::never_output("NEVER-EMITTED"))
        .with_learn(learn)
}

fn canonical(engine_threads: usize, task_workers: usize, schedule_seed: u64) -> String {
    run_campaign(
        &spec(),
        &RunnerConfig {
            engine_threads,
            task_workers,
            schedule_seed,
            progress: false,
            events: None,
        },
    )
    .expect("campaign succeeds")
    .canonical_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    // Permuting completion order (via the schedule seed) and varying the
    // engine and task-worker counts yields a byte-identical report.
    #[test]
    fn report_is_schedule_independent(
        engine_threads in 1usize..4,
        task_workers in 1usize..4,
        schedule_seed in any::<u64>(),
    ) {
        let reference = canonical(2, 1, 0);
        let permuted = canonical(engine_threads, task_workers, schedule_seed);
        prop_assert_eq!(reference, permuted);
    }
}

/// The fixed-shape sanity check the proptest builds on: the reference
/// run itself is reproducible, and the cross-version cell really primes.
#[test]
fn reference_run_is_reproducible_and_primes() {
    let a = run_campaign(
        &spec(),
        &RunnerConfig {
            engine_threads: 2,
            task_workers: 1,
            schedule_seed: 0,
            progress: false,
            events: None,
        },
    )
    .expect("campaign succeeds");
    assert_eq!(a.canonical_json(), canonical(2, 1, 0));
    let v2 = &a.cells[1];
    assert!(v2.primed_words > 0, "the baseline edge primed tcp-v2");
    assert_eq!(v2.learn_misses, 0, "identical behaviour ⇒ full coverage");
    assert!(a.diffs[0].equivalent, "v1 and v2 share one SUL");
}
