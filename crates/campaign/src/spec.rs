//! Campaign specifications: the {protocol} × {implementation profile} ×
//! {version} × {impairment point} matrix, plus the diffs and property
//! checks to run over the learned models.
//!
//! A [`CampaignSpec`] is declarative: cells say *what* to learn, diff and
//! check entries say *what* to compare, and [`CampaignSpec::build_graph`]
//! lowers the whole thing into the dependency DAG the runner executes
//! (learn tasks, then — as each upstream learn completes, with no global
//! barrier — the diff and property-check tasks that need it, then one
//! report task).  [`CampaignSpec::validate`] rejects malformed specs
//! before any engine time is spent.

use crate::dag::{GraphError, TaskGraph};
use prognosis_analysis::properties::SafetyProperty;
use prognosis_automata::alphabet::Alphabet;
use prognosis_core::pipeline::LearnConfig;
use prognosis_core::quic_adapter::quic_alphabet;
use prognosis_core::tcp_adapter::tcp_alphabet;
use prognosis_quic_sim::profile::ImplementationProfile;
use std::fmt;

/// Which protocol binding a cell learns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The simulated TCP server (`prognosis-tcp`).
    Tcp,
    /// A simulated QUIC implementation profile (`prognosis-quic-sim`).
    Quic,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Quic => write!(f, "quic"),
        }
    }
}

/// A network-impairment point: the cell learns through a `netsim` link
/// with these characteristics instead of in-process.  Impaired SULs are
/// uncacheable by design (answers depend on link noise), so impaired cells
/// neither read nor write the shared observation cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Impairment {
    /// Base one-way latency in microseconds.
    pub latency_us: u64,
    /// Maximum additional uniform jitter in microseconds.
    pub jitter_us: u64,
    /// Datagram loss probability in `[0, 1]`.
    pub loss: f64,
    /// Seed of the link's noise source.
    pub noise_seed: u64,
}

impl Impairment {
    /// A clean fixed-latency link (no jitter, no loss).
    pub fn latency(latency_us: u64) -> Self {
        Impairment {
            latency_us,
            jitter_us: 0,
            loss: 0.0,
            noise_seed: 23,
        }
    }

    /// Returns the impairment with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Returns the impairment with the given jitter bound.
    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> String {
        format!(
            "link({}us+{}us, loss {:.0}%)",
            self.latency_us,
            self.jitter_us,
            self.loss * 100.0
        )
    }
}

/// One matrix cell: a (protocol, profile, version, impairment) point whose
/// model the campaign learns.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Unique cell id, used in diff/check references and reports.
    pub id: String,
    /// Protocol binding.
    pub protocol: Protocol,
    /// Implementation profile (QUIC cells only; `None` for TCP).
    pub profile: Option<ImplementationProfile>,
    /// Whether the QUIC cell's reference client carries the Issue-3 buggy
    /// retry behaviour — the knob that distinguishes "versions" of the
    /// tracker client.
    pub buggy_retry_client: bool,
    /// Implementation version label — the third axis of the shared cache
    /// key.  Cells with equal SUL behaviour but different versions keep
    /// separate cache entries, and cross-version divergences between a
    /// cell and its baseline surface as regression findings.
    pub version: String,
    /// SUL seed (QUIC profiles take a deterministic seed).
    pub seed: u64,
    /// Learning alphabet override; `None` uses the protocol's default
    /// (`tcp_alphabet` / `quic_alphabet`).
    pub alphabet: Option<Vec<String>>,
    /// Optional impairment point; `None` learns in-process.
    pub impairment: Option<Impairment>,
    /// Id of the cell whose finished observations *prime* this cell's
    /// learn (a cross-version warm start): the baseline's terminal query
    /// words are replayed against this cell's own SUL before learning, so
    /// shared behaviour is answered in one saturated batch and divergent
    /// behaviour is reported.  Adds a DAG edge — this learn waits for the
    /// baseline's.
    pub baseline: Option<String>,
}

impl CellSpec {
    /// A TCP cell.
    pub fn tcp(id: impl Into<String>, version: impl Into<String>) -> Self {
        CellSpec {
            id: id.into(),
            protocol: Protocol::Tcp,
            profile: None,
            buggy_retry_client: false,
            version: version.into(),
            seed: 0,
            alphabet: None,
            impairment: None,
            baseline: None,
        }
    }

    /// A QUIC cell for the given implementation profile.
    pub fn quic(
        id: impl Into<String>,
        version: impl Into<String>,
        profile: ImplementationProfile,
        seed: u64,
    ) -> Self {
        CellSpec {
            id: id.into(),
            protocol: Protocol::Quic,
            profile: Some(profile),
            buggy_retry_client: false,
            version: version.into(),
            seed,
            alphabet: None,
            impairment: None,
            baseline: None,
        }
    }

    /// Returns the cell with a custom learning alphabet.
    pub fn with_alphabet<S: Into<String>>(mut self, symbols: impl IntoIterator<Item = S>) -> Self {
        self.alphabet = Some(symbols.into_iter().map(Into::into).collect());
        self
    }

    /// Returns the cell learned through an impaired link.
    pub fn with_impairment(mut self, impairment: Impairment) -> Self {
        self.impairment = Some(impairment);
        self
    }

    /// Returns the cell primed by `baseline`'s observations.
    pub fn with_baseline(mut self, baseline: impl Into<String>) -> Self {
        self.baseline = Some(baseline.into());
        self
    }

    /// Returns the cell with the Issue-3 buggy retry client enabled.
    pub fn with_buggy_retry_client(mut self) -> Self {
        self.buggy_retry_client = true;
        self
    }

    /// The effective learning alphabet of this cell.
    pub fn effective_alphabet(&self) -> Alphabet {
        match &self.alphabet {
            Some(symbols) => Alphabet::from_symbols(symbols.iter().map(String::as_str)),
            None => match self.protocol {
                Protocol::Tcp => tcp_alphabet(),
                Protocol::Quic => quic_alphabet(),
            },
        }
    }
}

/// A model-diff entry: compare the learned models of two cells.
#[derive(Clone, Debug)]
pub struct DiffSpec {
    /// Left cell id.
    pub left: String,
    /// Right cell id.
    pub right: String,
}

/// A property-check entry: check one safety property against one cell's
/// learned model.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// Cell id whose model is checked.
    pub cell: String,
    /// The property.
    pub property: SafetyProperty,
}

/// What one campaign task does.  Payload of the lowered [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Learn the model of `spec.cells[i]`.
    Learn(usize),
    /// Compute `spec.diffs[i]` from its two finished models.
    Diff(usize),
    /// Check `spec.checks[i]` against its finished model.
    Check(usize),
    /// Assemble the campaign report from every finished task.
    Report,
}

/// A complete campaign specification.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name, echoed in the report.
    pub name: String,
    /// The matrix cells to learn.
    pub cells: Vec<CellSpec>,
    /// Model diffs to compute between finished cells.
    pub diffs: Vec<DiffSpec>,
    /// Safety properties to check against finished cells.
    pub checks: Vec<CheckSpec>,
    /// The per-cell learning configuration (`workers` and `max_inflight`
    /// are the engine slots *each* learn task leases from the shared pool;
    /// `cache_path`/`warm_start` here are ignored — the campaign's shared
    /// versioned store handles persistence).
    pub learn: LearnConfig,
    /// Maximum distinguishing traces per diff entry.
    pub max_diffs: usize,
    /// Where the shared versioned observation cache persists across
    /// campaign runs (`None` keeps it in-memory for the run).
    pub cache_path: Option<String>,
}

impl CampaignSpec {
    /// A named spec with no cells yet and default learning settings.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            cells: Vec::new(),
            diffs: Vec::new(),
            checks: Vec::new(),
            learn: LearnConfig::default(),
            max_diffs: 3,
            cache_path: None,
        }
    }

    /// Appends a cell.
    pub fn cell(mut self, cell: CellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Appends a diff between two cell ids.
    pub fn diff(mut self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.diffs.push(DiffSpec {
            left: left.into(),
            right: right.into(),
        });
        self
    }

    /// Appends a property check against a cell id.
    pub fn check(mut self, cell: impl Into<String>, property: SafetyProperty) -> Self {
        self.checks.push(CheckSpec {
            cell: cell.into(),
            property,
        });
        self
    }

    /// Returns the spec with the given per-cell learning configuration.
    pub fn with_learn(mut self, learn: LearnConfig) -> Self {
        self.learn = learn;
        self
    }

    /// Returns the spec persisting the shared cache at `path`.
    pub fn with_cache_path(mut self, path: impl Into<String>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Index of the cell with this id.
    fn cell_index(&self, id: &str) -> Option<usize> {
        self.cells.iter().position(|c| c.id == id)
    }

    /// Lowers the spec into the task DAG: one `Learn` per cell (needing
    /// its baseline's learn, if any), one `Diff`/`Check` per entry
    /// (needing the learns they read), and a final `Report` needing
    /// everything.
    pub fn build_graph(&self) -> TaskGraph<TaskKind> {
        let mut graph = TaskGraph::new();
        let learn_id = |cell: &str| format!("learn:{cell}");
        for (i, cell) in self.cells.iter().enumerate() {
            let needs: Vec<String> = cell.baseline.iter().map(|b| learn_id(b)).collect();
            graph.add(learn_id(&cell.id), needs, TaskKind::Learn(i));
        }
        let mut upstream: Vec<String> = self.cells.iter().map(|c| learn_id(&c.id)).collect();
        for (i, diff) in self.diffs.iter().enumerate() {
            let id = format!("diff:{}~{}", diff.left, diff.right);
            graph.add(
                id.clone(),
                [learn_id(&diff.left), learn_id(&diff.right)],
                TaskKind::Diff(i),
            );
            upstream.push(id);
        }
        for (i, check) in self.checks.iter().enumerate() {
            let id = format!("check:{i}:{}", check.cell);
            graph.add(id.clone(), [learn_id(&check.cell)], TaskKind::Check(i));
            upstream.push(id);
        }
        graph.add("report", upstream, TaskKind::Report);
        graph
    }

    /// Validates the spec: at least one cell, QUIC cells carry a profile,
    /// diff/check/baseline references resolve, diffed and baselined pairs
    /// share a protocol and an alphabet (their words must be replayable
    /// and comparable), and the lowered DAG is well-formed (unique ids, no
    /// dangling/self dependencies, no baseline cycles).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.cells.is_empty() {
            return Err(SpecError::NoCells);
        }
        for cell in &self.cells {
            if cell.protocol == Protocol::Quic && cell.profile.is_none() {
                return Err(SpecError::MissingProfile(cell.id.clone()));
            }
            if let Some(baseline) = &cell.baseline {
                let Some(b) = self.cell_index(baseline) else {
                    return Err(SpecError::UnknownCell {
                        referenced_by: format!("cell {}", cell.id),
                        cell: baseline.clone(),
                    });
                };
                let b = &self.cells[b];
                if b.protocol != cell.protocol
                    || b.effective_alphabet() != cell.effective_alphabet()
                {
                    return Err(SpecError::IncompatiblePair {
                        context: format!("baseline of cell {}", cell.id),
                        left: cell.id.clone(),
                        right: baseline.clone(),
                    });
                }
            }
        }
        for diff in &self.diffs {
            for id in [&diff.left, &diff.right] {
                if self.cell_index(id).is_none() {
                    return Err(SpecError::UnknownCell {
                        referenced_by: format!("diff {}~{}", diff.left, diff.right),
                        cell: id.clone(),
                    });
                }
            }
            let l = &self.cells[self.cell_index(&diff.left).unwrap()];
            let r = &self.cells[self.cell_index(&diff.right).unwrap()];
            if l.protocol != r.protocol || l.effective_alphabet() != r.effective_alphabet() {
                return Err(SpecError::IncompatiblePair {
                    context: "diff".to_string(),
                    left: diff.left.clone(),
                    right: diff.right.clone(),
                });
            }
        }
        for check in &self.checks {
            if self.cell_index(&check.cell).is_none() {
                return Err(SpecError::UnknownCell {
                    referenced_by: "property check".to_string(),
                    cell: check.cell.clone(),
                });
            }
        }
        self.build_graph().validate().map_err(SpecError::Graph)?;
        Ok(())
    }
}

/// Why a campaign spec failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec has no cells.
    NoCells,
    /// A QUIC cell has no implementation profile.
    MissingProfile(String),
    /// A diff, check or baseline references a cell id that does not exist.
    UnknownCell {
        /// What referenced it.
        referenced_by: String,
        /// The dangling id.
        cell: String,
    },
    /// Two referenced cells mix protocols or alphabets.
    IncompatiblePair {
        /// Where the pair appears (diff / baseline).
        context: String,
        /// Left cell id.
        left: String,
        /// Right cell id.
        right: String,
    },
    /// The lowered task DAG is malformed (duplicate cell ids surface here,
    /// as do baseline cycles).
    Graph(GraphError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoCells => write!(f, "campaign spec has no cells"),
            SpecError::MissingProfile(id) => {
                write!(f, "QUIC cell {id:?} has no implementation profile")
            }
            SpecError::UnknownCell {
                referenced_by,
                cell,
            } => write!(f, "{referenced_by} references unknown cell {cell:?}"),
            SpecError::IncompatiblePair {
                context,
                left,
                right,
            } => write!(
                f,
                "{context} pairs {left:?} with {right:?}, which differ in protocol or alphabet"
            ),
            SpecError::Graph(e) => write!(f, "invalid task graph: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_spec() -> CampaignSpec {
        CampaignSpec::new("t")
            .cell(CellSpec::tcp("a", "v1"))
            .cell(CellSpec::tcp("b", "v2").with_baseline("a"))
    }

    #[test]
    fn a_valid_spec_lowers_to_a_dag_with_report_last() {
        let spec = two_cell_spec()
            .diff("a", "b")
            .check("a", SafetyProperty::never_output("BOOM"));
        spec.validate().unwrap();
        let graph = spec.build_graph();
        assert_eq!(graph.len(), 5, "2 learns + 1 diff + 1 check + report");
        let report = &graph.nodes()[graph.index_of("report").unwrap()];
        assert_eq!(report.needs.len(), 4, "the report waits on everything");
        // The baseline edge is a real dependency.
        let b = &graph.nodes()[graph.index_of("learn:b").unwrap()];
        assert_eq!(b.needs, vec!["learn:a".to_string()]);
    }

    #[test]
    fn dangling_references_are_rejected() {
        assert!(matches!(
            two_cell_spec().diff("a", "ghost").validate(),
            Err(SpecError::UnknownCell { .. })
        ));
        assert!(matches!(
            two_cell_spec()
                .check("ghost", SafetyProperty::never_output("x"))
                .validate(),
            Err(SpecError::UnknownCell { .. })
        ));
        assert!(matches!(
            CampaignSpec::new("t")
                .cell(CellSpec::tcp("a", "v1").with_baseline("ghost"))
                .validate(),
            Err(SpecError::UnknownCell { .. })
        ));
    }

    #[test]
    fn baseline_cycles_and_duplicate_ids_are_rejected_at_the_graph_layer() {
        let cyclic = CampaignSpec::new("t")
            .cell(CellSpec::tcp("a", "v1").with_baseline("b"))
            .cell(CellSpec::tcp("b", "v2").with_baseline("a"));
        assert!(matches!(
            cyclic.validate(),
            Err(SpecError::Graph(GraphError::Cycle(_)))
        ));
        let dup = CampaignSpec::new("t")
            .cell(CellSpec::tcp("a", "v1"))
            .cell(CellSpec::tcp("a", "v2"));
        assert!(matches!(
            dup.validate(),
            Err(SpecError::Graph(GraphError::DuplicateId(_)))
        ));
    }

    #[test]
    fn protocol_and_alphabet_mixes_are_rejected() {
        let spec = CampaignSpec::new("t")
            .cell(CellSpec::tcp("t1", "v1"))
            .cell(CellSpec::quic(
                "q1",
                "v1",
                ImplementationProfile::quiche(),
                3,
            ))
            .diff("t1", "q1");
        assert!(matches!(
            spec.validate(),
            Err(SpecError::IncompatiblePair { .. })
        ));
        let narrowed = CampaignSpec::new("t")
            .cell(CellSpec::tcp("t1", "v1"))
            .cell(CellSpec::tcp("t2", "v1").with_alphabet(["SYN(?,?,0)"]))
            .diff("t1", "t2");
        assert!(matches!(
            narrowed.validate(),
            Err(SpecError::IncompatiblePair { .. })
        ));
        assert!(matches!(
            CampaignSpec::new("t").validate(),
            Err(SpecError::NoCells)
        ));
    }
}
