//! # prognosis-campaign
//!
//! Fleet-scale differential-learning campaigns: turn a
//! {protocol} × {implementation profile} × {version} × {impairment point}
//! matrix into a dependency DAG of `Learn` / `Diff` / `PropertyCheck` /
//! `Report` tasks and execute it over **one shared engine pool** and
//! **one shared, versioned observation cache**.
//!
//! * [`dag`] — the generic task graph with validation (duplicate ids,
//!   dangling/self dependencies and cycles are rejected before any engine
//!   time is spent);
//! * [`spec`] — the declarative campaign matrix ([`spec::CampaignSpec`]),
//!   lowered into the DAG; baseline edges express cross-version cache
//!   priming, which is how two versions of one implementation share warm
//!   observations soundly (the sibling's query words are *replayed against
//!   this version's own SUL*, so divergent behaviour surfaces as findings
//!   instead of corrupting the cache);
//! * [`runner`] — the executor: task workers drain the ready set (diffs
//!   and checks fan out as upstream learns complete — no global barrier),
//!   learn tasks lease session-worker slots from a shared
//!   [`prognosis_core::engine::EnginePool`], and finished observations
//!   persist into a [`prognosis_learner::cache::SharedCacheStore`] under a
//!   per-path writer guard;
//! * [`report`] — the machine-readable result, assembled in spec order
//!   with no wall-clock anywhere: the same spec yields a byte-identical
//!   [`report::CampaignReport::canonical_json`] at any engine size,
//!   task-worker count or schedule seed;
//! * [`progress`] — the live one-line status repaint, suppressed when
//!   stdout is not a TTY.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod progress;
pub mod report;
pub mod runner;
pub mod spec;

pub use dag::{GraphError, TaskGraph, TaskNode};
pub use progress::{Progress, ProgressSink};
pub use report::{model_digest, CampaignReport, CellReport, CheckReport};
pub use runner::{run_campaign, CampaignError, RunnerConfig};
pub use spec::{
    CampaignSpec, CellSpec, CheckSpec, DiffSpec, Impairment, Protocol, SpecError, TaskKind,
};
