//! The machine-readable campaign report.
//!
//! A finished campaign serializes to one JSON document assembled in *spec
//! order* — cells, diffs and checks appear exactly as the spec listed
//! them, never in completion order — and every canonical field is derived
//! from query counts or model structure, never wall-clock or virtual
//! makespan (multi-worker engines interleave in-flight sessions by real
//! thread scheduling, so virtual elapsed time is timing telemetry, kept
//! out of the canonical rendering).  Re-running the same spec at any
//! engine size, task-worker count or schedule seed therefore yields a
//! byte-identical [`CampaignReport::canonical_json`]; the E21 experiment
//! and the schedule-independence proptest assert exactly that.

use prognosis_analysis::model_diff::ModelDiff;
use prognosis_analysis::properties::{PropertyCheck, SafetyProperty};
use prognosis_automata::mealy::MealyMachine;
use prognosis_learner::trie::TrieDivergence;
use serde_json::Value;

/// FNV-1a digest of a Mealy machine's transition structure.  The campaign
/// report carries this instead of the machine itself: two digests match
/// exactly when the machines are bit-identical (same state numbering,
/// transitions and outputs), which is the determinism contract the
/// campaign asserts across engine shapes.
pub fn model_digest(machine: &MealyMachine) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(machine.num_states() as u64).to_le_bytes());
    eat(&(machine.initial_state() as u64).to_le_bytes());
    for (from, input, output, to) in machine.transitions() {
        eat(&(from as u64).to_le_bytes());
        eat(input.as_str().as_bytes());
        eat(&[0]);
        eat(output.as_str().as_bytes());
        eat(&[0]);
        eat(&(to as u64).to_le_bytes());
    }
    hash
}

/// Per-cell results: model shape, query costs, cache accounting and
/// cross-version findings.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Cell id from the spec.
    pub id: String,
    /// Protocol label (`tcp` / `quic`).
    pub protocol: String,
    /// Implementation profile name (QUIC cells; empty for TCP).
    pub profile: String,
    /// Implementation version label.
    pub version: String,
    /// Impairment label, empty for in-process cells.
    pub impairment: String,
    /// States of the learned model.
    pub states: usize,
    /// Transitions of the learned model.
    pub transitions: usize,
    /// FNV-1a digest of the learned model (see [`model_digest`]).
    pub model_digest: u64,
    /// Total membership queries the learner asked.
    pub membership_queries: u64,
    /// Equivalence test words executed.
    pub equivalence_tests: u64,
    /// Fresh symbols the SUL actually consumed.
    pub fresh_symbols: u64,
    /// Distinct queries forwarded past the cache (prime + learn misses).
    pub distinct_queries: u64,
    /// Words replayed from the baseline cell's observations before
    /// learning started (0 without a baseline).
    pub primed_words: u64,
    /// Distinct queries answered during priming.
    pub prime_misses: u64,
    /// Distinct queries answered after priming — what the primed cache
    /// did not cover.
    pub learn_misses: u64,
    /// `1 − learn_misses / distinct_queries`: the fraction of this cell's
    /// fresh distinct queries already settled by the cross-version priming
    /// batch.  1.0 for a fully covered (or fully warm) cell.
    pub cache_hit_rate: f64,
    /// Virtual makespan of the learn, in simulated microseconds.  With
    /// more than one engine worker the interleaving of in-flight sessions
    /// (and with it the virtual event order) follows real thread
    /// scheduling, so this field is *excluded* from the canonical JSON —
    /// it is timing telemetry, not part of the determinism surface.
    pub virtual_elapsed_micros: u64,
    /// Whether the cell's observations entered the shared cache (false
    /// for uncacheable SULs — impaired links, probabilistic profiles).
    pub cacheable: bool,
    /// Shortest cached inputs on which this cell's answers diverge from
    /// its baseline's — the cross-version regression findings.
    pub divergences: Vec<TrieDivergence>,
}

/// One property-check result, tied back to its cell.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Cell id the property was checked against.
    pub cell: String,
    /// The outcome.
    pub check: PropertyCheck,
}

/// The complete campaign result, ordered as the spec was written.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// One entry per spec cell, in spec order.
    pub cells: Vec<CellReport>,
    /// One entry per spec diff, in spec order.
    pub diffs: Vec<ModelDiff>,
    /// One entry per spec check, in spec order.
    pub checks: Vec<CheckReport>,
}

fn property_label(property: &SafetyProperty) -> String {
    match property {
        SafetyProperty::NeverOutput { forbidden } => format!("never_output({forbidden})"),
        SafetyProperty::NeverAfter { trigger, forbidden } => {
            format!("never_after({trigger} => {forbidden})")
        }
    }
}

impl CampaignReport {
    /// Total distinguishing traces across all diff entries.
    pub fn diff_findings(&self) -> usize {
        self.diffs.iter().map(|d| d.diffs.len()).sum()
    }

    /// Total cross-version divergences across all cells.
    pub fn divergence_findings(&self) -> usize {
        self.cells.iter().map(|c| c.divergences.len()).sum()
    }

    /// Property checks that failed.
    pub fn violated_checks(&self) -> usize {
        self.checks.iter().filter(|c| !c.check.holds).count()
    }

    /// Largest per-cell virtual makespan — the campaign's critical-path
    /// lower bound in simulated time.
    pub fn max_virtual_elapsed_micros(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.virtual_elapsed_micros)
            .max()
            .unwrap_or(0)
    }

    /// The report as an ordered JSON value.  Spec order throughout, no
    /// wall-clock and no virtual makespan anywhere: this is the
    /// determinism surface.
    pub fn to_json(&self) -> Value {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("id".into(), Value::Str(c.id.clone())),
                    ("protocol".into(), Value::Str(c.protocol.clone())),
                    ("profile".into(), Value::Str(c.profile.clone())),
                    ("version".into(), Value::Str(c.version.clone())),
                    ("impairment".into(), Value::Str(c.impairment.clone())),
                    ("states".into(), Value::U64(c.states as u64)),
                    ("transitions".into(), Value::U64(c.transitions as u64)),
                    (
                        "model_digest".into(),
                        Value::Str(format!("{:016x}", c.model_digest)),
                    ),
                    (
                        "membership_queries".into(),
                        Value::U64(c.membership_queries),
                    ),
                    ("equivalence_tests".into(), Value::U64(c.equivalence_tests)),
                    ("fresh_symbols".into(), Value::U64(c.fresh_symbols)),
                    ("distinct_queries".into(), Value::U64(c.distinct_queries)),
                    ("primed_words".into(), Value::U64(c.primed_words)),
                    ("prime_misses".into(), Value::U64(c.prime_misses)),
                    ("learn_misses".into(), Value::U64(c.learn_misses)),
                    ("cache_hit_rate".into(), Value::F64(c.cache_hit_rate)),
                    ("cacheable".into(), Value::Bool(c.cacheable)),
                    (
                        "divergences".into(),
                        Value::Seq(
                            c.divergences
                                .iter()
                                .map(|d| {
                                    Value::Map(vec![
                                        ("input".into(), Value::Str(d.input.to_string())),
                                        ("left".into(), Value::Str(d.left_output.to_string())),
                                        ("right".into(), Value::Str(d.right_output.to_string())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let diffs = self
            .diffs
            .iter()
            .map(|d| {
                Value::Map(vec![
                    ("left".into(), Value::Str(d.left_label.clone())),
                    ("right".into(), Value::Str(d.right_label.clone())),
                    ("left_states".into(), Value::U64(d.left_states as u64)),
                    ("right_states".into(), Value::U64(d.right_states as u64)),
                    ("equivalent".into(), Value::Bool(d.equivalent)),
                    (
                        "distinguishing".into(),
                        Value::Seq(
                            d.diffs
                                .iter()
                                .map(|e| {
                                    Value::Map(vec![
                                        ("input".into(), Value::Str(e.input.to_string())),
                                        ("left_output".into(), Value::Str(e.left_output.join("·"))),
                                        (
                                            "right_output".into(),
                                            Value::Str(e.right_output.join("·")),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let checks = self
            .checks
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("cell".into(), Value::Str(c.cell.clone())),
                    (
                        "property".into(),
                        Value::Str(property_label(&c.check.property)),
                    ),
                    ("holds".into(), Value::Bool(c.check.holds)),
                    (
                        "witness".into(),
                        match &c.check.witness {
                            Some(w) => Value::Str(w.to_string()),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("campaign".into(), Value::Str(self.name.clone())),
            ("cells".into(), Value::Seq(cells)),
            ("diffs".into(), Value::Seq(diffs)),
            ("checks".into(), Value::Seq(checks)),
            (
                "totals".into(),
                Value::Map(vec![
                    ("cells".into(), Value::U64(self.cells.len() as u64)),
                    (
                        "diff_findings".into(),
                        Value::U64(self.diff_findings() as u64),
                    ),
                    (
                        "divergence_findings".into(),
                        Value::U64(self.divergence_findings() as u64),
                    ),
                    (
                        "violated_checks".into(),
                        Value::U64(self.violated_checks() as u64),
                    ),
                ]),
            ),
        ])
    }

    /// The canonical rendering: pretty JSON of [`CampaignReport::to_json`].
    /// Byte-identical across engine sizes, task-worker counts and schedule
    /// seeds for the same spec.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string_pretty(&ValueDoc(self.to_json())).expect("render campaign report")
    }
}

/// Wrapper making a pre-built JSON value serializable through the shim.
struct ValueDoc(Value);

impl serde::Serialize for ValueDoc {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosis_automata::known;

    #[test]
    fn model_digest_is_structure_sensitive_and_stable() {
        let a = known::counter(3);
        assert_eq!(model_digest(&a), model_digest(&known::counter(3)));
        assert_ne!(model_digest(&a), model_digest(&known::counter(4)));
        assert_ne!(model_digest(&a), model_digest(&known::toggle()));
    }

    #[test]
    fn an_empty_report_renders_spec_ordered_totals() {
        let report = CampaignReport {
            name: "t".into(),
            cells: Vec::new(),
            diffs: Vec::new(),
            checks: Vec::new(),
        };
        let json = report.canonical_json();
        assert!(json.contains("\"campaign\""));
        assert!(json.contains("\"totals\""));
        assert_eq!(report.diff_findings(), 0);
        assert_eq!(report.max_virtual_elapsed_micros(), 0);
    }
}
