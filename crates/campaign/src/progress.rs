//! Live one-line progress for campaigns and long-running experiments.
//!
//! [`Progress`] repaints a single status line in place (`\r`, no
//! scrollback spam) while a campaign or experiment binary grinds through
//! its cells.  Output is automatically suppressed when stdout is not a
//! TTY, so CI logs and redirected runs stay clean byte-for-byte.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A single repainted status line on stdout, TTY-gated.  Sharable across
/// the campaign's task-worker threads.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    /// Width of the last painted line, so a shorter repaint blanks the
    /// leftover tail.
    last_width: AtomicUsize,
}

impl Progress {
    /// Progress that paints only when stdout is an interactive terminal.
    pub fn stdout() -> Self {
        Progress {
            enabled: std::io::stdout().is_terminal(),
            last_width: AtomicUsize::new(0),
        }
    }

    /// Progress with an explicit on/off switch (tests, `--no-progress`).
    pub fn forced(enabled: bool) -> Self {
        Progress {
            enabled,
            last_width: AtomicUsize::new(0),
        }
    }

    /// Whether updates will paint anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Repaints the line in place.
    pub fn update(&self, line: &str) {
        if !self.enabled {
            return;
        }
        let pad = self
            .last_width
            .swap(line.len(), Ordering::Relaxed)
            .saturating_sub(line.len());
        print!("\r{line}{}", " ".repeat(pad));
        let _ = std::io::stdout().flush();
    }

    /// The campaign-shaped status line: task and engine occupancy.
    #[allow(clippy::too_many_arguments)]
    pub fn update_campaign(
        &self,
        completed: usize,
        total: usize,
        in_flight: usize,
        queued: usize,
        busy_slots: usize,
        total_slots: usize,
    ) {
        self.update(&format!(
            "campaign: {completed}/{total} done · {in_flight} running · {queued} queued · engine {busy_slots}/{total_slots} slots busy"
        ));
    }

    /// Clears the line (end of run) so the next println starts clean.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        print!(
            "\r{}\r",
            " ".repeat(self.last_width.swap(0, Ordering::Relaxed))
        );
        let _ = std::io::stdout().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_paints_nothing_and_never_panics() {
        let p = Progress::forced(false);
        assert!(!p.enabled());
        p.update("anything");
        p.update_campaign(1, 9, 2, 6, 4, 8);
        p.finish();
    }

    #[test]
    fn stdout_progress_is_suppressed_under_test_capture() {
        // `cargo test` captures stdout through a pipe, so this must come
        // back disabled — exactly the non-TTY suppression contract.
        assert!(!Progress::stdout().enabled());
    }
}
