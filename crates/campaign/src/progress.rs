//! Live one-line progress for campaigns and long-running experiments.
//!
//! [`Progress`] repaints a single status line in place (`\r`, no
//! scrollback spam) while a campaign or experiment binary grinds through
//! its cells.  Output is automatically suppressed when stdout is not a
//! TTY, so CI logs and redirected runs stay clean byte-for-byte.

use prognosis_events::{Event, EventSink};
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A single repainted status line on stdout, TTY-gated.  Sharable across
/// the campaign's task-worker threads.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    /// Width of the last painted line, so a shorter repaint blanks the
    /// leftover tail.
    last_width: AtomicUsize,
}

impl Progress {
    /// Progress that paints only when stdout is an interactive terminal.
    pub fn stdout() -> Self {
        Progress {
            enabled: std::io::stdout().is_terminal(),
            last_width: AtomicUsize::new(0),
        }
    }

    /// Progress with an explicit on/off switch (tests, `--no-progress`).
    pub fn forced(enabled: bool) -> Self {
        Progress {
            enabled,
            last_width: AtomicUsize::new(0),
        }
    }

    /// Whether updates will paint anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Repaints the line in place.
    pub fn update(&self, line: &str) {
        if !self.enabled {
            return;
        }
        let pad = self
            .last_width
            .swap(line.len(), Ordering::Relaxed)
            .saturating_sub(line.len());
        print!("\r{line}{}", " ".repeat(pad));
        let _ = std::io::stdout().flush();
    }

    /// The campaign-shaped status line: task and engine occupancy.
    #[allow(clippy::too_many_arguments)]
    pub fn update_campaign(
        &self,
        completed: usize,
        total: usize,
        in_flight: usize,
        queued: usize,
        busy_slots: usize,
        total_slots: usize,
    ) {
        self.update(&format!(
            "campaign: {completed}/{total} done · {in_flight} running · {queued} queued · engine {busy_slots}/{total_slots} slots busy"
        ));
    }

    /// Clears the line (end of run) so the next println starts clean.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        print!(
            "\r{}\r",
            " ".repeat(self.last_width.swap(0, Ordering::Relaxed))
        );
        let _ = std::io::stdout().flush();
    }
}

/// An [`EventSink`] that drives a [`Progress`] line from the event
/// stream itself — the campaign runner no longer paints directly; it
/// emits `task:start` / `task:done` / lease events and this consumer
/// turns them into the one-line status.  Bench binaries reuse it with
/// `total_tasks == 0`, where only [`Event::BenchStage`] labels paint.
#[derive(Debug)]
pub struct ProgressSink {
    progress: Progress,
    total_tasks: usize,
    total_slots: usize,
    completed: AtomicUsize,
    in_flight: AtomicUsize,
    busy_slots: AtomicUsize,
}

impl ProgressSink {
    /// A sink painting campaign occupancy over `total_tasks` DAG tasks
    /// and `total_slots` engine slots.
    pub fn new(progress: Progress, total_tasks: usize, total_slots: usize) -> Self {
        ProgressSink {
            progress,
            total_tasks,
            total_slots,
            completed: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            busy_slots: AtomicUsize::new(0),
        }
    }

    /// A sink for experiment binaries: paints only `bench:stage` labels.
    pub fn stages(progress: Progress) -> Self {
        ProgressSink::new(progress, 0, 0)
    }

    /// Whether the underlying line will paint anything.
    pub fn enabled(&self) -> bool {
        self.progress.enabled()
    }

    /// Clears the status line so the next println starts clean.
    pub fn finish(&self) {
        self.progress.finish();
    }

    fn paint_campaign(&self) {
        let completed = self.completed.load(Ordering::Relaxed);
        let in_flight = self.in_flight.load(Ordering::Relaxed);
        self.progress.update_campaign(
            completed,
            self.total_tasks,
            in_flight,
            self.total_tasks.saturating_sub(completed + in_flight),
            self.busy_slots.load(Ordering::Relaxed),
            self.total_slots,
        );
    }
}

impl EventSink for ProgressSink {
    fn emit(&self, event: &Event) {
        match event {
            Event::TaskStart { .. } => {
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                self.paint_campaign();
            }
            Event::TaskDone { .. } => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.paint_campaign();
            }
            Event::LeaseAcquire { free, .. } | Event::LeaseRelease { free } => {
                self.busy_slots.store(
                    self.total_slots.saturating_sub(*free as usize),
                    Ordering::Relaxed,
                );
                self.paint_campaign();
            }
            Event::BenchStage { label } => self.progress.update(label),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_paints_nothing_and_never_panics() {
        let p = Progress::forced(false);
        assert!(!p.enabled());
        p.update("anything");
        p.update_campaign(1, 9, 2, 6, 4, 8);
        p.finish();
    }

    #[test]
    fn progress_sink_tracks_occupancy_without_painting() {
        let sink = ProgressSink::new(Progress::forced(false), 4, 2);
        assert!(!sink.enabled());
        sink.emit(&Event::TaskStart {
            id: "learn:a".to_string(),
        });
        sink.emit(&Event::LeaseAcquire { slots: 2, free: 0 });
        assert_eq!(sink.in_flight.load(Ordering::Relaxed), 1);
        assert_eq!(sink.busy_slots.load(Ordering::Relaxed), 2);
        sink.emit(&Event::TaskDone {
            id: "learn:a".to_string(),
            ok: true,
        });
        sink.emit(&Event::LeaseRelease { free: 2 });
        sink.emit(&Event::BenchStage {
            label: "stage".to_string(),
        });
        assert_eq!(sink.completed.load(Ordering::Relaxed), 1);
        assert_eq!(sink.in_flight.load(Ordering::Relaxed), 0);
        assert_eq!(sink.busy_slots.load(Ordering::Relaxed), 0);
        sink.finish();
    }

    #[test]
    fn stdout_progress_is_suppressed_under_test_capture() {
        // `cargo test` captures stdout through a pipe, so this must come
        // back disabled — exactly the non-TTY suppression contract.
        assert!(!Progress::stdout().enabled());
    }
}
