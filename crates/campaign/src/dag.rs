//! The campaign's dependency layer: a generic task DAG with validation.
//!
//! A campaign is a set of named tasks (learn this cell, diff those two
//! models, check that property) connected by `needs` edges.  [`TaskGraph`]
//! stores the tasks, [`TaskGraph::validate`] rejects malformed specs
//! (duplicate ids, dangling or self dependencies, cycles) *before* any
//! engine time is spent, and the runner consumes the validated graph as a
//! ready-set scheduler: a task becomes runnable the moment its last
//! dependency completes — there is no global barrier between stages.

use std::collections::HashMap;
use std::fmt;

/// One node of the campaign DAG.
#[derive(Clone, Debug)]
pub struct TaskNode<T> {
    /// Unique task id (e.g. `learn:quiche-v2`).
    pub id: String,
    /// Ids of the tasks that must complete before this one may start.
    pub needs: Vec<String>,
    /// What the task actually does — opaque to the graph layer.
    pub payload: T,
}

/// Why a task graph failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Two tasks share an id.
    DuplicateId(String),
    /// A task depends on an id that names no task.
    MissingDependency {
        /// The depending task.
        task: String,
        /// The id it needs but which does not exist.
        needs: String,
    },
    /// A task depends on itself.
    SelfDependency(String),
    /// The `needs` edges contain a cycle; the listed tasks form it (or sit
    /// on it).
    Cycle(Vec<String>),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateId(id) => write!(f, "duplicate task id {id:?}"),
            GraphError::MissingDependency { task, needs } => {
                write!(f, "task {task:?} needs {needs:?}, which does not exist")
            }
            GraphError::SelfDependency(id) => write!(f, "task {id:?} depends on itself"),
            GraphError::Cycle(ids) => write!(f, "dependency cycle through {ids:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dependency DAG of campaign tasks.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph<T> {
    nodes: Vec<TaskNode<T>>,
}

impl<T> TaskGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new() }
    }

    /// Appends a task.  Ids and edges are checked by
    /// [`TaskGraph::validate`], not at insertion, so specs can be built in
    /// any order.
    pub fn add(
        &mut self,
        id: impl Into<String>,
        needs: impl IntoIterator<Item = String>,
        payload: T,
    ) {
        self.nodes.push(TaskNode {
            id: id.into(),
            needs: needs.into_iter().collect(),
            payload,
        });
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tasks, in insertion order.
    pub fn nodes(&self) -> &[TaskNode<T>] {
        &self.nodes
    }

    /// Index of the task with this id, if present.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// Checks the graph is well-formed: ids unique, every dependency names
    /// an existing task, no task depends on itself, and the edges are
    /// acyclic.  Returns the dependency edges as index pairs
    /// `(task, needed)` for the scheduler.
    pub fn validate(&self) -> Result<Vec<(usize, usize)>, GraphError> {
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if index.insert(node.id.as_str(), i).is_some() {
                return Err(GraphError::DuplicateId(node.id.clone()));
            }
        }
        let mut edges = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for need in &node.needs {
                if need == &node.id {
                    return Err(GraphError::SelfDependency(node.id.clone()));
                }
                match index.get(need.as_str()) {
                    Some(&j) => edges.push((i, j)),
                    None => {
                        return Err(GraphError::MissingDependency {
                            task: node.id.clone(),
                            needs: need.clone(),
                        })
                    }
                }
            }
        }
        // Kahn's algorithm: whatever survives peeling sits on a cycle.
        let mut in_degree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(task, needed) in &edges {
            in_degree[task] += 1;
            dependents[needed].push(task);
        }
        let mut queue: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| in_degree[i] == 0)
            .collect();
        let mut peeled = 0usize;
        while let Some(i) = queue.pop() {
            peeled += 1;
            for &dep in &dependents[i] {
                in_degree[dep] -= 1;
                if in_degree[dep] == 0 {
                    queue.push(dep);
                }
            }
        }
        if peeled != self.nodes.len() {
            let cycle: Vec<String> = (0..self.nodes.len())
                .filter(|&i| in_degree[i] > 0)
                .map(|i| self.nodes[i].id.clone())
                .collect();
            return Err(GraphError::Cycle(cycle));
        }
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(specs: &[(&str, &[&str])]) -> TaskGraph<()> {
        let mut g = TaskGraph::new();
        for (id, needs) in specs {
            g.add(*id, needs.iter().map(|s| s.to_string()), ());
        }
        g
    }

    #[test]
    fn a_well_formed_dag_validates_and_reports_its_edges() {
        let g = graph(&[
            ("learn:a", &[]),
            ("learn:b", &["learn:a"]),
            ("diff:ab", &["learn:a", "learn:b"]),
        ]);
        let edges = g.validate().unwrap();
        assert_eq!(edges, vec![(1, 0), (2, 0), (2, 1)]);
        assert_eq!(g.index_of("diff:ab"), Some(2));
        assert_eq!(g.index_of("nope"), None);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let g = graph(&[("a", &[]), ("a", &[])]);
        assert_eq!(g.validate(), Err(GraphError::DuplicateId("a".into())));
    }

    #[test]
    fn missing_dependencies_are_rejected() {
        let g = graph(&[("a", &["ghost"])]);
        assert_eq!(
            g.validate(),
            Err(GraphError::MissingDependency {
                task: "a".into(),
                needs: "ghost".into(),
            })
        );
    }

    #[test]
    fn self_dependencies_are_rejected() {
        let g = graph(&[("a", &["a"])]);
        assert_eq!(g.validate(), Err(GraphError::SelfDependency("a".into())));
    }

    #[test]
    fn cycles_are_rejected_with_their_members() {
        let g = graph(&[("a", &["c"]), ("b", &["a"]), ("c", &["b"]), ("d", &[])]);
        match g.validate() {
            Err(GraphError::Cycle(mut ids)) => {
                ids.sort();
                assert_eq!(ids, vec!["a", "b", "c"], "d is off-cycle");
            }
            other => panic!("expected a cycle error, got {other:?}"),
        }
    }

    #[test]
    fn empty_graphs_are_trivially_valid() {
        assert!(graph(&[]).validate().unwrap().is_empty());
    }
}
