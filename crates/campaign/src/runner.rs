//! The campaign executor: one shared engine pool, one shared versioned
//! observation cache, and a pool of task workers draining the DAG's ready
//! set.
//!
//! Learn tasks lease session-worker slots from the shared
//! [`EnginePool`] (several cells learn concurrently on one set of engine
//! threads); diff and property-check tasks fan out the moment their
//! upstream learns complete — there is no global barrier between "all
//! learns" and "all diffs".  Determinism: every task's *inputs* are fixed
//! by the spec (a cell's warm observations come from a snapshot of the
//! shared store taken at campaign start plus its declared baseline's
//! finished trie — never from whichever unrelated cell happened to finish
//! first), every task's *outputs* are schedule-independent (the learning
//! pipeline's worker-count invariance), and the report is assembled in
//! spec order.  Re-running the same spec at any engine size, task-worker
//! count or schedule seed yields byte-identical models, diffs and stats.

use crate::progress::{Progress, ProgressSink};
use crate::report::{model_digest, CampaignReport, CellReport, CheckReport};
use crate::spec::{CampaignSpec, CellSpec, Protocol, SpecError, TaskKind};
use prognosis_analysis::model_diff::{diff_models, ModelDiff};
use prognosis_analysis::properties::check_property;
use prognosis_automata::mealy::MealyMachine;
use prognosis_automata::word::InputWord;
use prognosis_core::engine::EnginePool;
use prognosis_core::net_transport::{LinkConfig, NetworkedSessionFactory};
use prognosis_core::pipeline::{
    learn_model_parallel_seeded_with_events, LearnConfig, LearnError, SeededLearnOutcome,
};
use prognosis_core::quic_adapter::{QuicSul, QuicSulFactory};
use prognosis_core::session::{SessionSulFactory, SimDuration};
use prognosis_core::sul::Sul;
use prognosis_core::tcp_adapter::{TcpSul, TcpSulFactory};
use prognosis_events::{Event, EventSink, Tee};
use prognosis_learner::cache::StoreKey;
use prognosis_learner::journal::{JournalStore, RetainPolicy};
use prognosis_learner::trie::PrefixTrie;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

/// How the campaign executes (orthogonal to *what* it computes: none of
/// these knobs may change the report).
#[derive(Clone)]
pub struct RunnerConfig {
    /// Threads in the shared engine pool.  Clamped up to the per-cell
    /// `learn.workers` so a single learn task can always assemble a lease.
    pub engine_threads: usize,
    /// Concurrent campaign tasks (each learn task additionally leases
    /// `learn.workers` engine slots while it runs).
    pub task_workers: usize,
    /// Seed permuting which ready task a free worker picks next — the
    /// schedule-independence proptest varies this to shake out ordering
    /// dependencies.
    pub schedule_seed: u64,
    /// Whether to drive the live progress line (still suppressed when
    /// stdout is not a TTY).
    pub progress: bool,
    /// Structured event sink for the whole campaign: task lifecycle and
    /// engine-lease diagnostics plus every learn task's full event
    /// stream (sessions, phases, wire fates, speculation).  Concurrent
    /// cells share the sink; their deterministic events stay separable
    /// because each learn wraps it in its own scope staging.
    pub events: Option<Arc<dyn EventSink>>,
}

impl fmt::Debug for RunnerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunnerConfig")
            .field("engine_threads", &self.engine_threads)
            .field("task_workers", &self.task_workers)
            .field("schedule_seed", &self.schedule_seed)
            .field("progress", &self.progress)
            .field("events", &self.events.is_some())
            .finish()
    }
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            engine_threads: 4,
            task_workers: 2,
            schedule_seed: 0,
            progress: true,
            events: None,
        }
    }
}

/// Why a campaign run failed.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// The spec did not validate.
    Spec(SpecError),
    /// A learn task failed.
    Learn {
        /// The failing task id (`learn:<cell>`).
        task: String,
        /// The underlying engine error.
        error: LearnError,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "invalid campaign spec: {e}"),
            CampaignError::Learn { task, error } => write!(f, "task {task} failed: {error}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

/// sebastiano vigna's splitmix64 — the schedule permutation source.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A finished cell: its report row plus the artifacts downstream tasks
/// read (the model for diffs/checks, the trie for cross-version priming).
struct CellDone {
    report: CellReport,
    model: MealyMachine,
    trie: PrefixTrie,
}

/// The monomorphization boundary: everything the runner needs out of a
/// [`SeededLearnOutcome`], with the session-SUL type erased.
struct LearnBits {
    model: MealyMachine,
    membership_queries: u64,
    equivalence_tests: u64,
    fresh_symbols: u64,
    distinct_queries: u64,
    virtual_elapsed_micros: u64,
    trie: PrefixTrie,
    primed_words: u64,
    prime_misses: u64,
    learn_misses: u64,
}

fn extract_bits<S>(outcome: SeededLearnOutcome<S>) -> LearnBits {
    let learned = &outcome.outcome.learned;
    LearnBits {
        model: learned.model.clone(),
        membership_queries: learned.stats.membership_queries,
        equivalence_tests: learned.stats.equivalence_tests,
        fresh_symbols: learned.stats.fresh_symbols,
        distinct_queries: learned.distinct_queries as u64,
        virtual_elapsed_micros: outcome.outcome.engine.virtual_elapsed_micros,
        trie: outcome.trie,
        primed_words: outcome.primed_words,
        prime_misses: outcome.prime_misses,
        learn_misses: outcome.learn_misses,
    }
}

/// The cell's shared-cache identity: the SUL's own cache key, or `None`
/// for uncacheable cells (impaired links, probabilistic profiles) which
/// learn cold and stay out of the store.
fn cell_cache_key(cell: &CellSpec) -> Option<String> {
    if cell.impairment.is_some() {
        return None;
    }
    match cell.protocol {
        Protocol::Tcp => TcpSul::with_defaults().cache_key(),
        Protocol::Quic => {
            let profile = cell
                .profile
                .clone()
                .expect("validated: QUIC cell has profile");
            let mut sul = QuicSul::new(profile, cell.seed);
            if cell.buggy_retry_client {
                sul = sul.with_buggy_retry_client();
            }
            sul.cache_key()
        }
    }
}

fn link_config(imp: &crate::spec::Impairment) -> LinkConfig {
    LinkConfig::with_latency(SimDuration::from_micros(imp.latency_us))
        .jitter(SimDuration::from_micros(imp.jitter_us))
        .loss(imp.loss)
}

/// Dispatches one cell's learn to the right monomorphized pipeline call.
fn learn_cell(
    pool: &EnginePool,
    learn: &LearnConfig,
    cell: &CellSpec,
    warm: PrefixTrie,
    prime: &[InputWord],
    events: Option<Arc<dyn EventSink>>,
) -> Result<LearnBits, LearnError> {
    let alphabet = cell.effective_alphabet();
    fn go<F>(
        pool: &EnginePool,
        factory: &F,
        alphabet: &prognosis_automata::alphabet::Alphabet,
        learn: &LearnConfig,
        warm: PrefixTrie,
        prime: &[InputWord],
        events: Option<Arc<dyn EventSink>>,
    ) -> Result<LearnBits, LearnError>
    where
        F: SessionSulFactory,
        F::Session: Send + 'static,
    {
        learn_model_parallel_seeded_with_events(pool, factory, alphabet, learn, warm, prime, events)
            .map(extract_bits)
    }
    match (cell.protocol, &cell.impairment) {
        (Protocol::Tcp, None) => go(
            pool,
            &TcpSulFactory::default(),
            &alphabet,
            learn,
            warm,
            prime,
            events,
        ),
        (Protocol::Tcp, Some(imp)) => {
            let factory = NetworkedSessionFactory::new(TcpSulFactory::default(), link_config(imp))
                .with_noise_seed(imp.noise_seed);
            go(pool, &factory, &alphabet, learn, warm, prime, events)
        }
        (Protocol::Quic, impairment) => {
            let profile = cell
                .profile
                .clone()
                .expect("validated: QUIC cell has profile");
            let mut factory = QuicSulFactory::new(profile, cell.seed);
            if cell.buggy_retry_client {
                factory = factory.with_buggy_retry_client();
            }
            match impairment {
                None => go(pool, &factory, &alphabet, learn, warm, prime, events),
                Some(imp) => {
                    let factory = NetworkedSessionFactory::new(factory, link_config(imp))
                        .with_noise_seed(imp.noise_seed);
                    go(pool, &factory, &alphabet, learn, warm, prime, events)
                }
            }
        }
    }
}

/// The baseline's terminal query words, in a deterministic replay order
/// (shortest first, then lexicographic).
fn prime_words(baseline_trie: &PrefixTrie) -> Vec<InputWord> {
    let mut words: Vec<InputWord> = baseline_trie
        .paths()
        .into_iter()
        .filter_map(|(input, _, terminal)| terminal.then_some(input))
        .collect();
    words.sort_by_key(|w| (w.len(), w.to_string()));
    words
}

/// Scheduler state shared by the task workers.
struct Sched {
    ready: Vec<usize>,
    remaining_deps: Vec<usize>,
    in_flight: usize,
    completed: usize,
    failed: Option<CampaignError>,
    picks: u64,
}

/// Runs a validated campaign spec to completion over one shared engine
/// pool and one shared versioned observation cache, returning the
/// spec-ordered report.
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &RunnerConfig,
) -> Result<CampaignReport, CampaignError> {
    spec.validate()?;
    let graph = spec.build_graph();
    let edges = graph.validate().expect("spec validation covered the graph");
    let total = graph.len();

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut remaining_deps = vec![0usize; total];
    for &(task, needed) in &edges {
        remaining_deps[task] += 1;
        dependents[needed].push(task);
    }
    let ready: Vec<usize> = (0..total).filter(|&i| remaining_deps[i] == 0).collect();

    // Every learn task leases `learn.workers` slots at once; the pool must
    // be at least that deep or the first lease would wait forever.
    let pool = EnginePool::new(runner.engine_threads.max(spec.learn.workers.max(1)));

    // Observability spine: the caller's sink (if any) and the live
    // progress line both consume one event stream.  The progress line is
    // itself just another sink — the runner no longer paints directly.
    let progress = Arc::new(ProgressSink::new(
        Progress::forced(runner.progress && Progress::stdout().enabled()),
        total,
        pool.total_slots(),
    ));
    let events: Option<Arc<dyn EventSink>> = {
        let mut sinks: Vec<Arc<dyn EventSink>> = Vec::new();
        if let Some(sink) = &runner.events {
            sinks.push(Arc::clone(sink));
        }
        if progress.enabled() {
            sinks.push(Arc::clone(&progress) as Arc<dyn EventSink>);
        }
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => Some(Arc::new(Tee::new(sinks))),
        }
    };
    if let Some(sink) = &events {
        pool.set_event_sink(Arc::clone(sink));
    }

    // The shared journaled store and its warm-start snapshot: cells read
    // the *snapshot* taken here, never the live store, so what a cell
    // learns cannot depend on which unrelated cell finished first.
    // Cross-cell reuse within a run flows only along declared baseline
    // edges.  Finished cells append their observation deltas through the
    // shared handle.
    let store = spec.cache_path.as_ref().map(JournalStore::open_or_empty);
    let initial_entries: BTreeMap<StoreKey, Arc<PrefixTrie>> = store
        .as_ref()
        .map(|s| s.snapshot_entries())
        .unwrap_or_default();

    let state = Mutex::new(Sched {
        ready,
        remaining_deps,
        in_flight: 0,
        completed: 0,
        failed: None,
        picks: 0,
    });
    let ready_cv = Condvar::new();
    let cells_done: Mutex<HashMap<usize, CellDone>> = Mutex::new(HashMap::new());
    let diffs_done: Mutex<Vec<Option<ModelDiff>>> = Mutex::new(vec![None; spec.diffs.len()]);
    let checks_done: Mutex<Vec<Option<CheckReport>>> = Mutex::new(vec![None; spec.checks.len()]);
    let final_report: Mutex<Option<CampaignReport>> = Mutex::new(None);

    let execute = |task: usize| -> Result<(), CampaignError> {
        match graph.nodes()[task].payload {
            TaskKind::Learn(i) => {
                let cell = &spec.cells[i];
                let key = cell_cache_key(cell);
                let alphabet = cell.effective_alphabet();
                // One fully resolved store key per cell: the alphabet is
                // hashed here, once, and threaded through both the warm
                // lookup and the save below.
                let store_key = key
                    .as_deref()
                    .map(|k| StoreKey::new(k, &cell.version, &alphabet));
                let warm = store_key
                    .as_ref()
                    .and_then(|k| initial_entries.get(k))
                    .map(|trie| (**trie).clone())
                    .unwrap_or_default();
                let (prime, baseline_trie) = match &cell.baseline {
                    Some(baseline) => {
                        let b = spec
                            .cells
                            .iter()
                            .position(|c| &c.id == baseline)
                            .expect("validated: baseline exists");
                        let done = cells_done.lock().expect("cell results poisoned");
                        let trie = done
                            .get(&b)
                            .expect("DAG: baseline learn completed first")
                            .trie
                            .clone();
                        (prime_words(&trie), Some(trie))
                    }
                    None => (Vec::new(), None),
                };
                let bits = learn_cell(&pool, &spec.learn, cell, warm, &prime, events.clone())
                    .map_err(|error| CampaignError::Learn {
                        task: graph.nodes()[task].id.clone(),
                        error,
                    })?;
                // Divergent cached answers between the baseline's trie and
                // this cell's own answers are the cross-version regression
                // findings (left = baseline, right = this cell).
                let divergences = match &baseline_trie {
                    Some(b) => b.divergences(&bits.trie, 0),
                    None => Vec::new(),
                };
                if let (Some(store), Some(k)) = (&store, &store_key) {
                    if let Err(e) = store.save_merged(k, &bits.trie, RetainPolicy::All) {
                        eprintln!(
                            "warning: failed to persist shared cache to {}: {e}",
                            store.path().display()
                        );
                    }
                }
                let report = CellReport {
                    id: cell.id.clone(),
                    protocol: cell.protocol.to_string(),
                    profile: cell
                        .profile
                        .as_ref()
                        .map(|p| p.name.clone())
                        .unwrap_or_default(),
                    version: cell.version.clone(),
                    impairment: cell
                        .impairment
                        .as_ref()
                        .map(|i| i.label())
                        .unwrap_or_default(),
                    states: bits.model.num_states(),
                    transitions: bits.model.num_transitions(),
                    model_digest: model_digest(&bits.model),
                    membership_queries: bits.membership_queries,
                    equivalence_tests: bits.equivalence_tests,
                    fresh_symbols: bits.fresh_symbols,
                    distinct_queries: bits.distinct_queries,
                    primed_words: bits.primed_words,
                    prime_misses: bits.prime_misses,
                    learn_misses: bits.learn_misses,
                    cache_hit_rate: if bits.distinct_queries == 0 {
                        1.0
                    } else {
                        1.0 - bits.learn_misses as f64 / bits.distinct_queries as f64
                    },
                    virtual_elapsed_micros: bits.virtual_elapsed_micros,
                    cacheable: key.is_some(),
                    divergences,
                };
                cells_done.lock().expect("cell results poisoned").insert(
                    i,
                    CellDone {
                        report,
                        model: bits.model,
                        trie: bits.trie,
                    },
                );
                Ok(())
            }
            TaskKind::Diff(i) => {
                let diff = &spec.diffs[i];
                let (l, r) = (
                    spec.cells.iter().position(|c| c.id == diff.left).unwrap(),
                    spec.cells.iter().position(|c| c.id == diff.right).unwrap(),
                );
                let (left_model, right_model) = {
                    let done = cells_done.lock().expect("cell results poisoned");
                    (
                        done.get(&l).expect("DAG: left learn done").model.clone(),
                        done.get(&r).expect("DAG: right learn done").model.clone(),
                    )
                };
                let result = diff_models(
                    diff.left.clone(),
                    &left_model,
                    diff.right.clone(),
                    &right_model,
                    spec.max_diffs,
                );
                diffs_done.lock().expect("diff results poisoned")[i] = Some(result);
                Ok(())
            }
            TaskKind::Check(i) => {
                let check = &spec.checks[i];
                let c = spec.cells.iter().position(|x| x.id == check.cell).unwrap();
                let model = {
                    let done = cells_done.lock().expect("cell results poisoned");
                    done.get(&c).expect("DAG: learn done").model.clone()
                };
                let result = check_property(&model, &check.property);
                checks_done.lock().expect("check results poisoned")[i] = Some(CheckReport {
                    cell: check.cell.clone(),
                    check: result,
                });
                Ok(())
            }
            TaskKind::Report => {
                let cells = {
                    let done = cells_done.lock().expect("cell results poisoned");
                    (0..spec.cells.len())
                        .map(|i| done.get(&i).expect("DAG: all learns done").report.clone())
                        .collect()
                };
                let diffs = diffs_done
                    .lock()
                    .expect("diff results poisoned")
                    .iter()
                    .map(|d| d.clone().expect("DAG: all diffs done"))
                    .collect();
                let checks = checks_done
                    .lock()
                    .expect("check results poisoned")
                    .iter()
                    .map(|c| c.clone().expect("DAG: all checks done"))
                    .collect();
                *final_report.lock().expect("report poisoned") = Some(CampaignReport {
                    name: spec.name.clone(),
                    cells,
                    diffs,
                    checks,
                });
                Ok(())
            }
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..runner.task_workers.max(1).min(total) {
            scope.spawn(|| loop {
                let task = {
                    let mut s = state.lock().expect("scheduler poisoned");
                    loop {
                        if s.failed.is_some() || s.completed == total {
                            return;
                        }
                        if !s.ready.is_empty() {
                            let idx = (splitmix64(runner.schedule_seed ^ s.picks) as usize)
                                % s.ready.len();
                            s.picks += 1;
                            let task = s.ready.remove(idx);
                            s.in_flight += 1;
                            break task;
                        }
                        s = ready_cv.wait(s).expect("scheduler poisoned");
                    }
                };
                if let Some(sink) = &events {
                    sink.emit(&Event::TaskStart {
                        id: graph.nodes()[task].id.clone(),
                    });
                }
                let result = execute(task);
                if let Some(sink) = &events {
                    sink.emit(&Event::TaskDone {
                        id: graph.nodes()[task].id.clone(),
                        ok: result.is_ok(),
                    });
                }
                let mut s = state.lock().expect("scheduler poisoned");
                s.in_flight -= 1;
                match result {
                    Ok(()) => {
                        s.completed += 1;
                        for &dep in &dependents[task] {
                            s.remaining_deps[dep] -= 1;
                            if s.remaining_deps[dep] == 0 {
                                s.ready.push(dep);
                            }
                        }
                    }
                    Err(e) => s.failed = Some(e),
                }
                drop(s);
                ready_cv.notify_all();
            });
        }
    });
    if let Some(sink) = &events {
        sink.flush();
    }
    progress.finish();

    let mut s = state.into_inner().expect("scheduler poisoned");
    if let Some(error) = s.failed.take() {
        return Err(error);
    }
    Ok(final_report
        .into_inner()
        .expect("report poisoned")
        .expect("the report task runs last and always"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellSpec, Impairment};
    use prognosis_analysis::properties::SafetyProperty;

    /// A 3-symbol TCP alphabet keeps unit-test campaigns fast.
    fn small_tcp_cell(id: &str, version: &str) -> CellSpec {
        CellSpec::tcp(id, version).with_alphabet(["SYN(?,?,0)", "ACK(?,?,0)", "FIN+ACK(?,?,0)"])
    }

    fn small_learn() -> LearnConfig {
        LearnConfig {
            random_tests: 150,
            min_word_len: 2,
            max_word_len: 6,
            eq_batch_size: 64,
            ..LearnConfig::default()
        }
    }

    #[test]
    fn a_small_campaign_runs_and_reports_in_spec_order() {
        let spec = CampaignSpec::new("unit")
            .cell(small_tcp_cell("a", "v1"))
            .cell(small_tcp_cell("b", "v1").with_baseline("a"))
            .cell(
                small_tcp_cell("c", "v1").with_impairment(Impairment::latency(100).with_loss(0.02)),
            )
            .diff("a", "b")
            .check("a", SafetyProperty::never_output("NEVER-EMITTED"))
            .with_learn(small_learn());
        let report = run_campaign(
            &spec,
            &RunnerConfig {
                engine_threads: 2,
                task_workers: 2,
                schedule_seed: 1,
                progress: false,
                events: None,
            },
        )
        .expect("campaign succeeds");
        assert_eq!(
            report
                .cells
                .iter()
                .map(|c| c.id.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"],
            "spec order, not completion order"
        );
        // Same SUL behind both versions: b is fully primed by a and
        // diverges nowhere.
        let b = &report.cells[1];
        assert!(b.primed_words > 0);
        assert_eq!(b.learn_misses, 0, "a's observations cover b entirely");
        assert!(b.divergences.is_empty());
        assert!((b.cache_hit_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.diffs.len(), 1);
        assert!(report.diffs[0].equivalent, "same SUL ⇒ equivalent models");
        assert!(report.checks[0].check.holds);
        // The impaired cell is uncacheable but still learned.
        let c = &report.cells[2];
        assert!(!c.cacheable);
        assert!(c.states >= 2);
        // Canonical JSON renders.
        assert!(report.canonical_json().contains("\"campaign\""));
    }

    #[test]
    fn learn_failures_surface_as_campaign_errors() {
        // An impaired QUIC mvfst cell is fine, but an invalid spec fails
        // fast: here, a diff across protocols.
        let spec = CampaignSpec::new("bad")
            .cell(small_tcp_cell("a", "v1"))
            .diff("a", "ghost");
        match run_campaign(&spec, &RunnerConfig::default()) {
            Err(CampaignError::Spec(_)) => {}
            other => panic!("expected a spec error, got {other:?}"),
        }
    }
}
