//! Property-based tests for the QUIC wire codec: varints, frames and packets
//! survive encode/decode round trips for arbitrary field values, and packet
//! protection fails cleanly under corruption.

use bytes::{Bytes, BytesMut};
use prognosis_quic_wire::connection_id::ConnectionId;
use prognosis_quic_wire::crypto::{EncryptionLevel, Keys};
use prognosis_quic_wire::frame::Frame;
use prognosis_quic_wire::packet::{Packet, PacketHeader, PacketType};
use prognosis_quic_wire::varint::{read_varint, write_varint, MAX_VARINT};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    let v = 0u64..(1 << 30);
    prop_oneof![
        Just(Frame::Ping),
        (v.clone(), v.clone(), v.clone()).prop_map(|(a, b, c)| Frame::Ack {
            largest_acknowledged: a,
            ack_delay: b,
            first_ack_range: c
        }),
        (v.clone(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(offset, data)| {
            Frame::Crypto {
                offset,
                data: Bytes::from(data),
            }
        }),
        (
            v.clone(),
            v.clone(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(stream_id, offset, fin, data)| Frame::Stream {
                stream_id,
                offset,
                fin,
                data: Bytes::from(data)
            }),
        v.clone().prop_map(|maximum| Frame::MaxData { maximum }),
        (v.clone(), v.clone())
            .prop_map(|(stream_id, maximum)| Frame::MaxStreamData { stream_id, maximum }),
        (v.clone(), v.clone()).prop_map(|(stream_id, maximum_stream_data)| {
            Frame::StreamDataBlocked {
                stream_id,
                maximum_stream_data,
            }
        }),
        (v.clone(), ".{0,32}", any::<bool>()).prop_map(|(error_code, reason, application)| {
            Frame::ConnectionClose {
                error_code,
                frame_type: 0,
                reason,
                application,
            }
        }),
        Just(Frame::HandshakeDone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varints_round_trip(value in 0u64..=MAX_VARINT) {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, value).unwrap();
        prop_assert!(buf.len() <= 8);
        let mut bytes = buf.freeze();
        prop_assert_eq!(read_varint(&mut bytes).unwrap(), value);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn frame_sequences_round_trip(frames in prop::collection::vec(arb_frame(), 0..8)) {
        let encoded = Frame::encode_all(&frames);
        let decoded = Frame::decode_all(encoded).unwrap();
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn packets_round_trip_with_matching_keys(
        frames in prop::collection::vec(arb_frame(), 1..6),
        pn in 0u64..u32::MAX as u64,
        cid_seed in any::<u64>(),
        short in any::<bool>(),
    ) {
        let dcid = ConnectionId::from_seed(cid_seed);
        let (header, level) = if short {
            (PacketHeader::short(dcid.clone(), pn), EncryptionLevel::OneRtt)
        } else {
            (
                PacketHeader::long(PacketType::Handshake, dcid.clone(), ConnectionId::from_seed(cid_seed ^ 1), pn),
                EncryptionLevel::Handshake,
            )
        };
        let keys = Keys::derive(dcid.key_material(), level);
        let packet = Packet::new(header, frames);
        let wire = packet.encode(&keys);
        let decoded = Packet::decode(&wire, &keys).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn corrupted_packets_never_decode_to_a_different_packet(
        frames in prop::collection::vec(arb_frame(), 1..4),
        pn in 0u64..1_000_000,
        flip_at in any::<prop::sample::Index>(),
    ) {
        let dcid = ConnectionId::from_seed(7);
        let keys = Keys::derive(dcid.key_material(), EncryptionLevel::OneRtt);
        let packet = Packet::new(PacketHeader::short(dcid, pn), frames);
        let wire = packet.encode(&keys);
        let mut corrupted = wire.to_vec();
        let idx = flip_at.index(corrupted.len());
        corrupted[idx] ^= 0xFF;
        match Packet::decode(&Bytes::from(corrupted), &keys) {
            // Either the corruption is detected...
            Err(_) => {}
            // ...or it only hit header bytes that do not affect the frames
            // (e.g. the packet number is part of the keystream, so any
            // successful decode must reproduce the original frames).
            Ok(decoded) => prop_assert_eq!(decoded.frames, packet.frames),
        }
    }

    #[test]
    fn abstract_names_are_stable_under_reencoding(
        frames in prop::collection::vec(arb_frame(), 1..6),
        pn in 0u64..10_000,
    ) {
        let dcid = ConnectionId::from_seed(3);
        let keys = Keys::derive(dcid.key_material(), EncryptionLevel::OneRtt);
        let packet = Packet::new(PacketHeader::short(dcid, pn), frames);
        let decoded = Packet::decode(&packet.encode(&keys), &keys).unwrap();
        prop_assert_eq!(decoded.abstract_name(), packet.abstract_name());
        prop_assert!(packet.abstract_name().starts_with("SHORT(?,?)["));
    }
}
