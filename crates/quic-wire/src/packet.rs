//! QUIC packets (draft-29 §17): the seven packet types, header codec and
//! payload protection.
//!
//! The abstraction the learner sees is [`Packet::abstract_name`]:
//! `TYPE(?,?)[FRAME,FRAME,...]` — packet type plus the names of the carried
//! frames, with version and packet number abstracted to `?` exactly as in
//! the paper's QUIC alphabet (§6.2.2).

use crate::connection_id::ConnectionId;
use crate::crypto::{CryptoError, Keys};
use crate::frame::{Frame, FrameError};
use crate::varint::{read_varint, write_varint, VarIntError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The QUIC version this crate speaks (draft-29).
pub const QUIC_VERSION_DRAFT29: u32 = 0xFF00_001D;

/// The seven packet types of the paper's QUIC background section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PacketType {
    /// Initial packets carry the first CRYPTO flights and tokens.
    Initial,
    /// 0-RTT packets carry early application data.
    ZeroRtt,
    /// Handshake packets complete the TLS handshake.
    Handshake,
    /// Retry packets perform address validation.
    Retry,
    /// Version negotiation packets list supported versions.
    VersionNegotiation,
    /// Short-header (1-RTT) packets carry application data.
    Short,
    /// Stateless reset datagrams (last-resort connection teardown).
    StatelessReset,
}

impl PacketType {
    /// The paper's notation for the type.
    pub fn name(&self) -> &'static str {
        match self {
            PacketType::Initial => "INITIAL",
            PacketType::ZeroRtt => "0RTT",
            PacketType::Handshake => "HANDSHAKE",
            PacketType::Retry => "RETRY",
            PacketType::VersionNegotiation => "VERSION_NEGOTIATION",
            PacketType::Short => "SHORT",
            PacketType::StatelessReset => "RESET",
        }
    }

    /// All seven packet types.
    pub const ALL: [PacketType; 7] = [
        PacketType::Initial,
        PacketType::ZeroRtt,
        PacketType::Handshake,
        PacketType::Retry,
        PacketType::VersionNegotiation,
        PacketType::Short,
        PacketType::StatelessReset,
    ];

    fn long_header_bits(&self) -> Option<u8> {
        match self {
            PacketType::Initial => Some(0b00),
            PacketType::ZeroRtt => Some(0b01),
            PacketType::Handshake => Some(0b10),
            PacketType::Retry => Some(0b11),
            _ => None,
        }
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A decoded packet header.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Packet type.
    pub packet_type: PacketType,
    /// Protocol version (long headers only; 0 for short headers).
    pub version: u32,
    /// Destination connection ID.
    pub destination_cid: ConnectionId,
    /// Source connection ID (long headers only; empty for short headers).
    pub source_cid: ConnectionId,
    /// Address-validation token (Initial and Retry packets).
    pub token: Bytes,
    /// Full (un-truncated) packet number.  Zero for Retry/VN/reset.
    pub packet_number: u64,
}

impl PacketHeader {
    /// A long header of the given type.
    pub fn long(
        packet_type: PacketType,
        destination_cid: ConnectionId,
        source_cid: ConnectionId,
        packet_number: u64,
    ) -> Self {
        PacketHeader {
            packet_type,
            version: QUIC_VERSION_DRAFT29,
            destination_cid,
            source_cid,
            token: Bytes::new(),
            packet_number,
        }
    }

    /// A short (1-RTT) header.
    pub fn short(destination_cid: ConnectionId, packet_number: u64) -> Self {
        PacketHeader {
            packet_type: PacketType::Short,
            version: 0,
            destination_cid,
            source_cid: ConnectionId::empty(),
            token: Bytes::new(),
            packet_number,
        }
    }

    /// Attaches an address-validation token (Initial/Retry).
    pub fn with_token(mut self, token: impl Into<Bytes>) -> Self {
        self.token = token.into();
        self
    }
}

/// A QUIC packet: header plus frames.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The packet header.
    pub header: PacketHeader,
    /// The frames carried in the payload (empty for Retry/VN/reset).
    pub frames: Vec<Frame>,
}

/// Errors raised by the packet codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The datagram is shorter than a minimal header.
    Truncated,
    /// A varint field was malformed.
    VarInt(VarIntError),
    /// A frame failed to decode.
    Frame(FrameError),
    /// Payload protection could not be removed (wrong keys / corrupted).
    Crypto(CryptoError),
    /// The first byte does not describe a known packet type.
    BadFirstByte(u8),
}

impl From<VarIntError> for PacketError {
    fn from(e: VarIntError) -> Self {
        PacketError::VarInt(e)
    }
}

impl From<FrameError> for PacketError {
    fn from(e: FrameError) -> Self {
        PacketError::Frame(e)
    }
}

impl From<CryptoError> for PacketError {
    fn from(e: CryptoError) -> Self {
        PacketError::Crypto(e)
    }
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet truncated"),
            PacketError::VarInt(e) => write!(f, "varint error: {e}"),
            PacketError::Frame(e) => write!(f, "frame error: {e}"),
            PacketError::Crypto(e) => write!(f, "protection error: {e}"),
            PacketError::BadFirstByte(b) => write!(f, "unrecognised first byte 0x{b:02x}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Marker byte used for stateless-reset datagrams in this simulator.
const STATELESS_RESET_MARKER: u8 = 0x7F;

impl Packet {
    /// Creates a packet.
    pub fn new(header: PacketHeader, frames: Vec<Frame>) -> Self {
        Packet { header, frames }
    }

    /// The packet's abstract symbol in the paper's notation, e.g.
    /// `INITIAL(?,?)[ACK,CRYPTO]` or `SHORT(?,?)[ACK,STREAM]`.
    /// Frame names are listed in the order they appear, PADDING omitted,
    /// duplicates collapsed.
    pub fn abstract_name(&self) -> String {
        let mut names: Vec<&str> = Vec::new();
        for frame in &self.frames {
            let name = frame.frame_type().name();
            if name == "PADDING" || names.contains(&name) {
                continue;
            }
            names.push(name);
        }
        names.sort_unstable();
        format!(
            "{}(?,?)[{}]",
            self.header.packet_type.name(),
            names.join(",")
        )
    }

    /// Encodes and protects the packet with `keys` (ignored for Retry,
    /// Version Negotiation and stateless reset, which are not protected).
    pub fn encode(&self, keys: &Keys) -> Bytes {
        let mut buf = BytesMut::new();
        match self.header.packet_type {
            PacketType::Short => {
                buf.put_u8(0x40);
                buf.put_u8(self.header.destination_cid.len() as u8);
                buf.put_slice(self.header.destination_cid.as_bytes());
                buf.put_u32(self.header.packet_number as u32);
                let sealed = keys.seal(self.header.packet_number, &Frame::encode_all(&self.frames));
                buf.put_slice(&sealed);
            }
            PacketType::StatelessReset => {
                buf.put_u8(STATELESS_RESET_MARKER);
                buf.put_u8(self.header.destination_cid.len() as u8);
                buf.put_slice(self.header.destination_cid.as_bytes());
                // 16-byte stateless reset token derived from the CID.
                let token = self.header.destination_cid.key_material().to_be_bytes();
                buf.put_slice(&token);
                buf.put_slice(&token);
            }
            PacketType::VersionNegotiation => {
                buf.put_u8(0x80);
                buf.put_u32(0); // version 0 identifies VN
                put_cid(&mut buf, &self.header.destination_cid);
                put_cid(&mut buf, &self.header.source_cid);
                buf.put_u32(QUIC_VERSION_DRAFT29);
            }
            PacketType::Retry => {
                let bits = PacketType::Retry.long_header_bits().unwrap();
                buf.put_u8(0xC0 | (bits << 4));
                buf.put_u32(self.header.version);
                put_cid(&mut buf, &self.header.destination_cid);
                put_cid(&mut buf, &self.header.source_cid);
                write_varint(&mut buf, self.header.token.len() as u64).unwrap();
                buf.put_slice(&self.header.token);
            }
            PacketType::Initial | PacketType::Handshake | PacketType::ZeroRtt => {
                let bits = self.header.packet_type.long_header_bits().unwrap();
                buf.put_u8(0xC0 | (bits << 4));
                buf.put_u32(self.header.version);
                put_cid(&mut buf, &self.header.destination_cid);
                put_cid(&mut buf, &self.header.source_cid);
                if self.header.packet_type == PacketType::Initial {
                    write_varint(&mut buf, self.header.token.len() as u64).unwrap();
                    buf.put_slice(&self.header.token);
                }
                let sealed = keys.seal(self.header.packet_number, &Frame::encode_all(&self.frames));
                write_varint(&mut buf, (sealed.len() + 4) as u64).unwrap();
                buf.put_u32(self.header.packet_number as u32);
                buf.put_slice(&sealed);
            }
        }
        buf.freeze()
    }

    /// Decodes only the header portion of a datagram, without removing
    /// protection.  This is what an endpoint does first to decide which keys
    /// to use (or that it has none and must ignore the packet).
    pub fn decode_header(datagram: &Bytes) -> Result<(PacketHeader, Bytes), PacketError> {
        let mut buf = datagram.clone();
        if !buf.has_remaining() {
            return Err(PacketError::Truncated);
        }
        let first = buf.get_u8();
        if first == STATELESS_RESET_MARKER {
            let dcid = get_cid_u8len(&mut buf)?;
            let header = PacketHeader {
                packet_type: PacketType::StatelessReset,
                version: 0,
                destination_cid: dcid,
                source_cid: ConnectionId::empty(),
                token: Bytes::new(),
                packet_number: 0,
            };
            return Ok((header, Bytes::new()));
        }
        if first & 0x80 == 0 {
            // Short header.
            let dcid = get_cid_u8len(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(PacketError::Truncated);
            }
            let pn = u64::from(buf.get_u32());
            let header = PacketHeader::short(dcid, pn);
            return Ok((header, buf));
        }
        // Long header.
        if buf.remaining() < 4 {
            return Err(PacketError::Truncated);
        }
        let version = buf.get_u32();
        let dcid = get_cid(&mut buf)?;
        let scid = get_cid(&mut buf)?;
        if version == 0 {
            // Version negotiation.
            let header = PacketHeader {
                packet_type: PacketType::VersionNegotiation,
                version,
                destination_cid: dcid,
                source_cid: scid,
                token: Bytes::new(),
                packet_number: 0,
            };
            return Ok((header, buf));
        }
        let type_bits = (first >> 4) & 0b11;
        let packet_type = match type_bits {
            0b00 => PacketType::Initial,
            0b01 => PacketType::ZeroRtt,
            0b10 => PacketType::Handshake,
            _ => PacketType::Retry,
        };
        if packet_type == PacketType::Retry {
            let token_len = read_varint(&mut buf)? as usize;
            if buf.remaining() < token_len {
                return Err(PacketError::Truncated);
            }
            let token = buf.split_to(token_len);
            let header = PacketHeader {
                packet_type,
                version,
                destination_cid: dcid,
                source_cid: scid,
                token,
                packet_number: 0,
            };
            return Ok((header, Bytes::new()));
        }
        let token = if packet_type == PacketType::Initial {
            let token_len = read_varint(&mut buf)? as usize;
            if buf.remaining() < token_len {
                return Err(PacketError::Truncated);
            }
            buf.split_to(token_len)
        } else {
            Bytes::new()
        };
        let length = read_varint(&mut buf)? as usize;
        if buf.remaining() < length || length < 4 {
            return Err(PacketError::Truncated);
        }
        let mut body = buf.split_to(length);
        let pn = u64::from(body.get_u32());
        let header = PacketHeader {
            packet_type,
            version,
            destination_cid: dcid,
            source_cid: scid,
            token,
            packet_number: pn,
        };
        Ok((header, body))
    }

    /// Decodes a full packet, removing protection with `keys`.
    pub fn decode(datagram: &Bytes, keys: &Keys) -> Result<Packet, PacketError> {
        let (header, protected) = Packet::decode_header(datagram)?;
        match header.packet_type {
            PacketType::Retry | PacketType::VersionNegotiation | PacketType::StatelessReset => {
                Ok(Packet {
                    header,
                    frames: Vec::new(),
                })
            }
            _ => {
                let plaintext = keys.open(header.packet_number, &protected)?;
                let frames = Frame::decode_all(Bytes::from(plaintext))?;
                Ok(Packet { header, frames })
            }
        }
    }
}

fn put_cid(buf: &mut BytesMut, cid: &ConnectionId) {
    buf.put_u8(cid.len() as u8);
    buf.put_slice(cid.as_bytes());
}

fn get_cid(buf: &mut Bytes) -> Result<ConnectionId, PacketError> {
    get_cid_u8len(buf)
}

fn get_cid_u8len(buf: &mut Bytes) -> Result<ConnectionId, PacketError> {
    if !buf.has_remaining() {
        return Err(PacketError::Truncated);
    }
    let len = buf.get_u8() as usize;
    if buf.remaining() < len || len > 20 {
        return Err(PacketError::Truncated);
    }
    Ok(ConnectionId::new(buf.split_to(len).to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::EncryptionLevel;

    fn keys(level: EncryptionLevel) -> Keys {
        Keys::derive(ConnectionId::from_seed(1).key_material(), level)
    }

    fn initial_packet() -> Packet {
        Packet::new(
            PacketHeader::long(
                PacketType::Initial,
                ConnectionId::from_seed(1),
                ConnectionId::from_seed(2),
                0,
            ),
            vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"client hello"),
            }],
        )
    }

    #[test]
    fn initial_packet_round_trip() {
        let k = keys(EncryptionLevel::Initial);
        let p = initial_packet();
        let wire = p.encode(&k);
        let decoded = Packet::decode(&wire, &k).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.abstract_name(), "INITIAL(?,?)[CRYPTO]");
    }

    #[test]
    fn short_packet_round_trip_and_abstraction() {
        let k = keys(EncryptionLevel::OneRtt);
        let p = Packet::new(
            PacketHeader::short(ConnectionId::from_seed(1), 42),
            vec![
                Frame::Ack {
                    largest_acknowledged: 3,
                    ack_delay: 0,
                    first_ack_range: 0,
                },
                Frame::Stream {
                    stream_id: 0,
                    offset: 0,
                    fin: false,
                    data: Bytes::from_static(b"x"),
                },
                Frame::Padding,
            ],
        );
        let decoded = Packet::decode(&p.encode(&k), &k).unwrap();
        assert_eq!(decoded.header.packet_number, 42);
        assert_eq!(decoded.abstract_name(), "SHORT(?,?)[ACK,STREAM]");
    }

    #[test]
    fn wrong_keys_fail_to_decode() {
        let p = initial_packet();
        let wire = p.encode(&keys(EncryptionLevel::Initial));
        let err = Packet::decode(&wire, &keys(EncryptionLevel::Handshake)).unwrap_err();
        assert!(matches!(err, PacketError::Crypto(_)));
        // Header decoding still works without keys.
        let (header, _) = Packet::decode_header(&wire).unwrap();
        assert_eq!(header.packet_type, PacketType::Initial);
        assert_eq!(header.destination_cid, ConnectionId::from_seed(1));
    }

    #[test]
    fn retry_packet_carries_token_without_protection() {
        let p = Packet::new(
            PacketHeader::long(
                PacketType::Retry,
                ConnectionId::from_seed(3),
                ConnectionId::from_seed(4),
                0,
            )
            .with_token(Bytes::from_static(b"retry-token")),
            vec![],
        );
        let k = keys(EncryptionLevel::Initial);
        let decoded = Packet::decode(&p.encode(&k), &k).unwrap();
        assert_eq!(decoded.header.packet_type, PacketType::Retry);
        assert_eq!(&decoded.header.token[..], b"retry-token");
        assert_eq!(decoded.abstract_name(), "RETRY(?,?)[]");
    }

    #[test]
    fn initial_token_round_trips() {
        let k = keys(EncryptionLevel::Initial);
        let p = Packet::new(
            PacketHeader::long(
                PacketType::Initial,
                ConnectionId::from_seed(1),
                ConnectionId::from_seed(2),
                1,
            )
            .with_token(Bytes::from_static(b"tok123")),
            vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"ch"),
            }],
        );
        let decoded = Packet::decode(&p.encode(&k), &k).unwrap();
        assert_eq!(&decoded.header.token[..], b"tok123");
    }

    #[test]
    fn stateless_reset_and_version_negotiation() {
        let k = keys(EncryptionLevel::OneRtt);
        let reset = Packet::new(
            PacketHeader {
                packet_type: PacketType::StatelessReset,
                version: 0,
                destination_cid: ConnectionId::from_seed(9),
                source_cid: ConnectionId::empty(),
                token: Bytes::new(),
                packet_number: 0,
            },
            vec![],
        );
        let decoded = Packet::decode(&reset.encode(&k), &k).unwrap();
        assert_eq!(decoded.header.packet_type, PacketType::StatelessReset);
        assert_eq!(decoded.abstract_name(), "RESET(?,?)[]");

        let vn = Packet::new(
            PacketHeader {
                packet_type: PacketType::VersionNegotiation,
                version: 0,
                destination_cid: ConnectionId::from_seed(1),
                source_cid: ConnectionId::from_seed(2),
                token: Bytes::new(),
                packet_number: 0,
            },
            vec![],
        );
        let decoded = Packet::decode(&vn.encode(&k), &k).unwrap();
        assert_eq!(decoded.header.packet_type, PacketType::VersionNegotiation);
    }

    #[test]
    fn handshake_packet_round_trip() {
        let k = keys(EncryptionLevel::Handshake);
        let p = Packet::new(
            PacketHeader::long(
                PacketType::Handshake,
                ConnectionId::from_seed(1),
                ConnectionId::from_seed(2),
                5,
            ),
            vec![
                Frame::Ack {
                    largest_acknowledged: 1,
                    ack_delay: 0,
                    first_ack_range: 0,
                },
                Frame::Crypto {
                    offset: 0,
                    data: Bytes::from_static(b"finished"),
                },
            ],
        );
        let decoded = Packet::decode(&p.encode(&k), &k).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.abstract_name(), "HANDSHAKE(?,?)[ACK,CRYPTO]");
    }

    #[test]
    fn malformed_datagrams_are_rejected() {
        let k = keys(EncryptionLevel::Initial);
        assert!(matches!(
            Packet::decode(&Bytes::new(), &k),
            Err(PacketError::Truncated)
        ));
        assert!(matches!(
            Packet::decode(&Bytes::from_static(&[0xC0, 0x00]), &k),
            Err(PacketError::Truncated)
        ));
        let garbage = Bytes::from_static(&[0x40, 0xFF, 0x01, 0x02]);
        assert!(Packet::decode(&garbage, &k).is_err());
    }

    #[test]
    fn packet_type_names_and_display() {
        assert_eq!(PacketType::ALL.len(), 7);
        assert_eq!(PacketType::Initial.to_string(), "INITIAL");
        assert_eq!(PacketType::Short.name(), "SHORT");
        assert_eq!(PacketType::StatelessReset.name(), "RESET");
    }
}
