//! Connection IDs (draft-29 §5.1): opaque identifiers of 0–20 bytes chosen
//! by each endpoint.  The simulated key schedule derives keys from the
//! client's destination connection ID, mirroring how real QUIC derives
//! Initial secrets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum connection-ID length allowed by draft-29.
pub const MAX_CID_LEN: usize = 20;

/// An opaque connection identifier.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionId {
    bytes: Vec<u8>,
}

impl ConnectionId {
    /// Creates a connection ID from raw bytes.
    ///
    /// # Panics
    /// Panics when the length exceeds [`MAX_CID_LEN`].
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        let bytes = bytes.into();
        assert!(
            bytes.len() <= MAX_CID_LEN,
            "connection IDs are at most 20 bytes"
        );
        ConnectionId { bytes }
    }

    /// The zero-length connection ID.
    pub fn empty() -> Self {
        ConnectionId { bytes: Vec::new() }
    }

    /// Derives an 8-byte connection ID deterministically from a seed —
    /// used by the simulated endpoints so experiments are reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut bytes = Vec::with_capacity(8);
        for _ in 0..8 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.push((x & 0xFF) as u8);
        }
        ConnectionId { bytes }
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether this is the zero-length connection ID.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Folds the ID into a `u64`, used as key material by the simulated
    /// key schedule.
    pub fn key_material(&self) -> u64 {
        self.bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &b| {
            (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<&[u8]> for ConnectionId {
    fn from(bytes: &[u8]) -> Self {
        ConnectionId::new(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let cid = ConnectionId::new(vec![1, 2, 3]);
        assert_eq!(cid.len(), 3);
        assert!(!cid.is_empty());
        assert_eq!(cid.as_bytes(), &[1, 2, 3]);
        assert_eq!(cid.to_string(), "010203");
        assert!(ConnectionId::empty().is_empty());
        let from_slice: ConnectionId = (&[9u8, 8][..]).into();
        assert_eq!(from_slice.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at most 20 bytes")]
    fn rejects_oversized_ids() {
        let _ = ConnectionId::new(vec![0; 21]);
    }

    #[test]
    fn seeded_ids_are_deterministic_and_distinct() {
        let a = ConnectionId::from_seed(1);
        let b = ConnectionId::from_seed(1);
        let c = ConnectionId::from_seed(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn key_material_differs_between_ids() {
        let a = ConnectionId::from_seed(10).key_material();
        let b = ConnectionId::from_seed(11).key_material();
        assert_ne!(a, b);
        assert_ne!(ConnectionId::empty().key_material(), 0);
    }
}
