//! # prognosis-quic-wire
//!
//! The QUIC wire format as used by the paper's QUIC case study (IETF
//! draft-29): variable-length integers, connection IDs, the seven packet
//! types, the twenty frame types, packet-number encoding and packet
//! protection.
//!
//! **Substitution note (see DESIGN.md):** real QUIC protects packets with
//! TLS-1.3-derived AEAD keys and header protection.  Prognosis never looks
//! inside the cryptography — it only needs packets to be readable by the
//! legitimate peer and the key-availability state machine (Initial /
//! Handshake / 1-RTT spaces) to gate which packets an endpoint can process.
//! [`crypto`] therefore implements a deterministic keyed keystream
//! ("simulated AEAD") with the same interface and the same failure
//! behaviour (wrong key ⇒ open fails), which preserves every observable
//! behaviour the learner can see while keeping the stack self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection_id;
pub mod crypto;
pub mod frame;
pub mod packet;
pub mod varint;

pub use connection_id::ConnectionId;
pub use crypto::{EncryptionLevel, Keys};
pub use frame::{Frame, FrameType};
pub use packet::{Packet, PacketHeader, PacketType};
pub use varint::{read_varint, write_varint, VarIntError};
