//! Simulated packet protection.
//!
//! Real QUIC derives per-level secrets from the TLS 1.3 handshake and
//! protects payloads with an AEAD plus header protection.  The Prognosis
//! learner treats all of that as opaque: what matters to the observable
//! state machine is only *which encryption levels each endpoint has keys
//! for*, because that determines which packets it can process (an endpoint
//! ignores packets it cannot open, which is exactly the `{}` rows in the
//! appendix models).
//!
//! [`Keys`] therefore implements a deterministic keyed keystream: `seal`
//! XORs the payload with a keystream derived from (secret, level, packet
//! number) and appends a 4-byte integrity tag; `open` recomputes and checks
//! the tag, failing exactly when the wrong secret or level is used — the
//! same external behaviour as a real AEAD, with none of the cryptography.

use serde::{Deserialize, Serialize};
use std::fmt;

/// QUIC encryption levels / packet-number spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EncryptionLevel {
    /// Initial keys, derived from the client's destination connection ID.
    Initial,
    /// Handshake keys, available once the TLS handshake is underway.
    Handshake,
    /// 1-RTT (application) keys, available once the handshake completes.
    OneRtt,
}

impl EncryptionLevel {
    /// All levels, in handshake order.
    pub const ALL: [EncryptionLevel; 3] = [
        EncryptionLevel::Initial,
        EncryptionLevel::Handshake,
        EncryptionLevel::OneRtt,
    ];

    fn domain_separator(self) -> u64 {
        match self {
            EncryptionLevel::Initial => 0x1111_1111_1111_1111,
            EncryptionLevel::Handshake => 0x2222_2222_2222_2222,
            EncryptionLevel::OneRtt => 0x3333_3333_3333_3333,
        }
    }
}

impl fmt::Display for EncryptionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncryptionLevel::Initial => write!(f, "Initial"),
            EncryptionLevel::Handshake => write!(f, "Handshake"),
            EncryptionLevel::OneRtt => write!(f, "1-RTT"),
        }
    }
}

/// Errors raised when opening protected payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoError {
    /// The integrity tag did not verify (wrong keys, wrong level or corrupted
    /// payload).
    TagMismatch,
    /// The payload is shorter than the integrity tag.
    Truncated,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "integrity tag mismatch"),
            CryptoError::Truncated => write!(f, "protected payload shorter than the tag"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Length of the simulated integrity tag.
pub const TAG_LEN: usize = 4;

/// Packet-protection keys for one encryption level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Keys {
    secret: u64,
    level: EncryptionLevel,
}

impl Keys {
    /// Derives keys for `level` from connection key material (in real QUIC,
    /// the Initial secret comes from the client's destination connection ID
    /// and later secrets from the TLS key schedule).
    pub fn derive(key_material: u64, level: EncryptionLevel) -> Self {
        let secret = splitmix(key_material ^ level.domain_separator());
        Keys { secret, level }
    }

    /// The encryption level these keys belong to.
    pub fn level(&self) -> EncryptionLevel {
        self.level
    }

    fn keystream_byte(&self, packet_number: u64, index: usize) -> u8 {
        let word =
            splitmix(self.secret ^ packet_number.wrapping_mul(0x9E37_79B9) ^ (index as u64 / 8));
        (word >> ((index % 8) * 8)) as u8
    }

    fn tag(&self, packet_number: u64, plaintext: &[u8]) -> [u8; TAG_LEN] {
        let mut acc = self.secret ^ packet_number;
        for (i, &b) in plaintext.iter().enumerate() {
            acc = splitmix(acc ^ u64::from(b) ^ (i as u64));
        }
        (acc as u32).to_be_bytes()
    }

    /// Protects a payload: XOR keystream plus appended integrity tag.
    pub fn seal(&self, packet_number: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out: Vec<u8> = plaintext
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ self.keystream_byte(packet_number, i))
            .collect();
        out.extend_from_slice(&self.tag(packet_number, plaintext));
        out
    }

    /// Removes protection, verifying the integrity tag.
    pub fn open(&self, packet_number: u64, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < TAG_LEN {
            return Err(CryptoError::Truncated);
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
        let plaintext: Vec<u8> = body
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ self.keystream_byte(packet_number, i))
            .collect();
        if self.tag(packet_number, &plaintext) != tag {
            return Err(CryptoError::TagMismatch);
        }
        Ok(plaintext)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip_per_level() {
        for level in EncryptionLevel::ALL {
            let keys = Keys::derive(42, level);
            assert_eq!(keys.level(), level);
            let plaintext = b"prognosis closed-box analysis";
            let sealed = keys.seal(7, plaintext);
            assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
            assert_ne!(
                &sealed[..plaintext.len()],
                plaintext,
                "payload must be transformed"
            );
            assert_eq!(keys.open(7, &sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn wrong_level_or_secret_fails_to_open() {
        let initial = Keys::derive(42, EncryptionLevel::Initial);
        let handshake = Keys::derive(42, EncryptionLevel::Handshake);
        let other_conn = Keys::derive(43, EncryptionLevel::Initial);
        let sealed = initial.seal(0, b"client hello");
        assert_eq!(
            handshake.open(0, &sealed).unwrap_err(),
            CryptoError::TagMismatch
        );
        assert_eq!(
            other_conn.open(0, &sealed).unwrap_err(),
            CryptoError::TagMismatch
        );
        assert_eq!(
            initial.open(1, &sealed).unwrap_err(),
            CryptoError::TagMismatch
        );
        assert_eq!(initial.open(0, &sealed).unwrap(), b"client hello");
    }

    #[test]
    fn corruption_is_detected() {
        let keys = Keys::derive(1, EncryptionLevel::OneRtt);
        let mut sealed = keys.seal(3, b"data");
        sealed[0] ^= 0xFF;
        assert_eq!(keys.open(3, &sealed).unwrap_err(), CryptoError::TagMismatch);
        assert_eq!(keys.open(3, &[1, 2]).unwrap_err(), CryptoError::Truncated);
    }

    #[test]
    fn empty_payloads_are_supported() {
        let keys = Keys::derive(5, EncryptionLevel::Handshake);
        let sealed = keys.seal(9, b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(keys.open(9, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn display_names() {
        assert_eq!(EncryptionLevel::Initial.to_string(), "Initial");
        assert_eq!(EncryptionLevel::OneRtt.to_string(), "1-RTT");
        assert!(CryptoError::TagMismatch.to_string().contains("tag"));
    }
}
