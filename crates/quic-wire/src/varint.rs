//! QUIC variable-length integers (draft-29 §16 / RFC 9000 §16).
//!
//! The two most significant bits of the first byte select the encoding
//! length (1, 2, 4 or 8 bytes); the remaining bits carry the value in
//! network byte order.  The largest representable value is 2⁶²−1.

use bytes::{Buf, BufMut};
use std::fmt;

/// Maximum value representable as a QUIC varint (2⁶² − 1).
pub const MAX_VARINT: u64 = (1 << 62) - 1;

/// Errors raised by varint decoding/encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarIntError {
    /// The value does not fit in 62 bits.
    TooLarge(u64),
    /// The buffer ended in the middle of a varint.
    Truncated,
}

impl fmt::Display for VarIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarIntError::TooLarge(v) => write!(f, "{v} exceeds the 62-bit varint range"),
            VarIntError::Truncated => write!(f, "buffer truncated inside a varint"),
        }
    }
}

impl std::error::Error for VarIntError {}

/// Number of bytes needed to encode `value`.
pub fn varint_len(value: u64) -> Result<usize, VarIntError> {
    match value {
        v if v < 1 << 6 => Ok(1),
        v if v < 1 << 14 => Ok(2),
        v if v < 1 << 30 => Ok(4),
        v if v <= MAX_VARINT => Ok(8),
        v => Err(VarIntError::TooLarge(v)),
    }
}

/// Appends `value` to `buf` in varint encoding.
pub fn write_varint(buf: &mut impl BufMut, value: u64) -> Result<(), VarIntError> {
    match varint_len(value)? {
        1 => buf.put_u8(value as u8),
        2 => buf.put_u16((value as u16) | 0x4000),
        4 => buf.put_u32((value as u32) | 0x8000_0000),
        _ => buf.put_u64(value | 0xC000_0000_0000_0000),
    }
    Ok(())
}

/// Reads a varint from the front of `buf`, advancing it.
pub fn read_varint(buf: &mut impl Buf) -> Result<u64, VarIntError> {
    if buf.remaining() < 1 {
        return Err(VarIntError::Truncated);
    }
    let first = buf.chunk()[0];
    let len = 1usize << (first >> 6);
    if buf.remaining() < len {
        return Err(VarIntError::Truncated);
    }
    let value = match len {
        1 => u64::from(buf.get_u8() & 0x3F),
        2 => u64::from(buf.get_u16() & 0x3FFF),
        4 => u64::from(buf.get_u32() & 0x3FFF_FFFF),
        _ => buf.get_u64() & 0x3FFF_FFFF_FFFF_FFFF,
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};

    fn round_trip(value: u64) -> (usize, u64) {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, value).unwrap();
        let len = buf.len();
        let mut bytes = buf.freeze();
        (len, read_varint(&mut bytes).unwrap())
    }

    #[test]
    fn rfc_9000_appendix_a_examples() {
        // The canonical examples from RFC 9000 Appendix A.1.
        let mut b = Bytes::from_static(&[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c]);
        assert_eq!(read_varint(&mut b).unwrap(), 151_288_809_941_952_652);
        let mut b = Bytes::from_static(&[0x9d, 0x7f, 0x3e, 0x7d]);
        assert_eq!(read_varint(&mut b).unwrap(), 494_878_333);
        let mut b = Bytes::from_static(&[0x7b, 0xbd]);
        assert_eq!(read_varint(&mut b).unwrap(), 15_293);
        let mut b = Bytes::from_static(&[0x25]);
        assert_eq!(read_varint(&mut b).unwrap(), 37);
    }

    #[test]
    fn encoding_lengths_follow_thresholds() {
        assert_eq!(round_trip(0), (1, 0));
        assert_eq!(round_trip(63), (1, 63));
        assert_eq!(round_trip(64), (2, 64));
        assert_eq!(round_trip(16_383), (2, 16_383));
        assert_eq!(round_trip(16_384), (4, 16_384));
        assert_eq!(round_trip((1 << 30) - 1), (4, (1 << 30) - 1));
        assert_eq!(round_trip(1 << 30), (8, 1 << 30));
        assert_eq!(round_trip(MAX_VARINT), (8, MAX_VARINT));
    }

    #[test]
    fn errors() {
        let mut buf = BytesMut::new();
        assert_eq!(
            write_varint(&mut buf, MAX_VARINT + 1),
            Err(VarIntError::TooLarge(MAX_VARINT + 1))
        );
        assert_eq!(
            varint_len(u64::MAX).unwrap_err(),
            VarIntError::TooLarge(u64::MAX)
        );
        let mut empty = Bytes::new();
        assert_eq!(read_varint(&mut empty), Err(VarIntError::Truncated));
        let mut short = Bytes::from_static(&[0xc0, 0x01]);
        assert_eq!(read_varint(&mut short), Err(VarIntError::Truncated));
        assert!(VarIntError::Truncated.to_string().contains("truncated"));
    }

    #[test]
    fn exhaustive_round_trip_near_boundaries() {
        for base in [
            0u64,
            63,
            64,
            16_383,
            16_384,
            (1 << 30) - 1,
            1 << 30,
            MAX_VARINT - 1,
        ] {
            for delta in 0..2 {
                let v = base.saturating_add(delta).min(MAX_VARINT);
                assert_eq!(round_trip(v).1, v);
            }
        }
    }
}
