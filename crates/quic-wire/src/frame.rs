//! QUIC frames (draft-29 §19): all twenty frame types, with a byte-level
//! codec over varints.
//!
//! The paper's abstract alphabet identifies packets by their packet type and
//! the *names* of the frames they carry (e.g. `SHORT(?,?)[ACK,STREAM]`), so
//! each frame exposes its [`FrameType`] name; the concrete fields (offsets,
//! stream IDs, flow-control limits) are what the synthesis module recovers
//! from the Oracle Table — most prominently the `STREAM_DATA_BLOCKED`
//! `Maximum Stream Data` field at the heart of Issue 4.

use crate::varint::{read_varint, write_varint, VarIntError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The twenty draft-29 frame types, by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FrameType {
    Padding,
    Ping,
    Ack,
    ResetStream,
    StopSending,
    Crypto,
    NewToken,
    Stream,
    MaxData,
    MaxStreamData,
    MaxStreams,
    DataBlocked,
    StreamDataBlocked,
    StreamsBlocked,
    NewConnectionId,
    RetireConnectionId,
    PathChallenge,
    PathResponse,
    ConnectionClose,
    HandshakeDone,
}

impl FrameType {
    /// The paper's notation for the frame (upper snake case).
    pub fn name(&self) -> &'static str {
        match self {
            FrameType::Padding => "PADDING",
            FrameType::Ping => "PING",
            FrameType::Ack => "ACK",
            FrameType::ResetStream => "RESET_STREAM",
            FrameType::StopSending => "STOP_SENDING",
            FrameType::Crypto => "CRYPTO",
            FrameType::NewToken => "NEW_TOKEN",
            FrameType::Stream => "STREAM",
            FrameType::MaxData => "MAX_DATA",
            FrameType::MaxStreamData => "MAX_STREAM_DATA",
            FrameType::MaxStreams => "MAX_STREAMS",
            FrameType::DataBlocked => "DATA_BLOCKED",
            FrameType::StreamDataBlocked => "STREAM_DATA_BLOCKED",
            FrameType::StreamsBlocked => "STREAMS_BLOCKED",
            FrameType::NewConnectionId => "NEW_CONNECTION_ID",
            FrameType::RetireConnectionId => "RETIRE_CONNECTION_ID",
            FrameType::PathChallenge => "PATH_CHALLENGE",
            FrameType::PathResponse => "PATH_RESPONSE",
            FrameType::ConnectionClose => "CONNECTION_CLOSE",
            FrameType::HandshakeDone => "HANDSHAKE_DONE",
        }
    }

    /// All twenty frame types.
    pub const ALL: [FrameType; 20] = [
        FrameType::Padding,
        FrameType::Ping,
        FrameType::Ack,
        FrameType::ResetStream,
        FrameType::StopSending,
        FrameType::Crypto,
        FrameType::NewToken,
        FrameType::Stream,
        FrameType::MaxData,
        FrameType::MaxStreamData,
        FrameType::MaxStreams,
        FrameType::DataBlocked,
        FrameType::StreamDataBlocked,
        FrameType::StreamsBlocked,
        FrameType::NewConnectionId,
        FrameType::RetireConnectionId,
        FrameType::PathChallenge,
        FrameType::PathResponse,
        FrameType::ConnectionClose,
        FrameType::HandshakeDone,
    ];

    /// Parses the paper's notation back into a frame type.
    pub fn from_name(name: &str) -> Option<FrameType> {
        FrameType::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A decoded QUIC frame.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Frame {
    Padding,
    Ping,
    /// Simplified ACK: a single range ending at `largest_acknowledged`.
    Ack {
        largest_acknowledged: u64,
        ack_delay: u64,
        first_ack_range: u64,
    },
    ResetStream {
        stream_id: u64,
        error_code: u64,
        final_size: u64,
    },
    StopSending {
        stream_id: u64,
        error_code: u64,
    },
    Crypto {
        offset: u64,
        data: Bytes,
    },
    NewToken {
        token: Bytes,
    },
    Stream {
        stream_id: u64,
        offset: u64,
        fin: bool,
        data: Bytes,
    },
    MaxData {
        maximum: u64,
    },
    MaxStreamData {
        stream_id: u64,
        maximum: u64,
    },
    MaxStreams {
        bidirectional: bool,
        maximum: u64,
    },
    DataBlocked {
        limit: u64,
    },
    StreamDataBlocked {
        stream_id: u64,
        maximum_stream_data: u64,
    },
    StreamsBlocked {
        bidirectional: bool,
        limit: u64,
    },
    NewConnectionId {
        sequence: u64,
        retire_prior_to: u64,
        connection_id: Bytes,
        reset_token: [u8; 16],
    },
    RetireConnectionId {
        sequence: u64,
    },
    PathChallenge {
        data: [u8; 8],
    },
    PathResponse {
        data: [u8; 8],
    },
    ConnectionClose {
        error_code: u64,
        frame_type: u64,
        reason: String,
        application: bool,
    },
    HandshakeDone,
}

/// Errors raised by the frame codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A varint field was malformed or the buffer was truncated.
    VarInt(VarIntError),
    /// The buffer ended inside a frame body.
    Truncated,
    /// An unknown frame-type byte was encountered.
    UnknownType(u64),
}

impl From<VarIntError> for FrameError {
    fn from(e: VarIntError) -> Self {
        FrameError::VarInt(e)
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::VarInt(e) => write!(f, "varint error: {e}"),
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// The frame's type name.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Padding => FrameType::Padding,
            Frame::Ping => FrameType::Ping,
            Frame::Ack { .. } => FrameType::Ack,
            Frame::ResetStream { .. } => FrameType::ResetStream,
            Frame::StopSending { .. } => FrameType::StopSending,
            Frame::Crypto { .. } => FrameType::Crypto,
            Frame::NewToken { .. } => FrameType::NewToken,
            Frame::Stream { .. } => FrameType::Stream,
            Frame::MaxData { .. } => FrameType::MaxData,
            Frame::MaxStreamData { .. } => FrameType::MaxStreamData,
            Frame::MaxStreams { .. } => FrameType::MaxStreams,
            Frame::DataBlocked { .. } => FrameType::DataBlocked,
            Frame::StreamDataBlocked { .. } => FrameType::StreamDataBlocked,
            Frame::StreamsBlocked { .. } => FrameType::StreamsBlocked,
            Frame::NewConnectionId { .. } => FrameType::NewConnectionId,
            Frame::RetireConnectionId { .. } => FrameType::RetireConnectionId,
            Frame::PathChallenge { .. } => FrameType::PathChallenge,
            Frame::PathResponse { .. } => FrameType::PathResponse,
            Frame::ConnectionClose { .. } => FrameType::ConnectionClose,
            Frame::HandshakeDone => FrameType::HandshakeDone,
        }
    }

    /// Whether this frame is ack-eliciting (draft-29 §13.2): everything
    /// except ACK, PADDING and CONNECTION_CLOSE.
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Ack { .. } | Frame::Padding | Frame::ConnectionClose { .. }
        )
    }

    /// Encodes the frame onto a buffer.
    pub fn encode(&self, buf: &mut BytesMut) {
        // Frame-type codes follow draft-29 §19.
        match self {
            Frame::Padding => buf.put_u8(0x00),
            Frame::Ping => buf.put_u8(0x01),
            Frame::Ack {
                largest_acknowledged,
                ack_delay,
                first_ack_range,
            } => {
                buf.put_u8(0x02);
                write_varint(buf, *largest_acknowledged).unwrap();
                write_varint(buf, *ack_delay).unwrap();
                write_varint(buf, 0).unwrap(); // ack range count
                write_varint(buf, *first_ack_range).unwrap();
            }
            Frame::ResetStream {
                stream_id,
                error_code,
                final_size,
            } => {
                buf.put_u8(0x04);
                write_varint(buf, *stream_id).unwrap();
                write_varint(buf, *error_code).unwrap();
                write_varint(buf, *final_size).unwrap();
            }
            Frame::StopSending {
                stream_id,
                error_code,
            } => {
                buf.put_u8(0x05);
                write_varint(buf, *stream_id).unwrap();
                write_varint(buf, *error_code).unwrap();
            }
            Frame::Crypto { offset, data } => {
                buf.put_u8(0x06);
                write_varint(buf, *offset).unwrap();
                write_varint(buf, data.len() as u64).unwrap();
                buf.put_slice(data);
            }
            Frame::NewToken { token } => {
                buf.put_u8(0x07);
                write_varint(buf, token.len() as u64).unwrap();
                buf.put_slice(token);
            }
            Frame::Stream {
                stream_id,
                offset,
                fin,
                data,
            } => {
                // OFF and LEN bits always set; FIN bit as requested.
                buf.put_u8(0x0E | u8::from(*fin));
                write_varint(buf, *stream_id).unwrap();
                write_varint(buf, *offset).unwrap();
                write_varint(buf, data.len() as u64).unwrap();
                buf.put_slice(data);
            }
            Frame::MaxData { maximum } => {
                buf.put_u8(0x10);
                write_varint(buf, *maximum).unwrap();
            }
            Frame::MaxStreamData { stream_id, maximum } => {
                buf.put_u8(0x11);
                write_varint(buf, *stream_id).unwrap();
                write_varint(buf, *maximum).unwrap();
            }
            Frame::MaxStreams {
                bidirectional,
                maximum,
            } => {
                buf.put_u8(if *bidirectional { 0x12 } else { 0x13 });
                write_varint(buf, *maximum).unwrap();
            }
            Frame::DataBlocked { limit } => {
                buf.put_u8(0x14);
                write_varint(buf, *limit).unwrap();
            }
            Frame::StreamDataBlocked {
                stream_id,
                maximum_stream_data,
            } => {
                buf.put_u8(0x15);
                write_varint(buf, *stream_id).unwrap();
                write_varint(buf, *maximum_stream_data).unwrap();
            }
            Frame::StreamsBlocked {
                bidirectional,
                limit,
            } => {
                buf.put_u8(if *bidirectional { 0x16 } else { 0x17 });
                write_varint(buf, *limit).unwrap();
            }
            Frame::NewConnectionId {
                sequence,
                retire_prior_to,
                connection_id,
                reset_token,
            } => {
                buf.put_u8(0x18);
                write_varint(buf, *sequence).unwrap();
                write_varint(buf, *retire_prior_to).unwrap();
                buf.put_u8(connection_id.len() as u8);
                buf.put_slice(connection_id);
                buf.put_slice(reset_token);
            }
            Frame::RetireConnectionId { sequence } => {
                buf.put_u8(0x19);
                write_varint(buf, *sequence).unwrap();
            }
            Frame::PathChallenge { data } => {
                buf.put_u8(0x1A);
                buf.put_slice(data);
            }
            Frame::PathResponse { data } => {
                buf.put_u8(0x1B);
                buf.put_slice(data);
            }
            Frame::ConnectionClose {
                error_code,
                frame_type,
                reason,
                application,
            } => {
                buf.put_u8(if *application { 0x1D } else { 0x1C });
                write_varint(buf, *error_code).unwrap();
                if !application {
                    write_varint(buf, *frame_type).unwrap();
                }
                write_varint(buf, reason.len() as u64).unwrap();
                buf.put_slice(reason.as_bytes());
            }
            Frame::HandshakeDone => buf.put_u8(0x1E),
        }
    }

    /// Decodes a single frame from the front of `buf`, advancing it.
    pub fn decode(buf: &mut Bytes) -> Result<Frame, FrameError> {
        let frame_type = read_varint(buf)?;
        let take_bytes = |buf: &mut Bytes, len: usize| -> Result<Bytes, FrameError> {
            if buf.remaining() < len {
                return Err(FrameError::Truncated);
            }
            Ok(buf.split_to(len))
        };
        let frame = match frame_type {
            0x00 => Frame::Padding,
            0x01 => Frame::Ping,
            0x02 | 0x03 => {
                let largest_acknowledged = read_varint(buf)?;
                let ack_delay = read_varint(buf)?;
                let range_count = read_varint(buf)?;
                let first_ack_range = read_varint(buf)?;
                for _ in 0..range_count {
                    let _gap = read_varint(buf)?;
                    let _len = read_varint(buf)?;
                }
                if frame_type == 0x03 {
                    let _ect0 = read_varint(buf)?;
                    let _ect1 = read_varint(buf)?;
                    let _ce = read_varint(buf)?;
                }
                Frame::Ack {
                    largest_acknowledged,
                    ack_delay,
                    first_ack_range,
                }
            }
            0x04 => Frame::ResetStream {
                stream_id: read_varint(buf)?,
                error_code: read_varint(buf)?,
                final_size: read_varint(buf)?,
            },
            0x05 => Frame::StopSending {
                stream_id: read_varint(buf)?,
                error_code: read_varint(buf)?,
            },
            0x06 => {
                let offset = read_varint(buf)?;
                let len = read_varint(buf)? as usize;
                Frame::Crypto {
                    offset,
                    data: take_bytes(buf, len)?,
                }
            }
            0x07 => {
                let len = read_varint(buf)? as usize;
                Frame::NewToken {
                    token: take_bytes(buf, len)?,
                }
            }
            0x08..=0x0F => {
                let has_offset = frame_type & 0x04 != 0;
                let has_len = frame_type & 0x02 != 0;
                let fin = frame_type & 0x01 != 0;
                let stream_id = read_varint(buf)?;
                let offset = if has_offset { read_varint(buf)? } else { 0 };
                let data = if has_len {
                    let len = read_varint(buf)? as usize;
                    take_bytes(buf, len)?
                } else {
                    let rest = buf.remaining();
                    take_bytes(buf, rest)?
                };
                Frame::Stream {
                    stream_id,
                    offset,
                    fin,
                    data,
                }
            }
            0x10 => Frame::MaxData {
                maximum: read_varint(buf)?,
            },
            0x11 => Frame::MaxStreamData {
                stream_id: read_varint(buf)?,
                maximum: read_varint(buf)?,
            },
            0x12 | 0x13 => Frame::MaxStreams {
                bidirectional: frame_type == 0x12,
                maximum: read_varint(buf)?,
            },
            0x14 => Frame::DataBlocked {
                limit: read_varint(buf)?,
            },
            0x15 => Frame::StreamDataBlocked {
                stream_id: read_varint(buf)?,
                maximum_stream_data: read_varint(buf)?,
            },
            0x16 | 0x17 => Frame::StreamsBlocked {
                bidirectional: frame_type == 0x16,
                limit: read_varint(buf)?,
            },
            0x18 => {
                let sequence = read_varint(buf)?;
                let retire_prior_to = read_varint(buf)?;
                if buf.remaining() < 1 {
                    return Err(FrameError::Truncated);
                }
                let cid_len = buf.get_u8() as usize;
                let connection_id = take_bytes(buf, cid_len)?;
                let token_bytes = take_bytes(buf, 16)?;
                let mut reset_token = [0u8; 16];
                reset_token.copy_from_slice(&token_bytes);
                Frame::NewConnectionId {
                    sequence,
                    retire_prior_to,
                    connection_id,
                    reset_token,
                }
            }
            0x19 => Frame::RetireConnectionId {
                sequence: read_varint(buf)?,
            },
            0x1A | 0x1B => {
                let data_bytes = take_bytes(buf, 8)?;
                let mut data = [0u8; 8];
                data.copy_from_slice(&data_bytes);
                if frame_type == 0x1A {
                    Frame::PathChallenge { data }
                } else {
                    Frame::PathResponse { data }
                }
            }
            0x1C | 0x1D => {
                let application = frame_type == 0x1D;
                let error_code = read_varint(buf)?;
                let ft = if application { 0 } else { read_varint(buf)? };
                let len = read_varint(buf)? as usize;
                let reason_bytes = take_bytes(buf, len)?;
                Frame::ConnectionClose {
                    error_code,
                    frame_type: ft,
                    reason: String::from_utf8_lossy(&reason_bytes).into_owned(),
                    application,
                }
            }
            0x1E => Frame::HandshakeDone,
            other => return Err(FrameError::UnknownType(other)),
        };
        Ok(frame)
    }

    /// Decodes every frame in a payload.
    pub fn decode_all(mut payload: Bytes) -> Result<Vec<Frame>, FrameError> {
        let mut frames = Vec::new();
        while payload.has_remaining() {
            frames.push(Frame::decode(&mut payload)?);
        }
        Ok(frames)
    }

    /// Encodes a list of frames into a payload.
    pub fn encode_all(frames: &[Frame]) -> Bytes {
        let mut buf = BytesMut::new();
        for frame in frames {
            frame.encode(&mut buf);
        }
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Padding,
            Frame::Ping,
            Frame::Ack {
                largest_acknowledged: 17,
                ack_delay: 3,
                first_ack_range: 2,
            },
            Frame::ResetStream {
                stream_id: 4,
                error_code: 9,
                final_size: 100,
            },
            Frame::StopSending {
                stream_id: 4,
                error_code: 1,
            },
            Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"client hello"),
            },
            Frame::NewToken {
                token: Bytes::from_static(b"tok"),
            },
            Frame::Stream {
                stream_id: 0,
                offset: 64,
                fin: true,
                data: Bytes::from_static(b"GET /"),
            },
            Frame::MaxData { maximum: 65_536 },
            Frame::MaxStreamData {
                stream_id: 0,
                maximum: 32_768,
            },
            Frame::MaxStreams {
                bidirectional: true,
                maximum: 100,
            },
            Frame::DataBlocked { limit: 65_536 },
            Frame::StreamDataBlocked {
                stream_id: 0,
                maximum_stream_data: 0,
            },
            Frame::StreamsBlocked {
                bidirectional: false,
                limit: 10,
            },
            Frame::NewConnectionId {
                sequence: 1,
                retire_prior_to: 0,
                connection_id: Bytes::from_static(&[1, 2, 3, 4]),
                reset_token: [7; 16],
            },
            Frame::RetireConnectionId { sequence: 0 },
            Frame::PathChallenge {
                data: [1, 2, 3, 4, 5, 6, 7, 8],
            },
            Frame::PathResponse {
                data: [8, 7, 6, 5, 4, 3, 2, 1],
            },
            Frame::ConnectionClose {
                error_code: 0x0A,
                frame_type: 0x1E,
                reason: "protocol violation".to_string(),
                application: false,
            },
            Frame::HandshakeDone,
        ]
    }

    #[test]
    fn all_twenty_frame_types_round_trip() {
        let frames = sample_frames();
        assert_eq!(frames.len(), 20);
        let encoded = Frame::encode_all(&frames);
        let decoded = Frame::decode_all(encoded).unwrap();
        assert_eq!(decoded, frames);
    }

    #[test]
    fn frame_type_names_cover_the_paper_notation() {
        let names: Vec<&str> = FrameType::ALL.iter().map(|t| t.name()).collect();
        for expected in [
            "ACK",
            "CRYPTO",
            "STREAM",
            "HANDSHAKE_DONE",
            "MAX_DATA",
            "MAX_STREAM_DATA",
            "STREAM_DATA_BLOCKED",
            "CONNECTION_CLOSE",
        ] {
            assert!(names.contains(&expected), "missing frame name {expected}");
        }
        assert_eq!(FrameType::ALL.len(), 20);
        assert_eq!(FrameType::from_name("ACK"), Some(FrameType::Ack));
        assert_eq!(FrameType::from_name("NOPE"), None);
        assert_eq!(FrameType::HandshakeDone.to_string(), "HANDSHAKE_DONE");
    }

    #[test]
    fn frame_types_match_their_variants() {
        for frame in sample_frames() {
            let t = frame.frame_type();
            assert_eq!(t.name(), FrameType::from_name(t.name()).unwrap().name());
        }
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(!Frame::Padding.is_ack_eliciting());
        assert!(!Frame::Ack {
            largest_acknowledged: 0,
            ack_delay: 0,
            first_ack_range: 0
        }
        .is_ack_eliciting());
        assert!(!Frame::ConnectionClose {
            error_code: 0,
            frame_type: 0,
            reason: String::new(),
            application: true
        }
        .is_ack_eliciting());
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::HandshakeDone.is_ack_eliciting());
        assert!(Frame::Stream {
            stream_id: 0,
            offset: 0,
            fin: false,
            data: Bytes::new()
        }
        .is_ack_eliciting());
    }

    #[test]
    fn stream_fin_bit_round_trips() {
        for fin in [false, true] {
            let f = Frame::Stream {
                stream_id: 8,
                offset: 0,
                fin,
                data: Bytes::from_static(b"d"),
            };
            let decoded = Frame::decode_all(Frame::encode_all(std::slice::from_ref(&f))).unwrap();
            assert_eq!(decoded, vec![f]);
        }
    }

    #[test]
    fn application_close_round_trips_without_frame_type_field() {
        let f = Frame::ConnectionClose {
            error_code: 3,
            frame_type: 0,
            reason: "bye".to_string(),
            application: true,
        };
        let decoded = Frame::decode_all(Frame::encode_all(std::slice::from_ref(&f))).unwrap();
        assert_eq!(decoded, vec![f]);
    }

    #[test]
    fn decode_errors() {
        // Unknown frame type.
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 0x30).unwrap();
        assert!(matches!(
            Frame::decode_all(buf.freeze()),
            Err(FrameError::UnknownType(0x30))
        ));
        // Truncated CRYPTO frame (declares more data than present).
        let mut buf = BytesMut::new();
        buf.put_u8(0x06);
        write_varint(&mut buf, 0).unwrap();
        write_varint(&mut buf, 100).unwrap();
        buf.put_slice(b"short");
        let err = Frame::decode_all(buf.freeze()).unwrap_err();
        assert!(matches!(err, FrameError::Truncated));
        assert!(err.to_string().contains("truncated"));
        // Truncated varint.
        let err = Frame::decode_all(Bytes::from_static(&[0x02, 0xC0])).unwrap_err();
        assert!(matches!(err, FrameError::VarInt(_)));
    }
}
