//! Criterion benchmarks for the performance-shaped experiments.
//!
//! One group per experiment id from DESIGN.md §3: learning effort for the
//! TCP and QUIC SULs (E1/E3), register synthesis (E2/E8), equivalence
//! checking of learned models (E5), the nondeterminism check (E6/E13) and
//! the wire codec that every query passes through.  Sample counts are kept
//! small because each iteration performs a complete learning run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prognosis_automata::alphabet::Alphabet;
use prognosis_automata::equivalence::machines_equivalent;
use prognosis_automata::known;
use prognosis_automata::word::InputWord;
use prognosis_automata::word::{IoTrace, OutputWord};
use prognosis_core::latency::LatencySulFactory;
use prognosis_core::nondeterminism::{NondeterminismChecker, NondeterminismConfig};
use prognosis_core::pipeline::{learn_model, learn_model_parallel, LearnConfig};
use prognosis_core::quic_adapter::{quic_data_alphabet, QuicSul};
use prognosis_core::session::SimDuration;
use prognosis_core::tcp_adapter::{tcp_alphabet, TcpSul, TcpSulFactory};
use prognosis_quic_sim::profile::ImplementationProfile;
use prognosis_quic_wire::connection_id::ConnectionId;
use prognosis_quic_wire::crypto::{EncryptionLevel, Keys};
use prognosis_quic_wire::frame::Frame;
use prognosis_quic_wire::packet::{Packet, PacketHeader};
use prognosis_synth::synthesis::Synthesizer;
use prognosis_synth::term::TermDomain;
use prognosis_synth::trace::{ConcreteStep, ConcreteTrace};
use std::time::Duration;

fn quick_config() -> LearnConfig {
    LearnConfig {
        seed: 7,
        random_tests: 100,
        min_word_len: 2,
        max_word_len: 6,
        ..LearnConfig::default()
    }
}

/// E1: learning the TCP SUL.
fn bench_tcp_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_learning");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("seven_symbol_alphabet", |b| {
        b.iter(|| {
            let mut sul = TcpSul::with_defaults();
            let learned = learn_model(&mut sul, &tcp_alphabet(), quick_config());
            assert!(learned.model.num_states() >= 4);
        })
    });
    group.finish();
}

/// E3: learning the QUIC profiles on the data-path alphabet.
fn bench_quic_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("quic_learning");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for profile in [
        ImplementationProfile::quiche(),
        ImplementationProfile::google(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let mut sul = QuicSul::new(profile.clone(), 3);
                    let learned = learn_model(&mut sul, &quic_data_alphabet(), quick_config());
                    assert!(learned.model.num_states() >= 3);
                })
            },
        );
    }
    group.finish();
}

/// E15: sequential vs batched-parallel learning on a latency-modelled TCP
/// SUL (50µs per symbol, 100µs per reset — the §4.1 deployment regime the
/// parallel engine exists for).
fn bench_parallel_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_learning");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(200));
    let factory = || {
        LatencySulFactory::new(
            TcpSulFactory::default(),
            SimDuration::from_micros(50),
            SimDuration::from_micros(100),
        )
    };
    let config = LearnConfig {
        seed: 7,
        random_tests: 200,
        min_word_len: 2,
        max_word_len: 8,
        eq_batch_size: 256,
        ..LearnConfig::default()
    };
    group.bench_function("tcp_sequential", |b| {
        b.iter(|| {
            let learned = learn_model(&mut factory().create(), &tcp_alphabet(), config.clone());
            assert!(learned.model.num_states() >= 4);
        })
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("tcp_parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let outcome = learn_model_parallel(
                        &factory(),
                        &tcp_alphabet(),
                        config.clone().with_workers(workers),
                    )
                    .expect("parallel learning succeeds");
                    assert!(outcome.learned.model.num_states() >= 4);
                })
            },
        );
    }
    for inflight in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("tcp_multiplexed_1worker", inflight),
            &inflight,
            |b, &inflight| {
                b.iter(|| {
                    let outcome = learn_model_parallel(
                        &factory(),
                        &tcp_alphabet(),
                        config.clone().with_workers(1).with_max_inflight(inflight),
                    )
                    .expect("parallel learning succeeds");
                    assert!(outcome.learned.model.num_states() >= 4);
                })
            },
        );
    }
    group.finish();
}

/// E2/E8: register synthesis from concrete traces.
fn bench_register_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_synthesis");
    group.sample_size(20);
    // A latch machine with traces of growing length.
    let skeleton = {
        use prognosis_automata::mealy::MealyBuilder;
        let inputs = Alphabet::from_symbols(["put", "get"]);
        let mut b = MealyBuilder::new(inputs);
        let s0 = b.add_state();
        b.add_transition(s0, "put", "ok", s0).unwrap();
        b.add_transition(s0, "get", "val", s0).unwrap();
        b.build().unwrap()
    };
    let make_trace = |len: usize| {
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut steps = Vec::new();
        let mut latched = 0i64;
        for i in 0..len {
            if i % 2 == 0 {
                latched = (i as i64 + 3) * 7;
                inputs.push("put");
                outputs.push("ok");
                steps.push(ConcreteStep::new(vec![latched], vec![]));
            } else {
                inputs.push("get");
                outputs.push("val");
                steps.push(ConcreteStep::new(vec![0], vec![latched]));
            }
        }
        ConcreteTrace::new(
            IoTrace::new(
                InputWord::from_symbols(inputs),
                OutputWord::from_symbols(outputs),
            ),
            steps,
        )
    };
    for len in [4usize, 8, 16] {
        let traces = vec![make_trace(len), make_trace(len + 2)];
        let synthesizer = Synthesizer::new(
            TermDomain::new(1, 1),
            vec!["r0".to_string()],
            vec!["v".to_string()],
            vec![0],
        );
        group.bench_with_input(BenchmarkId::from_parameter(len), &traces, |b, traces| {
            b.iter(|| {
                let outcome = synthesizer.synthesize(&skeleton, traces, &[]).unwrap();
                assert!(outcome.report.solver_nodes > 0);
            })
        });
    }
    group.finish();
}

/// E5: equivalence checking / diffing of learned-model-sized machines.
fn bench_equivalence_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence_checking");
    for states in [8usize, 16, 32] {
        let a = known::counter(states);
        let b_machine = known::counter(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &states, |b, _| {
            b.iter(|| assert!(machines_equivalent(&a, &b_machine)))
        });
    }
    group.finish();
}

/// E6/E13: the repeated-query nondeterminism check against the mvfst profile.
fn bench_nondeterminism_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("nondeterminism_check");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let word = InputWord::from_symbols([
        "INITIAL(?,?)[CRYPTO]",
        "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]",
        "SHORT(?,?)[ACK,STREAM]",
    ]);
    for max_reps in [20usize, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_reps),
            &max_reps,
            |b, &max_reps| {
                b.iter(|| {
                    let sul = QuicSul::new(ImplementationProfile::mvfst(), 42);
                    let config = NondeterminismConfig {
                        min_repetitions: 3,
                        max_repetitions: max_reps,
                        confidence: 0.95,
                    };
                    let mut checker = NondeterminismChecker::new(sul, config);
                    let report = checker.check(&word);
                    assert!(report.executions >= 3);
                })
            },
        );
    }
    group.finish();
}

/// Wire codec: every learner query round-trips through this path.
fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let keys = Keys::derive(
        ConnectionId::from_seed(1).key_material(),
        EncryptionLevel::OneRtt,
    );
    let packet = Packet::new(
        PacketHeader::short(ConnectionId::from_seed(1), 17),
        vec![
            Frame::Ack {
                largest_acknowledged: 9,
                ack_delay: 0,
                first_ack_range: 0,
            },
            Frame::Stream {
                stream_id: 0,
                offset: 1_000,
                fin: false,
                data: bytes::Bytes::from(vec![0x42; 800]),
            },
            Frame::MaxStreamData {
                stream_id: 1,
                maximum: 65_536,
            },
        ],
    );
    group.bench_function("encode_short_packet", |b| {
        b.iter(|| {
            let wire = packet.encode(&keys);
            assert!(wire.len() > 800);
        })
    });
    let wire = packet.encode(&keys);
    group.bench_function("decode_short_packet", |b| {
        b.iter(|| {
            let decoded = Packet::decode(&wire, &keys).unwrap();
            assert_eq!(decoded.frames.len(), 3);
        })
    });
    group.finish();
}

/// The interning tentpole's micro-benchmarks: the three innermost loops the
/// symbol-id rewrite targets, so regressions show up here before they show
/// up as E24 wall-clock collapse.  `trie_lookup` pits the string entry
/// point (one hash per step) against the pre-encoded id path (one array
/// index per step); `batch_dedup` is the cache's sorted-dedup + prefix-
/// subsumption pass over a heavily overlapping batch; `queue_round_trip`
/// drives a real one-worker engine through dispatch → chunked pull →
/// banked reply for a whole batch.
fn bench_symbol_hot_path(c: &mut Criterion) {
    use prognosis_learner::oracle::{CacheOracle, MachineOracle, MembershipOracle};
    use prognosis_learner::trie::PrefixTrie;

    let mut group = c.benchmark_group("symbol_hot_path");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // A trie of every ≤4-symbol word over the 7-symbol TCP alphabet
    // (2800 paths), probed with the 4-symbol layer.
    let alphabet = tcp_alphabet();
    let symbols: Vec<_> = alphabet.iter().cloned().collect();
    let mut words: Vec<InputWord> = Vec::new();
    let mut layer: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..4 {
        layer = layer
            .iter()
            .flat_map(|w| {
                symbols.iter().enumerate().map(move |(i, _)| {
                    let mut next = w.clone();
                    next.push(i);
                    next
                })
            })
            .collect();
        words.extend(
            layer
                .iter()
                .map(|w| w.iter().map(|&i| symbols[i].clone()).collect::<InputWord>()),
        );
    }
    let output_for = |word: &InputWord| -> OutputWord {
        (1..=word.len()).map(|n| format!("out-{}", n % 3)).collect()
    };
    let mut trie = PrefixTrie::new();
    for word in &words {
        trie.insert(word, &output_for(word));
    }
    let probes: Vec<InputWord> = words.iter().rev().take(512).cloned().collect();
    group.bench_function("trie_lookup_strings", |b| {
        b.iter(|| {
            for probe in &probes {
                assert!(trie.lookup(probe).is_some());
            }
        })
    });
    let id_probes: Vec<_> = probes.iter().map(|p| trie.encode_input(p)).collect();
    group.bench_function("trie_lookup_ids", |b| {
        b.iter(|| {
            for probe in &id_probes {
                assert!(trie.lookup_ids(probe.as_slice()).is_some());
            }
        })
    });

    // Batch dedup over a batch where every word shares long prefixes with
    // its neighbours — the shape sifting produces.
    let machine = known::counter(6);
    let dedup_batch: Vec<InputWord> = {
        let alphabet: Vec<_> = machine.input_alphabet().iter().cloned().collect();
        (0..512usize)
            .map(|i| {
                (0..=(i % 6))
                    .map(|d| alphabet[(i + d) % alphabet.len()].clone())
                    .collect()
            })
            .collect()
    };
    group.bench_function("batch_dedup", |b| {
        b.iter(|| {
            let mut oracle = CacheOracle::new(MachineOracle::new(machine.clone()));
            let answers = oracle.query_batch(&dedup_batch);
            assert_eq!(answers.len(), dedup_batch.len());
        })
    });

    // A real engine round trip: dispatch → chunked queue pull → banked
    // reply, one worker, one in-flight session.
    let mut engine =
        prognosis_core::parallel::ParallelSulOracle::spawn_with(&TcpSulFactory::default(), 1, 1);
    let engine_batch: Vec<InputWord> = words.iter().step_by(11).take(64).cloned().collect();
    group.bench_function("queue_round_trip", |b| {
        b.iter(|| {
            let answers = engine.query_batch(&engine_batch);
            assert_eq!(answers.len(), engine_batch.len());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tcp_learning,
    bench_quic_learning,
    bench_parallel_learning,
    bench_register_synthesis,
    bench_equivalence_checking,
    bench_nondeterminism_check,
    bench_wire_codec,
    bench_symbol_hot_path
);
criterion_main!(benches);
